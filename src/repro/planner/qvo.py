"""Query-vertex-ordering (QVO) enumeration.

Each QVO sigma of a query Q is a different WCO plan for Q (Section 3.1).  A
valid ordering must start with two query vertices that share a query edge and
every prefix must induce a connected sub-query (Section 2).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.planner.plan import Plan, wco_plan_from_order
from repro.query.isomorphism import orbit_representative_orderings
from repro.query.query_graph import QueryGraph


def enumerate_orderings(
    query: QueryGraph,
    prefix: Optional[Sequence[str]] = None,
    limit: Optional[int] = None,
) -> List[Tuple[str, ...]]:
    """All connected-prefix orderings of the query vertices.

    Parameters
    ----------
    prefix:
        When given, only orderings starting with exactly this sequence are
        enumerated (used by the adaptive executor, which fixes the vertices
        that are already matched and re-orders the remainder).
    limit:
        Optional cap on the number of orderings returned.
    """
    vertices = list(query.vertices)
    results: List[Tuple[str, ...]] = []

    def recurse(current: List[str]) -> None:
        if limit is not None and len(results) >= limit:
            return
        if len(current) == len(vertices):
            results.append(tuple(current))
            return
        current_set = set(current)
        for v in vertices:
            if v in current_set:
                continue
            # The next vertex must connect to the current prefix so that the
            # induced prefix sub-query stays connected.
            if current and not any(u in current_set for u in query.neighbors(v)):
                continue
            current.append(v)
            recurse(current)
            current.pop()

    if prefix:
        prefix = list(prefix)
        if len(prefix) >= 2 and not query.edges_between(prefix[0], prefix[1]):
            return []
        recurse(list(prefix))
    else:
        for first in vertices:
            # neighbors() is a set; sort so the enumeration order (and hence
            # which of several equal-cost orderings a first-seen tie-break
            # picks downstream) does not depend on hash randomization.
            for second in sorted(query.neighbors(first)):
                recurse([first, second])
    # Orderings of length < 2 cannot form plans.
    return [o for o in results if len(o) >= 2]


def enumerate_wco_plans(
    query: QueryGraph,
    deduplicate_automorphisms: bool = False,
    limit: Optional[int] = None,
) -> List[Plan]:
    """Every WCO plan of ``query`` (one per valid QVO).

    ``deduplicate_automorphisms`` collapses orderings related by query
    automorphisms, which perform exactly the same operations (Section 3.2.3
    observes e.g. that a2a3a1a4 and a2a3a4a1 are equivalent for the symmetric
    diamond-X).
    """
    orderings = enumerate_orderings(query, limit=limit)
    if deduplicate_automorphisms:
        orderings = orbit_representative_orderings(query, orderings)
    return [wco_plan_from_order(query, order) for order in orderings]


def lexicographic_ordering(query: QueryGraph) -> Tuple[str, ...]:
    """The ordering EmptyHeaded effectively uses: lexicographic over the
    variable names the user wrote, restricted to connected prefixes."""
    remaining = sorted(query.vertices)
    order: List[str] = []
    while remaining:
        placed = False
        for v in remaining:
            if not order or any(u in set(order) for u in query.neighbors(v)):
                order.append(v)
                remaining.remove(v)
                placed = True
                break
        if not placed:  # disconnected query; append arbitrarily
            order.append(remaining.pop(0))
    return tuple(order)


def degree_heuristic_ordering(query: QueryGraph) -> Tuple[str, ...]:
    """A LogicBlox-style heuristic: repeatedly pick the unmatched query vertex
    with the most query edges into the already-matched prefix (ties broken by
    total query degree, then name)."""
    order: List[str] = []
    remaining = set(query.vertices)
    # Start with the endpoints of the edge whose vertices have highest degree.
    best_edge = max(
        query.edges, key=lambda e: (query.degree(e.src) + query.degree(e.dst), e.src, e.dst)
    )
    order.extend([best_edge.src, best_edge.dst])
    remaining -= set(order)
    while remaining:
        def score(v: str) -> Tuple[int, int, str]:
            into_prefix = sum(1 for u in query.neighbors(v) if u in set(order))
            return (into_prefix, query.degree(v), v)

        candidates = [v for v in remaining if any(u in set(order) for u in query.neighbors(v))]
        if not candidates:
            candidates = list(remaining)
        nxt = max(candidates, key=score)
        order.append(nxt)
        remaining.remove(nxt)
    return tuple(order)
