"""Plan trees.

A plan in the full plan space (Section 4.1) is a rooted tree whose

* leaf nodes are ``SCAN`` operators matching a single query edge,
* single-child internal nodes are ``EXTEND/INTERSECT`` (E/I) operators that
  extend partial matches by one query vertex,
* two-child internal nodes are ``HASH-JOIN`` operators joining the matches of
  two sub-queries.

Every node is labeled with the sub-query it computes, and the *projection
constraint* requires that sub-query to be the induced projection of the full
query onto the node's vertex set.

WCO plans are plans with no HASH-JOIN; BJ plans have no E/I; hybrid plans mix
both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.planner.descriptors import AdjListDescriptor
from repro.query.query_graph import QueryEdge, QueryGraph


@dataclass
class PlanNode:
    """Base class of all plan nodes."""

    sub_query: QueryGraph
    out_vertices: Tuple[str, ...]

    def children(self) -> Tuple["PlanNode", ...]:
        return ()

    # ------------------------------------------------------------------ #
    def iter_nodes(self) -> Iterator["PlanNode"]:
        """Post-order traversal of the plan tree."""
        for child in self.children():
            yield from child.iter_nodes()
        yield self

    @property
    def num_operators(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    def describe(self, indent: int = 0) -> str:
        """Human-readable, indented rendering of the plan tree."""
        pad = "  " * indent
        lines = [pad + self._describe_line()]
        for child in self.children():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def _describe_line(self) -> str:  # pragma: no cover - overridden
        return f"{type(self).__name__}({self.out_vertices})"

    def display_name(self) -> str:
        """The operator name the executors use as the per-operator profile
        key.  Plan annotation (:func:`repro.planner.cost_model.
        annotate_operator_estimates`) and the executors must agree on this
        string so trace rows can join actuals with estimates."""
        raise NotImplementedError

    def signature(self) -> Tuple:
        """Hashable structural signature used to deduplicate plans."""
        raise NotImplementedError


@dataclass
class ScanNode(PlanNode):
    """Scans all data edges matching a single query edge and emits 2-matches.

    ``out_vertices`` is either ``(edge.src, edge.dst)`` or the reverse, which
    lets a WCO plan start its query-vertex ordering at either endpoint.
    """

    edge: QueryEdge = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.edge is None:
            raise PlanError("ScanNode requires a query edge")
        if set(self.out_vertices) != {self.edge.src, self.edge.dst}:
            raise PlanError("ScanNode out_vertices must be the edge endpoints")

    def _describe_line(self) -> str:
        return f"SCAN {self.edge!r} -> {self.out_vertices}"

    def display_name(self) -> str:
        return f"SCAN[{self.edge!r}]"

    def signature(self) -> Tuple:
        return ("scan", self.edge.src, self.edge.dst, self.edge.label, self.out_vertices)


@dataclass
class ExtendNode(PlanNode):
    """EXTEND/INTERSECT: extends each input (k-1)-match by one query vertex by
    intersecting the adjacency lists named by its descriptors."""

    child: PlanNode = None  # type: ignore[assignment]
    to_vertex: str = ""
    descriptors: Tuple[AdjListDescriptor, ...] = ()
    to_vertex_label: Optional[int] = None

    def __post_init__(self) -> None:
        if self.child is None or not self.to_vertex or not self.descriptors:
            raise PlanError("ExtendNode requires a child, a target vertex, and descriptors")
        if self.to_vertex in self.child.out_vertices:
            raise PlanError(f"{self.to_vertex} is already matched by the child")
        for d in self.descriptors:
            if d.from_vertex not in self.child.out_vertices:
                raise PlanError(
                    f"descriptor {d} references {d.from_vertex}, which the child does not produce"
                )
        expected = tuple(self.child.out_vertices) + (self.to_vertex,)
        if self.out_vertices != expected:
            raise PlanError("ExtendNode out_vertices must append to_vertex to the child's order")

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def _describe_line(self) -> str:
        descs = ", ".join(repr(d) for d in self.descriptors)
        return f"EXTEND/INTERSECT -> {self.to_vertex} via [{descs}]"

    def display_name(self) -> str:
        return f"E/I[->{self.to_vertex}]"

    def signature(self) -> Tuple:
        return (
            "extend",
            self.to_vertex,
            tuple(sorted((d.from_vertex, d.direction.value, d.edge_label) for d in self.descriptors)),
            self.child.signature(),
        )


@dataclass
class HashJoinNode(PlanNode):
    """Classic hash join: builds a table on the matches of ``build`` keyed by
    the shared query vertices and probes it with the matches of ``probe``."""

    build: PlanNode = None  # type: ignore[assignment]
    probe: PlanNode = None  # type: ignore[assignment]
    join_vertices: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.build is None or self.probe is None:
            raise PlanError("HashJoinNode requires two children")
        shared = set(self.build.out_vertices) & set(self.probe.out_vertices)
        if not shared:
            raise PlanError("hash join children must share at least one query vertex")
        if set(self.join_vertices) != shared:
            raise PlanError("join_vertices must be exactly the shared query vertices")
        expected = tuple(self.probe.out_vertices) + tuple(
            v for v in self.build.out_vertices if v not in set(self.probe.out_vertices)
        )
        if self.out_vertices != expected:
            raise PlanError(
                "HashJoinNode out_vertices must be probe vertices followed by build-only vertices"
            )

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.build, self.probe)

    def _describe_line(self) -> str:
        return f"HASH-JOIN on {self.join_vertices}"

    def display_name(self) -> str:
        return f"HASH-JOIN[{','.join(self.join_vertices)}]"

    def signature(self) -> Tuple:
        return ("hashjoin", tuple(sorted(self.join_vertices)), self.build.signature(), self.probe.signature())


# --------------------------------------------------------------------------- #
# The Plan wrapper
# --------------------------------------------------------------------------- #
@dataclass
class Plan:
    """A complete plan for a query, wrapping the root node with metadata."""

    query: QueryGraph
    root: PlanNode
    estimated_cost: float = float("nan")
    estimated_cardinality: float = float("nan")
    label: str = ""
    adaptive: bool = False
    #: Estimated output cardinality per operator ``display_name()``, annotated
    #: at optimization time so cached plans carry their estimates and every
    #: execution can compute per-operator q-error without re-running the
    #: catalogue.  None for hand-built plans.
    operator_estimates: Optional[dict] = None
    #: Epoch of the catalogue this plan was costed against (None for
    #: hand-built plans).  The invalidation-ordering tests use it to assert a
    #: served plan is never a torn mix of old plan + refreshed catalogue.
    catalogue_epoch: Optional[int] = None

    def __post_init__(self) -> None:
        if set(self.root.out_vertices) != set(self.query.vertices):
            raise PlanError("plan root must produce every query vertex")

    # ------------------------------------------------------------------ #
    @property
    def operators(self) -> List[PlanNode]:
        return list(self.root.iter_nodes())

    @property
    def num_extend_operators(self) -> int:
        return sum(1 for n in self.operators if isinstance(n, ExtendNode))

    @property
    def num_hash_joins(self) -> int:
        return sum(1 for n in self.operators if isinstance(n, HashJoinNode))

    @property
    def is_wco(self) -> bool:
        """True for pure worst-case-optimal plans (no binary joins)."""
        return self.num_hash_joins == 0

    @property
    def is_binary_join_only(self) -> bool:
        """True when the plan never intersects more than one list at a time
        and contains at least one hash join."""
        multiway = any(
            isinstance(n, ExtendNode) and len(n.descriptors) > 1 for n in self.operators
        )
        return self.num_hash_joins > 0 and not multiway

    @property
    def is_hybrid(self) -> bool:
        return self.num_hash_joins > 0 and not self.is_binary_join_only

    @property
    def plan_type(self) -> str:
        """"wco", "bj", or "hybrid" — the categories of Figure 7."""
        if self.is_wco:
            return "wco"
        if self.is_binary_join_only:
            return "bj"
        return "hybrid"

    def qvo(self) -> Optional[Tuple[str, ...]]:
        """The query-vertex ordering when the plan is a pure WCO chain."""
        if not self.is_wco:
            return None
        return tuple(self.root.out_vertices)

    def signature(self) -> Tuple:
        return self.root.signature()

    def describe(self) -> str:
        header = f"Plan[{self.plan_type}] for {self.query.name}"
        if self.label:
            header += f" ({self.label})"
        if self.estimated_cost == self.estimated_cost:  # not NaN
            header += f" cost={self.estimated_cost:.1f}"
        return header + "\n" + self.root.describe(1)

    def __repr__(self) -> str:
        return f"Plan({self.query.name!r}, type={self.plan_type}, label={self.label!r})"


# --------------------------------------------------------------------------- #
# Construction helpers
# --------------------------------------------------------------------------- #
def make_scan(query: QueryGraph, edge: QueryEdge, reverse: bool = False) -> ScanNode:
    """Create the SCAN leaf for ``edge``; ``reverse`` emits (dst, src) tuples."""
    order = (edge.dst, edge.src) if reverse else (edge.src, edge.dst)
    sub = query.project([edge.src, edge.dst])
    return ScanNode(sub_query=sub, out_vertices=order, edge=edge)


def make_extend(query: QueryGraph, child: PlanNode, to_vertex: str) -> ExtendNode:
    """Create the E/I node extending ``child`` to ``to_vertex``, deriving the
    descriptors from every query edge between ``to_vertex`` and the child's
    vertices (the projection constraint keeps all of them)."""
    prior = set(child.out_vertices)
    descriptors = tuple(
        sorted(
            AdjListDescriptor.for_extension(e, to_vertex)
            for e in query.edges_touching(to_vertex)
            if e.other(to_vertex) in prior
        )
    )
    if not descriptors:
        raise PlanError(
            f"cannot extend to {to_vertex}: no query edge connects it to {sorted(prior)}"
        )
    sub = query.project(list(child.out_vertices) + [to_vertex])
    return ExtendNode(
        sub_query=sub,
        out_vertices=tuple(child.out_vertices) + (to_vertex,),
        child=child,
        to_vertex=to_vertex,
        descriptors=descriptors,
        to_vertex_label=query.vertex_label(to_vertex),
    )


def make_hash_join(query: QueryGraph, build: PlanNode, probe: PlanNode) -> HashJoinNode:
    """Create a HASH-JOIN of two sub-plans on their shared query vertices."""
    shared = tuple(sorted(set(build.out_vertices) & set(probe.out_vertices)))
    if not shared:
        raise PlanError("hash join children must overlap on at least one query vertex")
    all_vertices = list(probe.out_vertices) + [
        v for v in build.out_vertices if v not in set(probe.out_vertices)
    ]
    sub = query.project(all_vertices)
    return HashJoinNode(
        sub_query=sub,
        out_vertices=tuple(all_vertices),
        build=build,
        probe=probe,
        join_vertices=shared,
    )


def wco_plan_from_order(query: QueryGraph, order: Sequence[str], label: str = "") -> Plan:
    """Build the WCO plan corresponding to a query-vertex ordering.

    The first two vertices must share a query edge (the SCAN); every prefix of
    the ordering must induce a connected sub-query (Section 2).
    """
    order = tuple(order)
    if set(order) != set(query.vertices) or len(order) != query.num_vertices:
        raise PlanError(f"ordering {order} is not a permutation of the query vertices")
    first_edges = query.edges_between(order[0], order[1])
    if not first_edges:
        raise PlanError(f"the first two vertices of {order} do not share a query edge")
    edge = first_edges[0]
    reverse = edge.src != order[0]
    node: PlanNode = make_scan(query, edge, reverse=reverse)
    for k in range(2, len(order)):
        if not query.connected_projection_exists(order[: k + 1]):
            raise PlanError(f"prefix {order[:k+1]} is not connected")
        node = make_extend(query, node, order[k])
    return Plan(query=query, root=node, label=label or "wco:" + "".join(order))
