"""The dynamic-programming optimizer (Section 4.3, Algorithm 1).

For every connected, induced k-vertex sub-query ``Q_k`` of the input query the
optimizer keeps the cheapest plan found so far, considering three ways of
producing ``Q_k``:

(i)   the cheapest *WCO plan* of ``Q_k`` over all query-vertex orderings
      (enumerated exhaustively for queries up to ``large_query_threshold``
      vertices, because the best WCO plan for ``Q_k`` may extend a non-optimal
      plan for ``Q_{k-1}`` when that makes the intersection cache effective),
(ii)  extending the best stored plan of some ``Q_{k-1}`` by one query vertex
      with an E/I operator,
(iii) hash-joining the best stored plans of two smaller sub-queries whose
      vertex sets cover ``Q_k`` and whose query edges cover ``Q_k``'s edges
      (the projection constraint).

Hash joins with a 2-vertex child are omitted because they can always be
converted into a cheaper E/I extension (end of Section 4.3).  For queries with
more than ``large_query_threshold`` vertices the exhaustive WCO enumeration is
skipped and only the ``beam_width`` cheapest sub-queries are kept per level
(Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import OptimizerError
from repro.planner.cost_model import CostModel
from repro.planner.plan import (
    ExtendNode,
    HashJoinNode,
    Plan,
    PlanNode,
    ScanNode,
    make_extend,
    make_hash_join,
    make_scan,
    wco_plan_from_order,
)
from repro.planner.qvo import enumerate_orderings
from repro.query.query_graph import QueryGraph


@dataclass
class _Candidate:
    root: PlanNode
    cost: float


class DynamicProgrammingOptimizer:
    """Cost-based DP optimizer producing WCO, BJ, and hybrid plans."""

    def __init__(
        self,
        cost_model: CostModel,
        large_query_threshold: int = 10,
        beam_width: int = 5,
        enable_binary_joins: bool = True,
        enumerate_all_wco: bool = True,
    ) -> None:
        self.cost_model = cost_model
        self.large_query_threshold = large_query_threshold
        self.beam_width = beam_width
        self.enable_binary_joins = enable_binary_joins
        self.enumerate_all_wco = enumerate_all_wco

    # ------------------------------------------------------------------ #
    def optimize(self, query: QueryGraph) -> Plan:
        """Return the cheapest plan for ``query`` under the cost model."""
        if not query.is_connected():
            raise OptimizerError(f"query {query.name} must be connected")
        if query.num_vertices < 2:
            raise OptimizerError("queries must have at least two query vertices")
        large = query.num_vertices > self.large_query_threshold

        best: Dict[FrozenSet[str], _Candidate] = {}
        self._seed_two_vertex_plans(query, best)
        if query.num_vertices == 2:
            return self._finalize(query, best[frozenset(query.vertices)])

        best_wco = (
            self._best_wco_per_subquery(query) if (self.enumerate_all_wco and not large) else {}
        )

        for k in range(3, query.num_vertices + 1):
            level: Dict[FrozenSet[str], _Candidate] = {}
            subsets = self._candidate_subsets(query, k, best, large)
            for vset in subsets:
                candidate = self._best_plan_for_subset(query, vset, best, best_wco)
                if candidate is not None:
                    level[vset] = candidate
            if not level:
                raise OptimizerError(
                    f"no connected {k}-vertex sub-queries found for {query.name}"
                )
            if large and k < query.num_vertices:
                kept = sorted(level.items(), key=lambda kv: kv[1].cost)[: self.beam_width]
                level = dict(kept)
            best.update(level)

        full = best.get(frozenset(query.vertices))
        if full is None:
            raise OptimizerError(f"optimizer failed to cover query {query.name}")
        return self._finalize(query, full)

    # ------------------------------------------------------------------ #
    def _finalize(self, query: QueryGraph, candidate: _Candidate) -> Plan:
        plan = Plan(
            query=query,
            root=candidate.root,
            estimated_cost=candidate.cost,
            estimated_cardinality=self.cost_model.cardinality(query),
            label="dp-optimizer",
        )
        return plan

    def _seed_two_vertex_plans(
        self, query: QueryGraph, best: Dict[FrozenSet[str], _Candidate]
    ) -> None:
        for edge in query.edges:
            vset = frozenset((edge.src, edge.dst))
            scan = make_scan(query, edge)
            cost = self.cost_model.scan_cost(scan)
            existing = best.get(vset)
            if existing is None or cost < existing.cost:
                best[vset] = _Candidate(root=scan, cost=cost)

    def _connected_subsets(self, query: QueryGraph, k: int) -> List[FrozenSet[str]]:
        return [
            frozenset(subset)
            for subset in combinations(query.vertices, k)
            if query.connected_projection_exists(subset)
        ]

    def _candidate_subsets(
        self,
        query: QueryGraph,
        k: int,
        best: Dict[FrozenSet[str], _Candidate],
        large: bool,
    ) -> List[FrozenSet[str]]:
        if not large:
            return self._connected_subsets(query, k)
        # Large-query mode: grow only from the sub-queries kept so far.
        seen = set()
        result: List[FrozenSet[str]] = []
        for vset in [s for s in best if len(s) == k - 1]:
            for v in query.vertices:
                if v in vset:
                    continue
                grown = frozenset(vset | {v})
                if grown in seen:
                    continue
                seen.add(grown)
                if query.connected_projection_exists(grown):
                    result.append(grown)
        return result

    # ------------------------------------------------------------------ #
    def _best_wco_per_subquery(
        self, query: QueryGraph
    ) -> Dict[FrozenSet[str], _Candidate]:
        """Case (i): the cheapest WCO plan for every connected sub-query."""
        best: Dict[FrozenSet[str], _Candidate] = {}
        for k in range(3, query.num_vertices + 1):
            for vset in self._connected_subsets(query, k):
                sub = query.project(vset)
                for ordering in enumerate_orderings(sub):
                    try:
                        plan = wco_plan_from_order(sub, ordering)
                    except Exception:
                        continue
                    cost = self.cost_model.plan_cost(plan)
                    existing = best.get(vset)
                    if existing is None or cost < existing.cost:
                        best[vset] = _Candidate(root=plan.root, cost=cost)
        return best

    def _best_plan_for_subset(
        self,
        query: QueryGraph,
        vset: FrozenSet[str],
        best: Dict[FrozenSet[str], _Candidate],
        best_wco: Dict[FrozenSet[str], _Candidate],
    ) -> Optional[_Candidate]:
        sub = query.project(vset)
        winner: Optional[_Candidate] = None

        def consider(root: PlanNode, cost: float) -> None:
            nonlocal winner
            if winner is None or cost < winner.cost:
                winner = _Candidate(root=root, cost=cost)

        # (i) the cheapest full WCO plan for this sub-query.
        wco = best_wco.get(vset)
        if wco is not None:
            consider(wco.root, wco.cost)

        # (ii) extend a stored (k-1)-vertex plan by one query vertex.  The
        # frozenset is iterated in sorted order: ties are broken first-seen,
        # so enumeration order must not depend on hash randomization.
        for v in sorted(vset):
            rest = frozenset(vset - {v})
            if len(rest) < 2 or rest not in best:
                continue
            child = best[rest]
            try:
                node = make_extend(sub, child.root, v)
            except Exception:
                continue
            cost = child.cost + self.cost_model.extend_cost(node)
            consider(node, cost)

        # (iii) hash-join two stored sub-plans covering this sub-query.
        if self.enable_binary_joins:
            # Sorted for the same reason as case (ii): the (left, right) pair
            # enumeration order decides equal-cost ties.
            stored = sorted(
                (s for s in best if s < vset and len(s) >= 3),
                key=lambda s: tuple(sorted(s)),
            )
            sub_edges = {(e.src, e.dst, e.label) for e in sub.edges}
            for i, left in enumerate(stored):
                for right in stored[i:]:
                    if left | right != vset or not (left & right):
                        continue
                    covered = {
                        (e.src, e.dst, e.label)
                        for source in (query.project(left), query.project(right))
                        for e in source.edges
                    }
                    if covered != sub_edges:
                        continue
                    left_cand, right_cand = best[left], best[right]
                    # Build on the side with the smaller estimated cardinality.
                    left_card = self.cost_model.cardinality(query.project(left))
                    right_card = self.cost_model.cardinality(query.project(right))
                    if left_card <= right_card:
                        build_cand, probe_cand = left_cand, right_cand
                    else:
                        build_cand, probe_cand = right_cand, left_cand
                    try:
                        node = make_hash_join(sub, build_cand.root, probe_cand.root)
                    except Exception:
                        continue
                    cost = (
                        left_cand.cost
                        + right_cand.cost
                        + self.cost_model.hash_join_cost(node)
                    )
                    consider(node, cost)

        return winner
