"""Adjacency-list descriptors.

An EXTEND/INTERSECT operator is configured with one or more descriptors, each
an ``(i, dir, le)`` triple (Section 3.1): the index of a previously matched
query vertex, the direction of the adjacency list to read from that vertex,
and the label of the query edge the descriptor represents.  At the *plan*
level we refer to the matched query vertex by name; the executor resolves the
name to a tuple index when it wires operators together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.graph.graph import Direction
from repro.query.query_graph import QueryEdge


@dataclass(frozen=True, order=True)
class AdjListDescriptor:
    """Describes one adjacency list to intersect when extending a partial match.

    Attributes
    ----------
    from_vertex:
        The already-matched query vertex whose adjacency list is read.
    direction:
        ``FORWARD`` when the query edge points from ``from_vertex`` to the new
        query vertex, ``BACKWARD`` otherwise.
    edge_label:
        Label of the query edge represented by this descriptor (``None`` = any).
    """

    from_vertex: str
    direction: Direction
    edge_label: Optional[int] = None

    @classmethod
    def for_extension(cls, edge: QueryEdge, to_vertex: str) -> "AdjListDescriptor":
        """Build the descriptor for extending to ``to_vertex`` along ``edge``.

        If the edge points *to* the new vertex we must read the forward list of
        its other endpoint; if it points *from* the new vertex we read the
        backward list.
        """
        if edge.dst == to_vertex:
            return cls(from_vertex=edge.src, direction=Direction.FORWARD, edge_label=edge.label)
        if edge.src == to_vertex:
            return cls(from_vertex=edge.dst, direction=Direction.BACKWARD, edge_label=edge.label)
        raise ValueError(f"edge {edge} does not touch {to_vertex}")

    def __repr__(self) -> str:
        arrow = "->" if self.direction is Direction.FORWARD else "<-"
        lab = "" if self.edge_label is None else f":{self.edge_label}"
        return f"{self.from_vertex}{arrow}{lab}"
