"""Factorized counting of subgraph matches.

Section 3.2.3 of the paper observes that its intersection cache "gives
benefits similar to factorization [33]": in the symmetric diamond-X query the
matches of ``a1`` and ``a4`` are *conditionally independent* given a match of
the separator ``a2a3``, so the result can be represented (and counted) as a
Cartesian product of the two extension sets instead of being enumerated tuple
by tuple.  The paper leaves a full study of factorized processing as future
work; this module implements the counting side of it.

Given a query ``Q`` and a connected *separator* sub-query ``S``:

* the query vertices outside ``S`` fall into connected components
  ``C_1, ..., C_g`` of ``Q`` with ``S`` removed;
* conditioned on a match ``s`` of ``S``, the matches of the induced
  sub-queries ``S ∪ C_i`` extending ``s`` are independent across components,
  so ``|Q(s)| = Π_i |S ∪ C_i (s)|``;
* therefore ``|Q| = Σ_{s ∈ S(G)} Π_i count_i(s)``.

Counting this way materializes only the per-component matches — for the
diamond-X on a graph with ``t`` triangles per edge this is ``O(t)`` per edge
instead of ``O(t²)`` for the full enumeration.  The module exposes both the
decomposition machinery (:func:`independent_components`,
:func:`best_separator`) and the counting entry point
(:func:`factorized_count`), and reports how much enumeration work the
factorization avoided so the ablation benchmark can quantify the benefit.

Homomorphism (join) semantics are assumed throughout, matching the paper's
executor; under isomorphism semantics the components are no longer
independent (they must avoid reusing each other's data vertices), so
:func:`factorized_count` refuses to run in that setting.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InvalidQueryError, PlanError
from repro.executor.operators import ExecutionConfig
from repro.executor.pipeline import execute_plan
from repro.graph.graph import Graph
from repro.planner.plan import Plan, wco_plan_from_order
from repro.planner.qvo import enumerate_orderings
from repro.query.query_graph import QueryGraph


# --------------------------------------------------------------------------- #
# decomposition
# --------------------------------------------------------------------------- #
def independent_components(
    query: QueryGraph, separator: Sequence[str]
) -> List[Tuple[str, ...]]:
    """Connected components of the query with the separator vertices removed.

    Each component, together with the separator, induces a sub-query whose
    matches extend a separator match independently of the other components.
    """
    separator_set = set(separator)
    unknown = separator_set - set(query.vertices)
    if unknown:
        raise InvalidQueryError(f"separator contains unknown vertices: {sorted(unknown)}")
    remaining = [v for v in query.vertices if v not in separator_set]
    components: List[Tuple[str, ...]] = []
    unvisited = set(remaining)
    while unvisited:
        seed = next(iter(unvisited))
        component = {seed}
        frontier = [seed]
        while frontier:
            vertex = frontier.pop()
            for neighbor in query.neighbors(vertex):
                if neighbor in unvisited and neighbor not in component:
                    component.add(neighbor)
                    frontier.append(neighbor)
        unvisited -= component
        components.append(tuple(sorted(component)))
    return sorted(components)


def _separator_candidates(query: QueryGraph, max_size: int) -> List[Tuple[str, ...]]:
    """Connected vertex subsets of size 2..max_size that could act as separators."""
    candidates: List[Tuple[str, ...]] = []
    for size in range(2, max_size + 1):
        for subset in combinations(query.vertices, size):
            if query.connected_projection_exists(subset):
                candidates.append(tuple(subset))
    return candidates


def best_separator(query: QueryGraph) -> Optional[Tuple[str, ...]]:
    """The separator giving the most independent components.

    Candidates are connected sub-queries with at most ``|V_Q| - 2`` vertices
    (so at least two vertices remain to be split).  Ties are broken toward
    smaller separators, then lexicographically for determinism.  Returns
    ``None`` when no separator yields more than one component — in that case
    factorized counting degenerates to ordinary counting.
    """
    if query.num_vertices < 4:
        return None
    best: Optional[Tuple[str, ...]] = None
    best_score: Tuple[int, int] = (1, 0)
    for candidate in _separator_candidates(query, query.num_vertices - 2):
        groups = independent_components(query, candidate)
        score = (len(groups), -len(candidate))
        if score > best_score or (score == best_score and best is not None and candidate < best):
            if len(groups) >= 2:
                best = candidate
                best_score = score
    return best


# --------------------------------------------------------------------------- #
# counting
# --------------------------------------------------------------------------- #
@dataclass
class FactorizedCount:
    """Result of a factorized count."""

    query: QueryGraph
    separator: Tuple[str, ...]
    components: List[Tuple[str, ...]]
    total: int
    separator_matches: int
    enumerated_tuples: int
    flat_tuples: int

    @property
    def compression_ratio(self) -> float:
        """Flat (enumerated) output size over the tuples actually materialized.

        Values above 1 mean the factorized representation avoided work; the
        ratio grows with the sizes of the independent extension sets.
        """
        return self.flat_tuples / self.enumerated_tuples if self.enumerated_tuples else 1.0

    def __repr__(self) -> str:
        return (
            f"FactorizedCount(query={self.query.name!r}, total={self.total}, "
            f"separator={self.separator}, components={len(self.components)}, "
            f"compression={self.compression_ratio:.2f}x)"
        )


def _buildable_plan(
    sub_query: QueryGraph, prefix: Sequence[str]
) -> Tuple[Plan, Tuple[str, ...]]:
    """A WCO plan for ``sub_query``, preferring orderings that start with
    ``prefix`` (so separator columns sit at the front), falling back to any
    valid connected ordering."""
    prefix = [v for v in prefix if sub_query.has_vertex(v)]
    candidates: List[Tuple[str, ...]] = []
    if len(prefix) >= 2 and sub_query.edges_between(prefix[0], prefix[1]):
        candidates.extend(enumerate_orderings(sub_query, prefix=prefix, limit=6))
    candidates.extend(enumerate_orderings(sub_query, limit=6))
    for ordering in candidates:
        try:
            return wco_plan_from_order(sub_query, ordering), ordering
        except PlanError:
            continue
    raise PlanError(f"no connected ordering exists for {sub_query.name}")


def _collect_matches(
    sub_query: QueryGraph, graph: Graph, prefix: Sequence[str], config: ExecutionConfig
) -> Tuple[List[Tuple[int, ...]], Tuple[str, ...]]:
    plan, ordering = _buildable_plan(sub_query, prefix)
    result = execute_plan(plan, graph, config=config, collect=True)
    return result.matches or [], ordering


def factorized_count(
    query: QueryGraph,
    graph: Graph,
    separator: Optional[Sequence[str]] = None,
    config: Optional[ExecutionConfig] = None,
) -> FactorizedCount:
    """Count the matches of ``query`` using a factorized representation.

    Parameters
    ----------
    separator:
        The separator sub-query's vertices.  Defaults to
        :func:`best_separator`; when no useful separator exists the whole
        query is treated as a single component (plain counting).
    config:
        Execution knobs forwarded to the underlying WCO plans.  Isomorphism
        semantics are rejected (see module docstring).
    """
    config = config or ExecutionConfig()
    if config.isomorphism:
        raise PlanError("factorized counting requires homomorphism (join) semantics")
    if separator is None:
        separator = best_separator(query)
    if separator is None:
        # Degenerate case: no decomposition; count the query directly.
        matches, _ = _collect_matches(query, graph, list(query.vertices)[:2], config)
        total = len(matches)
        return FactorizedCount(
            query=query,
            separator=tuple(query.vertices),
            components=[],
            total=total,
            separator_matches=total,
            enumerated_tuples=total,
            flat_tuples=total,
        )

    separator = tuple(separator)
    separator_query = query.project(separator)
    if not separator_query.is_connected():
        raise InvalidQueryError(f"separator {separator} does not induce a connected sub-query")
    components = independent_components(query, separator)
    if not components:
        raise InvalidQueryError("separator covers every query vertex; nothing to factorize")

    separator_matches, separator_order = _collect_matches(
        separator_query, graph, separator, config
    )
    enumerated = len(separator_matches)

    # Group the matches of each (separator ∪ component) sub-query by their
    # separator columns.
    component_counts: List[Dict[Tuple[int, ...], int]] = []
    for component in components:
        sub = query.project(list(separator) + list(component))
        matches, ordering = _collect_matches(sub, graph, separator_order, config)
        enumerated += len(matches)
        positions = [ordering.index(v) for v in separator_order]
        counts: Dict[Tuple[int, ...], int] = {}
        for match in matches:
            key = tuple(match[i] for i in positions)
            counts[key] = counts.get(key, 0) + 1
        component_counts.append(counts)

    total = 0
    for match in separator_matches:
        key = tuple(match)
        product = 1
        for counts in component_counts:
            product *= counts.get(key, 0)
            if product == 0:
                break
        total += product

    return FactorizedCount(
        query=query,
        separator=separator,
        components=components,
        total=total,
        separator_matches=len(separator_matches),
        enumerated_tuples=enumerated,
        flat_tuples=total,
    )


__all__ = [
    "FactorizedCount",
    "best_separator",
    "factorized_count",
    "independent_components",
]
