"""Exhaustive plan-space enumeration.

Used for two purposes:

* as a *verification* optimizer: the paper notes that dynamic programming can
  in principle miss the cheapest plan (an E/I following a HASH-JOIN may want
  to extend a non-optimal sub-plan to exploit the intersection cache), but
  verified that in practice the DP optimizer returned the same plan as a full
  enumeration; we expose the same check;
* to generate the *plan spectrums* of Figure 7 — every WCO, BJ, and hybrid
  plan of a query (up to a configurable cap), so that the plan the optimizer
  picks can be placed within the full runtime distribution.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import OptimizerError
from repro.planner.cost_model import CostModel
from repro.planner.plan import (
    Plan,
    PlanNode,
    make_extend,
    make_hash_join,
    make_scan,
)
from repro.query.query_graph import QueryGraph


class PlanSpaceEnumerator:
    """Enumerates every plan in the paper's plan space for small queries."""

    def __init__(
        self,
        query: QueryGraph,
        enable_binary_joins: bool = True,
        max_plans_per_subquery: int = 2000,
    ) -> None:
        self.query = query
        self.enable_binary_joins = enable_binary_joins
        self.max_plans_per_subquery = max_plans_per_subquery
        self._memo: Dict[FrozenSet[str], List[PlanNode]] = {}

    # ------------------------------------------------------------------ #
    def plans_for(self, vset: FrozenSet[str]) -> List[PlanNode]:
        """All plan roots computing the induced sub-query on ``vset``."""
        if vset in self._memo:
            return self._memo[vset]
        sub = self.query.project(vset)
        roots: List[PlanNode] = []
        seen: set = set()

        def add(root: PlanNode) -> None:
            sig = root.signature()
            if sig not in seen and len(roots) < self.max_plans_per_subquery:
                seen.add(sig)
                roots.append(root)

        if len(vset) == 2:
            for edge in sub.edges:
                for reverse in (False, True):
                    add(make_scan(sub, edge, reverse=reverse))
            self._memo[vset] = roots
            return roots

        # E/I extensions of every plan for every (k-1)-subset.
        for v in sorted(vset):
            rest = frozenset(vset - {v})
            if len(rest) < 2 or not self.query.connected_projection_exists(rest):
                continue
            for child in self.plans_for(rest):
                try:
                    add(make_extend(sub, child, v))
                except Exception:
                    continue

        # Hash joins of plans of two covering sub-queries.
        if self.enable_binary_joins and len(vset) >= 4:
            sub_edges = {(e.src, e.dst, e.label) for e in sub.edges}
            proper = [
                frozenset(c)
                for size in range(3, len(vset))
                for c in combinations(sorted(vset), size)
                if self.query.connected_projection_exists(c)
            ]
            for i, left in enumerate(proper):
                for right in proper[i:]:
                    if left | right != vset or not (left & right):
                        continue
                    covered = {
                        (e.src, e.dst, e.label)
                        for part in (left, right)
                        for e in self.query.project(part).edges
                    }
                    if covered != sub_edges:
                        continue
                    for build in self.plans_for(left):
                        for probe in self.plans_for(right):
                            try:
                                add(make_hash_join(sub, build, probe))
                            except Exception:
                                continue
                        if len(roots) >= self.max_plans_per_subquery:
                            break
        self._memo[vset] = roots
        return roots

    def all_plans(self) -> List[Plan]:
        vset = frozenset(self.query.vertices)
        return [
            Plan(query=self.query, root=root, label="enumerated")
            for root in self.plans_for(vset)
        ]


class FullEnumerationOptimizer:
    """Picks the cheapest plan by enumerating the entire plan space."""

    def __init__(
        self,
        cost_model: CostModel,
        enable_binary_joins: bool = True,
        max_plans_per_subquery: int = 2000,
    ) -> None:
        self.cost_model = cost_model
        self.enable_binary_joins = enable_binary_joins
        self.max_plans_per_subquery = max_plans_per_subquery

    def optimize(self, query: QueryGraph) -> Plan:
        enumerator = PlanSpaceEnumerator(
            query,
            enable_binary_joins=self.enable_binary_joins,
            max_plans_per_subquery=self.max_plans_per_subquery,
        )
        plans = enumerator.all_plans()
        if not plans:
            raise OptimizerError(f"no plans found for {query.name}")
        best: Optional[Tuple[float, Plan]] = None
        for plan in plans:
            cost = self.cost_model.plan_cost(plan)
            plan.estimated_cost = cost
            if best is None or cost < best[0]:
                best = (cost, plan)
        assert best is not None
        best[1].label = "full-enumeration"
        return best[1]
