"""The cost model (Sections 3.3, 4.2, 5.2).

WCO (E/I) operators are costed with *i-cost* — the estimated total size of the
adjacency lists the operator will access — computed from the subgraph
catalogue.  HASH-JOIN operators are costed as ``w1 * n1 + w2 * n2`` i-cost
units, where ``n1``/``n2`` are the estimated cardinalities of the build and
probe inputs and the weights are either defaults or fitted empirically from
profiled runs (:func:`calibrate_hash_join_weights`).

The model is *cache-conscious*: when every adjacency list an E/I operator
intersects is anchored at query vertices matched strictly before the child's
last vertex, consecutive input tuples repeat the same intersection and the
intersection cache serves them, so the lists are charged once per match of
that smaller prefix instead of once per input tuple (Section 5.2, estimation
2).  Setting ``cache_conscious=False`` gives the cache-oblivious model the
paper compares against.

The model is also *execution-mode aware*: the tuple-at-a-time iterator
pipeline and the vectorized batch engine have very different per-tuple
overheads (the batch engine amortises interpreter cost over whole frames and
shares one intersection per distinct adjacency-key group), so each mode gets
its own :class:`CostConstants` set.  The iterator constants reproduce the
paper's original formulas exactly; the vectorized constants shrink
per-tuple terms and add a small per-batch overhead, which makes the DP
optimizer price batch-mode plans with per-batch (not per-tuple) costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.catalogue.catalogue import SubgraphCatalogue
from repro.catalogue.estimation import estimate_cardinality, extension_statistics
from repro.graph.graph import Graph
from repro.planner.descriptors import AdjListDescriptor
from repro.planner.plan import ExtendNode, HashJoinNode, Plan, PlanNode, ScanNode
from repro.query.query_graph import QueryGraph

DEFAULT_BUILD_WEIGHT = 2.0
DEFAULT_PROBE_WEIGHT = 1.0


@dataclass(frozen=True)
class CostConstants:
    """Per-execution-mode operator cost constants (all in i-cost units).

    Attributes
    ----------
    scan_weight:
        Cost per tuple emitted by a SCAN.
    intersect_weight:
        Cost per adjacency-list element an E/I operator reads.
    emit_weight:
        Cost per output tuple an E/I operator materialises (0 for the
        iterator pipeline, whose output cost is folded into the downstream
        operator's input; non-zero for the batch engine, which physically
        builds each frame with ``np.repeat`` expansions).
    build_weight / probe_weight:
        The ``w1``/``w2`` HASH-JOIN weights of Section 4.2.
    batch_overhead:
        Fixed cost per ``batch_size``-row frame an operator processes —
        the vectorized engine's per-batch bookkeeping (grouping, lexsort,
        boundary detection).  Zero for the iterator pipeline.
    delta_scan_weight:
        Extra cost per scanned tuple, scaled by the scanned partition's
        delta ratio, when the plan runs against a *dirty*
        :class:`~repro.storage.snapshot.GraphSnapshot`: the batch engine
        serves dirty partitions through lazily merged CSR views, and the
        merge (plus the lost base-array cache reuse) costs roughly in
        proportion to the overlay share of the partition.  Zero for the
        iterator pipeline, whose per-vertex merge path is already priced by
        its much larger per-tuple constants.
    """

    name: str
    scan_weight: float = 1.0
    intersect_weight: float = 1.0
    emit_weight: float = 0.0
    build_weight: float = DEFAULT_BUILD_WEIGHT
    probe_weight: float = DEFAULT_PROBE_WEIGHT
    batch_overhead: float = 0.0
    delta_scan_weight: float = 0.0


#: Reproduces the paper's iterator formulas bit-for-bit.
ITERATOR_COST_CONSTANTS = CostConstants(name="iterator")

#: Batch-engine constants: per-tuple scan/probe work is amortised over
#: columnar frames (the measured batch-executor speedups are 3-12x on
#: scan/probe-dominated plans), intersections still dominate but are shared
#: per distinct adjacency key, and every frame pays a small fixed overhead.
VECTORIZED_COST_CONSTANTS = CostConstants(
    name="vectorized",
    scan_weight=0.25,
    intersect_weight=1.0,
    emit_weight=0.02,
    build_weight=0.6,
    probe_weight=0.25,
    batch_overhead=4.0,
    delta_scan_weight=1.5,
)


def constants_for(vectorized: bool) -> CostConstants:
    """The constant set matching an execution mode flag (as plumbed from
    :class:`repro.executor.operators.ExecutionConfig.vectorized`)."""
    return VECTORIZED_COST_CONSTANTS if vectorized else ITERATOR_COST_CONSTANTS


@dataclass
class CostBreakdown:
    """Per-operator cost report, useful for EXPLAIN output and tests."""

    total: float
    per_operator: List[Tuple[str, float]]


class CostModel:
    """Estimates plan costs from a subgraph catalogue."""

    def __init__(
        self,
        graph: Graph,
        catalogue: SubgraphCatalogue,
        build_weight: Optional[float] = None,
        probe_weight: Optional[float] = None,
        cache_conscious: bool = True,
        constants: Optional[CostConstants] = None,
        batch_size: int = 2048,
    ) -> None:
        self.graph = graph
        self.catalogue = catalogue
        self.constants = constants if constants is not None else ITERATOR_COST_CONSTANTS
        # Explicit weights (e.g. from calibrate_hash_join_weights) override
        # the constant set.
        self.build_weight = build_weight if build_weight is not None else self.constants.build_weight
        self.probe_weight = probe_weight if probe_weight is not None else self.constants.probe_weight
        self.cache_conscious = cache_conscious
        self.batch_size = max(int(batch_size), 1)
        self._cardinality_cache: Dict[QueryGraph, float] = {}

    # ------------------------------------------------------------------ #
    # cardinalities
    # ------------------------------------------------------------------ #
    def cardinality(self, sub_query: QueryGraph, ordering: Optional[Sequence[str]] = None) -> float:
        """Estimated number of matches of ``sub_query`` (cached)."""
        if ordering is None and sub_query in self._cardinality_cache:
            return self._cardinality_cache[sub_query]
        try:
            value = estimate_cardinality(
                self.catalogue, sub_query, graph=self.graph, ordering=ordering
            )
        except Exception:
            value = estimate_cardinality(self.catalogue, sub_query, graph=self.graph)
        if ordering is None:
            self._cardinality_cache[sub_query] = value
        return value

    def extension_stats(
        self,
        sub_query: QueryGraph,
        descriptors: Sequence[AdjListDescriptor],
        to_label: Optional[int],
    ) -> Tuple[List[float], float]:
        return extension_statistics(
            self.catalogue, sub_query, descriptors, to_label, graph=self.graph
        )

    # ------------------------------------------------------------------ #
    # per-operator costs
    # ------------------------------------------------------------------ #
    def _batch_cost(self, tuples: float) -> float:
        """Fixed per-frame overhead for processing ``tuples`` rows in
        ``batch_size``-row frames (0 under the iterator constants)."""
        if self.constants.batch_overhead == 0.0 or tuples <= 0:
            return 0.0
        batches = float(np.ceil(tuples / self.batch_size))
        return batches * self.constants.batch_overhead

    def _scan_delta_penalty(self, node: ScanNode, count: float) -> float:
        """Per-partition dirty-snapshot surcharge for a SCAN.

        When the plan's graph is a dirty :class:`GraphSnapshot` (duck-typed
        via ``partition_delta_ratio``), the scanned edge partition pays
        ``delta_scan_weight`` extra i-cost units per tuple, scaled by the
        overlay share of that partition — partitions the delta never touched
        cost exactly what they cost on a flat CSR.
        """
        if self.constants.delta_scan_weight == 0.0 or count <= 0:
            return 0.0
        ratio_fn = getattr(self.graph, "partition_delta_ratio", None)
        if ratio_fn is None:
            return 0.0
        from repro.graph.graph import Direction

        edge = node.edge
        ratio = ratio_fn(
            Direction.FORWARD, edge.label, node.sub_query.vertex_label(edge.dst)
        )
        if ratio <= 0.0:
            return 0.0
        return count * min(ratio, 1.0) * self.constants.delta_scan_weight

    def scan_cost(self, node: ScanNode) -> float:
        """A SCAN costs its output cardinality (the selectivity of the label
        on the scanned query edge — the DP's base case), weighted by the
        execution mode's per-tuple scan constant, plus a per-partition
        surcharge when scanning a dirty snapshot's lazily merged views."""
        edge = node.edge
        count = self.catalogue.edge_count(
            edge.label,
            node.sub_query.vertex_label(edge.src),
            node.sub_query.vertex_label(edge.dst),
        )
        return (
            count * self.constants.scan_weight
            + self._batch_cost(count)
            + self._scan_delta_penalty(node, count)
        )

    def _cache_prefix_length(self, node: ExtendNode) -> int:
        """Number of leading child vertices the intersection actually depends
        on.  If it is smaller than the child's arity, consecutive child tuples
        sharing that prefix hit the intersection cache."""
        child_order = node.child.out_vertices
        positions = [child_order.index(d.from_vertex) for d in node.descriptors]
        return max(positions) + 1

    def extend_cost(self, node: ExtendNode) -> float:
        """Estimated i-cost of one E/I operator (Eq. 2 and its cache-aware
        refinement)."""
        child_query = node.child.sub_query
        sizes, _ = self.extension_stats(child_query, node.descriptors, node.to_vertex_label)
        total_list_size = float(sum(sizes))
        multiplier = self.cardinality(child_query)
        if self.cache_conscious:
            prefix_len = self._cache_prefix_length(node)
            child_order = node.child.out_vertices
            if prefix_len < len(child_order):
                prefix = child_order[:prefix_len]
                if len(prefix) >= 2 and node.sub_query.connected_projection_exists(prefix):
                    multiplier = min(
                        multiplier, self.cardinality(child_query.project(prefix))
                    )
                elif len(prefix) == 1:
                    # The intersection depends on a single already-matched
                    # vertex: it repeats once per distinct binding of that
                    # vertex, bounded by the number of graph vertices.
                    multiplier = min(multiplier, float(self.graph.num_vertices))
        cost = multiplier * total_list_size * self.constants.intersect_weight
        if self.constants.emit_weight or self.constants.batch_overhead:
            input_cardinality = self.cardinality(child_query)
            output_cardinality = self.cardinality(node.sub_query)
            cost += output_cardinality * self.constants.emit_weight
            cost += self._batch_cost(input_cardinality)
        return cost

    def hash_join_cost(self, node: HashJoinNode) -> float:
        n_build = self.cardinality(node.build.sub_query)
        n_probe = self.cardinality(node.probe.sub_query)
        return (
            self.build_weight * n_build
            + self.probe_weight * n_probe
            + self._batch_cost(n_build + n_probe)
        )

    def operator_cost(self, node: PlanNode) -> float:
        if isinstance(node, ScanNode):
            return self.scan_cost(node)
        if isinstance(node, ExtendNode):
            return self.extend_cost(node)
        if isinstance(node, HashJoinNode):
            return self.hash_join_cost(node)
        raise TypeError(f"unknown plan node {type(node).__name__}")

    # ------------------------------------------------------------------ #
    # plan costs
    # ------------------------------------------------------------------ #
    def plan_cost(self, plan_or_node) -> float:
        root = plan_or_node.root if isinstance(plan_or_node, Plan) else plan_or_node
        return float(sum(self.operator_cost(n) for n in root.iter_nodes()))

    def cost_breakdown(self, plan: Plan) -> CostBreakdown:
        rows = [
            (node._describe_line(), self.operator_cost(node)) for node in plan.root.iter_nodes()
        ]
        return CostBreakdown(total=float(sum(c for _, c in rows)), per_operator=rows)


def annotate_operator_estimates(plan: Plan, cost_model: CostModel) -> Plan:
    """Record each operator's estimated output cardinality on the plan.

    The mapping is keyed by ``display_name()`` — the same string the
    executors use as the per-operator profile key — so traces can join the
    executor's *actual* output counts with these estimates into per-operator
    q-errors.  Two operators can share a display name (e.g. duplicate SCANs
    of the same query edge in a bushy plan); their estimates are summed,
    matching how the executor sums their counters under one profile key.
    Failures are swallowed: a plan without annotations simply yields traces
    without q-errors, never a failed query.
    """
    estimates: Dict[str, float] = {}
    try:
        for node in plan.root.iter_nodes():
            name = node.display_name()
            estimates[name] = estimates.get(name, 0.0) + float(
                cost_model.cardinality(node.sub_query)
            )
    except Exception:
        return plan
    plan.operator_estimates = estimates
    return plan


# --------------------------------------------------------------------------- #
# hash-join weight calibration (Section 4.2)
# --------------------------------------------------------------------------- #
def calibrate_hash_join_weights(
    graph: Graph,
    catalogue: SubgraphCatalogue,
    sample_queries: Optional[Sequence[QueryGraph]] = None,
) -> Tuple[float, float]:
    """Fit ``(w1, w2)`` from profiled runs.

    We execute a handful of WCO plans to learn how much wall-clock time one
    i-cost unit represents, then execute hash-join plans, convert their times
    into i-cost units, and least-squares fit ``w1 * n1 + w2 * n2``.
    Falls back to the defaults when there is not enough signal.
    """
    from repro.executor.operators import ExecutionConfig
    from repro.executor.pipeline import execute_plan
    from repro.planner.plan import make_hash_join, make_scan, wco_plan_from_order
    from repro.query import catalog_queries

    queries = list(sample_queries) if sample_queries else [catalog_queries.asymmetric_triangle()]
    icost_time: List[Tuple[float, float]] = []
    for query in queries:
        from repro.planner.qvo import enumerate_orderings

        orderings = enumerate_orderings(query, limit=2)
        for ordering in orderings:
            plan = wco_plan_from_order(query, ordering)
            result = execute_plan(plan, graph, ExecutionConfig())
            if result.profile.intersection_cost > 0:
                icost_time.append(
                    (float(result.profile.intersection_cost), result.profile.elapsed_seconds)
                )
    if not icost_time:
        return DEFAULT_BUILD_WEIGHT, DEFAULT_PROBE_WEIGHT
    seconds_per_icost = float(
        np.median([t / c for c, t in icost_time if c > 0]) or 1e-9
    )

    # Hash-join samples: join two edge scans of a 2-path query.
    two_path = catalog_queries.path(3, "calibration-2-path")
    rows: List[Tuple[float, float, float]] = []
    scan_a = make_scan(two_path, two_path.edges[0])
    scan_b = make_scan(two_path, two_path.edges[1])
    join = make_hash_join(two_path, scan_a, scan_b)
    plan = Plan(query=two_path, root=join, label="calibration-join")
    result = execute_plan(plan, graph)
    n1 = float(result.profile.hash_table_entries)
    n2 = float(result.profile.hash_probes)
    if n1 > 0 and n2 > 0 and seconds_per_icost > 0:
        converted = result.profile.elapsed_seconds / seconds_per_icost
        rows.append((n1, n2, converted))
    if not rows:
        return DEFAULT_BUILD_WEIGHT, DEFAULT_PROBE_WEIGHT
    a = np.array([[r[0], r[1]] for r in rows])
    b = np.array([r[2] for r in rows])
    solution, *_ = np.linalg.lstsq(a, b, rcond=None)
    w1, w2 = float(solution[0]), float(solution[1])
    if not np.isfinite(w1) or not np.isfinite(w2) or w1 <= 0 or w2 <= 0:
        return DEFAULT_BUILD_WEIGHT, DEFAULT_PROBE_WEIGHT
    return w1, w2
