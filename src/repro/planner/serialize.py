"""Plan and query (de)serialization.

Plans produced by the optimizer are plain trees of SCAN, EXTEND/INTERSECT and
HASH-JOIN nodes (Section 4.1).  This module converts them to and from
JSON-compatible dictionaries so that

* chosen plans can be cached next to a dataset and replayed without
  re-optimizing (the paper's optimizer takes up to ~1.4s for large queries),
* experiment harnesses can log the exact plan that produced every measurement,
* plans can be rendered with external tooling via Graphviz DOT.

The dictionary format is stable and versioned (``FORMAT_VERSION``); round
trips preserve the plan tree exactly (including descriptor order and scan
direction), which the test suite checks structurally via ``Plan.signature``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Union

from repro.errors import PlanError
from repro.graph.graph import Direction
from repro.planner.descriptors import AdjListDescriptor
from repro.planner.plan import (
    ExtendNode,
    HashJoinNode,
    Plan,
    PlanNode,
    ScanNode,
)
from repro.query.query_graph import QueryEdge, QueryGraph

FORMAT_VERSION = 1


# --------------------------------------------------------------------------- #
# query graphs
# --------------------------------------------------------------------------- #
def query_to_dict(query: QueryGraph) -> Dict:
    """Encode a query graph as a JSON-compatible dictionary."""
    return {
        "name": query.name,
        "edges": [
            {"src": e.src, "dst": e.dst, "label": e.label} for e in query.edges
        ],
        "vertex_labels": dict(query.vertex_labels),
    }


def query_from_dict(data: Dict) -> QueryGraph:
    """Rebuild a query graph from :func:`query_to_dict` output."""
    edges = [QueryEdge(e["src"], e["dst"], e.get("label")) for e in data["edges"]]
    return QueryGraph(
        edges,
        vertex_labels=data.get("vertex_labels") or {},
        name=data.get("name", "query"),
    )


# --------------------------------------------------------------------------- #
# plan nodes
# --------------------------------------------------------------------------- #
def _descriptor_to_dict(descriptor: AdjListDescriptor) -> Dict:
    return {
        "from_vertex": descriptor.from_vertex,
        "direction": descriptor.direction.value,
        "edge_label": descriptor.edge_label,
    }


def _descriptor_from_dict(data: Dict) -> AdjListDescriptor:
    return AdjListDescriptor(
        from_vertex=data["from_vertex"],
        direction=Direction(data["direction"]),
        edge_label=data.get("edge_label"),
    )


def _node_to_dict(node: PlanNode) -> Dict:
    if isinstance(node, ScanNode):
        return {
            "type": "scan",
            "edge": {"src": node.edge.src, "dst": node.edge.dst, "label": node.edge.label},
            "out_vertices": list(node.out_vertices),
        }
    if isinstance(node, ExtendNode):
        return {
            "type": "extend",
            "to_vertex": node.to_vertex,
            "to_vertex_label": node.to_vertex_label,
            "descriptors": [_descriptor_to_dict(d) for d in node.descriptors],
            "out_vertices": list(node.out_vertices),
            "child": _node_to_dict(node.child),
        }
    if isinstance(node, HashJoinNode):
        return {
            "type": "hash_join",
            "join_vertices": list(node.join_vertices),
            "out_vertices": list(node.out_vertices),
            "build": _node_to_dict(node.build),
            "probe": _node_to_dict(node.probe),
        }
    raise PlanError(f"cannot serialize plan node of type {type(node).__name__}")


def _node_from_dict(data: Dict, query: QueryGraph) -> PlanNode:
    node_type = data.get("type")
    out_vertices = tuple(data["out_vertices"])
    if node_type == "scan":
        edge_data = data["edge"]
        edge = QueryEdge(edge_data["src"], edge_data["dst"], edge_data.get("label"))
        return ScanNode(
            sub_query=query.project([edge.src, edge.dst]),
            out_vertices=out_vertices,
            edge=edge,
        )
    if node_type == "extend":
        child = _node_from_dict(data["child"], query)
        descriptors = tuple(_descriptor_from_dict(d) for d in data["descriptors"])
        return ExtendNode(
            sub_query=query.project(out_vertices),
            out_vertices=out_vertices,
            child=child,
            to_vertex=data["to_vertex"],
            descriptors=descriptors,
            to_vertex_label=data.get("to_vertex_label"),
        )
    if node_type == "hash_join":
        build = _node_from_dict(data["build"], query)
        probe = _node_from_dict(data["probe"], query)
        return HashJoinNode(
            sub_query=query.project(out_vertices),
            out_vertices=out_vertices,
            build=build,
            probe=probe,
            join_vertices=tuple(data["join_vertices"]),
        )
    raise PlanError(f"unknown plan node type in serialized plan: {node_type!r}")


# --------------------------------------------------------------------------- #
# whole plans
# --------------------------------------------------------------------------- #
def plan_to_dict(plan: Plan) -> Dict:
    """Encode a plan (and its query) as a JSON-compatible dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "query": query_to_dict(plan.query),
        "root": _node_to_dict(plan.root),
        "estimated_cost": None if plan.estimated_cost != plan.estimated_cost else plan.estimated_cost,
        "estimated_cardinality": (
            None
            if plan.estimated_cardinality != plan.estimated_cardinality
            else plan.estimated_cardinality
        ),
        "label": plan.label,
        "adaptive": plan.adaptive,
    }


def plan_from_dict(data: Dict, query: Optional[QueryGraph] = None) -> Plan:
    """Rebuild a plan from :func:`plan_to_dict` output.

    Parameters
    ----------
    query:
        Optionally supply the query object to attach the plan to; when omitted
        the query embedded in the dictionary is reconstructed.
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise PlanError(f"unsupported plan format version: {version!r}")
    if query is None:
        query = query_from_dict(data["query"])
    root = _node_from_dict(data["root"], query)
    cost = data.get("estimated_cost")
    cardinality = data.get("estimated_cardinality")
    return Plan(
        query=query,
        root=root,
        estimated_cost=float("nan") if cost is None else float(cost),
        estimated_cardinality=float("nan") if cardinality is None else float(cardinality),
        label=data.get("label", ""),
        adaptive=bool(data.get("adaptive", False)),
    )


def plan_to_json(plan: Plan, indent: Optional[int] = 2) -> str:
    """Serialize a plan to a JSON string."""
    return json.dumps(plan_to_dict(plan), indent=indent)


def plan_from_json(text: str, query: Optional[QueryGraph] = None) -> Plan:
    """Deserialize a plan from a JSON string."""
    return plan_from_dict(json.loads(text), query=query)


def save_plan(plan: Plan, path: str) -> None:
    """Write a plan to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(plan_to_json(plan))


def load_plan(path: str, query: Optional[QueryGraph] = None) -> Plan:
    """Read a plan previously written by :func:`save_plan`."""
    with open(path, "r", encoding="utf-8") as handle:
        return plan_from_json(handle.read(), query=query)


# --------------------------------------------------------------------------- #
# Graphviz DOT rendering
# --------------------------------------------------------------------------- #
def _dot_label(node: PlanNode) -> str:
    if isinstance(node, ScanNode):
        return f"SCAN\\n{node.edge!r}"
    if isinstance(node, ExtendNode):
        descs = ", ".join(repr(d) for d in node.descriptors)
        return f"E/I -> {node.to_vertex}\\n[{descs}]"
    if isinstance(node, HashJoinNode):
        return "HASH-JOIN\\non " + ",".join(node.join_vertices)
    return type(node).__name__


def plan_to_dot(plan: Plan, graph_name: str = "plan") -> str:
    """Render a plan tree as a Graphviz DOT digraph.

    Child operators point at their parents (data flows upward, as in the
    paper's plan figures); the root is the node computing the full query.
    """
    lines: List[str] = [f"digraph {graph_name} {{", "  rankdir=BT;", "  node [shape=box];"]
    ids: Dict[int, str] = {}
    for index, node in enumerate(plan.root.iter_nodes()):
        ids[id(node)] = f"n{index}"
        lines.append(f'  n{index} [label="{_dot_label(node)}"];')
    for node in plan.root.iter_nodes():
        for child in node.children():
            lines.append(f"  {ids[id(child)]} -> {ids[id(node)]};")
    lines.append("}")
    return "\n".join(lines)


def plans_equal(a: Plan, b: Plan) -> bool:
    """Structural equality of two plans (same tree, same descriptors)."""
    return a.signature() == b.signature() and a.query == b.query


__all__ = [
    "FORMAT_VERSION",
    "query_to_dict",
    "query_from_dict",
    "plan_to_dict",
    "plan_from_dict",
    "plan_to_json",
    "plan_from_json",
    "save_plan",
    "load_plan",
    "plan_to_dot",
    "plans_equal",
]
