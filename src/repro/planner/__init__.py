"""Plan representation, plan enumeration, cost model, and the optimizers.

The cost model and the optimizers are imported lazily to avoid a circular
import with :mod:`repro.catalogue` (the catalogue stores plan descriptors, and
the cost model reads the catalogue).
"""

from repro.planner.descriptors import AdjListDescriptor
from repro.planner.plan import ExtendNode, HashJoinNode, Plan, PlanNode, ScanNode
from repro.planner import qvo

__all__ = [
    "AdjListDescriptor",
    "Plan",
    "PlanNode",
    "ScanNode",
    "ExtendNode",
    "HashJoinNode",
    "CostModel",
    "DynamicProgrammingOptimizer",
    "FullEnumerationOptimizer",
    "qvo",
]


def __getattr__(name: str):
    if name == "CostModel":
        from repro.planner.cost_model import CostModel

        return CostModel
    if name == "DynamicProgrammingOptimizer":
        from repro.planner.dp_optimizer import DynamicProgrammingOptimizer

        return DynamicProgrammingOptimizer
    if name == "FullEnumerationOptimizer":
        from repro.planner.full_enumeration import FullEnumerationOptimizer

        return FullEnumerationOptimizer
    raise AttributeError(f"module 'repro.planner' has no attribute {name!r}")
