"""The query library used throughout the paper.

The evaluation (Figure 6) uses 14 queries Q1..Q14 with up to 7 query vertices
and 21 query edges, mixing acyclic, sparsely-cyclic, and clique queries.  The
paper renders them only as pictures; the shapes below are reconstructed from
the figure and the surrounding text (e.g. Q5/Q6/Q7/Q14 are cliques, Q8 is two
triangles sharing a vertex, Q10 joins a diamond and a triangle on ``a4``,
Q11/Q13 are acyclic, Q12 is the 6-cycle).  EXPERIMENTS.md documents this
reconstruction.

Section 3's demonstration queries (asymmetric triangle, tailed triangle,
diamond-X, symmetric diamond-X) are also provided.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.query.query_graph import QueryEdge, QueryGraph


# --------------------------------------------------------------------------- #
# Section 1 / Section 3 demonstration queries
# --------------------------------------------------------------------------- #
def asymmetric_triangle() -> QueryGraph:
    """``a1->a2, a2->a3, a1->a3`` (Section 3.2.1)."""
    return QueryGraph(
        [("a1", "a2"), ("a2", "a3"), ("a1", "a3")], name="asymmetric-triangle"
    )


def triangle() -> QueryGraph:
    """Alias for the asymmetric triangle, the paper's Q1."""
    q = asymmetric_triangle()
    q.name = "Q1"
    return q


def directed_3cycle() -> QueryGraph:
    """``a1->a2->a3->a1`` — the 'symmetric' triangle of Section 3.2.3."""
    return QueryGraph(
        [("a1", "a2"), ("a2", "a3"), ("a3", "a1")], name="directed-3-cycle"
    )


def diamond_x() -> QueryGraph:
    """The diamond-X query of Figure 1:
    ``E1(a1,a2), E2(a1,a3), E3(a2,a3), E4(a2,a4), E5(a3,a4)``."""
    return QueryGraph(
        [
            ("a1", "a2"),
            ("a1", "a3"),
            ("a2", "a3"),
            ("a2", "a4"),
            ("a3", "a4"),
        ],
        name="diamond-X",
    )


def symmetric_diamond_x() -> QueryGraph:
    """The diamond-X variant of Figure 2a: two directed 3-cycles sharing the
    edge ``a2->a3`` (extensions intersect one forward and one backward list)."""
    return QueryGraph(
        [
            ("a2", "a3"),
            ("a3", "a1"),
            ("a1", "a2"),
            ("a3", "a4"),
            ("a4", "a2"),
        ],
        name="symmetric-diamond-X",
    )


def tailed_triangle() -> QueryGraph:
    """Figure 2b: an asymmetric triangle on ``a1,a2,a3`` with a tail ``a4->a2``."""
    return QueryGraph(
        [
            ("a1", "a2"),
            ("a1", "a3"),
            ("a2", "a3"),
            ("a4", "a2"),
        ],
        name="tailed-triangle",
    )


# --------------------------------------------------------------------------- #
# helpers for clique / cycle construction
# --------------------------------------------------------------------------- #
def clique(num_vertices: int, name: str) -> QueryGraph:
    """Acyclic orientation of the complete graph: edge ``ai->aj`` for i<j."""
    edges: List[QueryEdge] = []
    for i in range(1, num_vertices + 1):
        for j in range(i + 1, num_vertices + 1):
            edges.append(QueryEdge(f"a{i}", f"a{j}"))
    return QueryGraph(edges, name=name)


def directed_cycle(num_vertices: int, name: str) -> QueryGraph:
    edges = [
        QueryEdge(f"a{i}", f"a{i % num_vertices + 1}") for i in range(1, num_vertices + 1)
    ]
    return QueryGraph(edges, name=name)


def path(num_vertices: int, name: str) -> QueryGraph:
    edges = [QueryEdge(f"a{i}", f"a{i+1}") for i in range(1, num_vertices)]
    return QueryGraph(edges, name=name)


def star(num_leaves: int, name: str) -> QueryGraph:
    edges = [QueryEdge("a1", f"a{i+2}") for i in range(num_leaves)]
    return QueryGraph(edges, name=name)


# --------------------------------------------------------------------------- #
# Figure 6: Q1 .. Q14
# --------------------------------------------------------------------------- #
def q1() -> QueryGraph:
    """Triangle."""
    return triangle()


def q2() -> QueryGraph:
    """Directed 4-cycle (rectangle)."""
    q = directed_cycle(4, "Q2")
    return q


def q3() -> QueryGraph:
    """Diamond-X (4 vertices, 5 edges)."""
    q = diamond_x()
    q.name = "Q3"
    return q


def q4() -> QueryGraph:
    """Diamond-X variant built from two directed 3-cycles sharing an edge
    (the symmetric diamond-X of Figure 2a)."""
    q = symmetric_diamond_x()
    q.name = "Q4"
    return q


def q5() -> QueryGraph:
    """4-clique."""
    return clique(4, "Q5")


def q6() -> QueryGraph:
    """4-clique with one reciprocal edge (a denser clique-like query)."""
    base = clique(4, "Q6")
    edges = list(base.edges) + [QueryEdge("a2", "a1")]
    return QueryGraph(edges, name="Q6")


def q7() -> QueryGraph:
    """5-clique."""
    return clique(5, "Q7")


def q8() -> QueryGraph:
    """Two triangles sharing the vertex ``a3`` (bowtie); the query EH
    decomposes into two triangle bags joined on a3 (Section 8.4.1)."""
    return QueryGraph(
        [
            ("a1", "a2"),
            ("a1", "a3"),
            ("a2", "a3"),
            ("a3", "a4"),
            ("a3", "a5"),
            ("a4", "a5"),
        ],
        name="Q8",
    )


def q9() -> QueryGraph:
    """Two vertex-disjoint triangles bridged by a vertex that closes a 2-way
    intersection (the Figure 10 query: compute two triangles, hash-join them,
    then extend with an intersection)."""
    return QueryGraph(
        [
            # triangle 1
            ("a1", "a2"),
            ("a1", "a3"),
            ("a2", "a3"),
            # triangle 2
            ("a4", "a5"),
            ("a4", "a6"),
            ("a5", "a6"),
            # bridge edges joining the triangles
            ("a3", "a4"),
            ("a2", "a5"),
        ],
        name="Q9",
    )


def q10() -> QueryGraph:
    """A diamond (a1..a4) and a triangle (a4,a5,a6) sharing ``a4``
    (Section 8.3 / Appendix A)."""
    return QueryGraph(
        [
            # diamond on a1..a4 (4-cycle without the chord)
            ("a1", "a2"),
            ("a1", "a3"),
            ("a2", "a4"),
            ("a3", "a4"),
            # triangle on a4, a5, a6
            ("a4", "a5"),
            ("a4", "a6"),
            ("a5", "a6"),
        ],
        name="Q10",
    )


def q11() -> QueryGraph:
    """Acyclic 5-vertex query (a small out-tree)."""
    return QueryGraph(
        [
            ("a1", "a2"),
            ("a2", "a3"),
            ("a2", "a4"),
            ("a4", "a5"),
        ],
        name="Q11",
    )


def q12() -> QueryGraph:
    """The 6-cycle (the query whose best hybrid plan is not a GHD, Fig. 1d)."""
    return directed_cycle(6, "Q12")


def q13() -> QueryGraph:
    """Acyclic 6-vertex query (a deeper tree)."""
    return QueryGraph(
        [
            ("a1", "a2"),
            ("a2", "a3"),
            ("a3", "a4"),
            ("a2", "a5"),
            ("a5", "a6"),
        ],
        name="Q13",
    )


def q14() -> QueryGraph:
    """7-clique (the 'very difficult' scalability query of Section 8.5)."""
    return clique(7, "Q14")


_REGISTRY: Dict[str, Callable[[], QueryGraph]] = {
    "Q1": q1,
    "Q2": q2,
    "Q3": q3,
    "Q4": q4,
    "Q5": q5,
    "Q6": q6,
    "Q7": q7,
    "Q8": q8,
    "Q9": q9,
    "Q10": q10,
    "Q11": q11,
    "Q12": q12,
    "Q13": q13,
    "Q14": q14,
    "diamond-X": diamond_x,
    "symmetric-diamond-X": symmetric_diamond_x,
    "tailed-triangle": tailed_triangle,
    "asymmetric-triangle": asymmetric_triangle,
    "directed-3-cycle": directed_3cycle,
}


def get(name: str) -> QueryGraph:
    """Fetch a query by name (``Q1`` .. ``Q14`` or a demo-query name)."""
    key = name if name in _REGISTRY else name.upper()
    if key not in _REGISTRY:
        raise KeyError(f"unknown query {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[key]()


def all_benchmark_queries() -> Dict[str, QueryGraph]:
    """Q1..Q14 as a name -> query mapping."""
    return {f"Q{i}": _REGISTRY[f"Q{i}"]() for i in range(1, 15)}
