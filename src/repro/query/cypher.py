"""A Cypher-flavoured query parser with named labels.

Graphflow exposes a subset of openCypher (Section 7).  The reproduction's
basic pattern parser (:mod:`repro.query.parser`) covers integer-labeled edge
lists; this module adds the query front end a user of the system would
actually write:

    MATCH (a:Person)-[:FOLLOWS]->(b:Person), (b)-[:FOLLOWS]->(c), (a)-[:FOLLOWS]->(c)
    RETURN count(*)

Supported fragment
------------------
* an optional leading ``MATCH`` keyword,
* comma-separated *path patterns*, each a chain of nodes and relationships:
  ``(a)-->(b)<-[:TYPE]-(c)``,
* node patterns ``(name)``, ``(name:Label)``, ``(:Label)`` and ``()`` —
  anonymous nodes receive generated names,
* relationship patterns ``-->``, ``<--``, ``-[:TYPE]->``, ``<-[r:TYPE]-``,
  ``-[r]->`` (the variable is accepted and ignored; undirected relationships
  are rejected because the paper's queries are directed),
* an optional trailing ``RETURN`` clause, which is accepted and ignored — the
  engine evaluates the pattern and returns matches/counts.

Named labels are resolved to integer label ids through a
:class:`repro.graph.schema.GraphSchema`; integer tokens are used as raw ids so
the parser also covers unlabeled/auto-labeled graphs.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import QueryParseError
from repro.graph.schema import GraphSchema
from repro.query.query_graph import QueryEdge, QueryGraph

_LABEL_TOKEN = r"[A-Za-z_][\w]*|\d+"
_NODE_RE = re.compile(
    r"\(\s*(?P<name>[A-Za-z_][\w]*)?\s*(?::\s*(?P<label>" + _LABEL_TOKEN + r"))?\s*\)"
)
_REL_RE = re.compile(
    r"(?P<left><)?-"
    r"(?:\[\s*(?:[A-Za-z_][\w]*)?\s*(?::\s*(?P<type>" + _LABEL_TOKEN + r"))?\s*\])?"
    r"-(?P<right>>)?"
)
_MATCH_RE = re.compile(r"^\s*match\b", re.IGNORECASE)
_RETURN_RE = re.compile(r"\breturn\b", re.IGNORECASE)
_WHERE_RE = re.compile(r"\bwhere\b", re.IGNORECASE)


class _AnonymousNames:
    """Generates fresh names for anonymous node patterns."""

    def __init__(self) -> None:
        self._counter = 0

    def next(self) -> str:
        self._counter += 1
        return f"_anon{self._counter}"


def _split_clauses(text: str) -> str:
    """Strip the MATCH keyword and the RETURN clause, reject WHERE."""
    if _WHERE_RE.search(text):
        raise QueryParseError(
            "WHERE clauses are not supported; encode predicates as vertex/edge labels"
        )
    match_return = _RETURN_RE.search(text)
    if match_return:
        text = text[: match_return.start()]
    text = _MATCH_RE.sub("", text, count=1)
    return text.strip()


def _parse_node(
    chunk: str,
    position: int,
    names: _AnonymousNames,
) -> Tuple[str, Optional[str], int]:
    match = _NODE_RE.match(chunk, position)
    if not match:
        raise QueryParseError(
            f"expected a node pattern at ...{chunk[position:position + 25]!r}"
        )
    name = match.group("name") or names.next()
    return name, match.group("label"), match.end()


def _parse_relationship(chunk: str, position: int) -> Tuple[bool, Optional[str], int]:
    """Returns (points_right, type_token, new_position)."""
    match = _REL_RE.match(chunk, position)
    if not match:
        raise QueryParseError(
            f"expected a relationship pattern at ...{chunk[position:position + 25]!r}"
        )
    left, right = match.group("left"), match.group("right")
    if left and right:
        raise QueryParseError("relationships cannot point both ways")
    if not left and not right:
        raise QueryParseError(
            "undirected relationships are not supported; use -> or <-"
        )
    return bool(right), match.group("type"), match.end()


def _split_patterns(text: str) -> List[str]:
    """Split on commas that separate path patterns (none occur inside nodes
    or relationship brackets in the supported fragment)."""
    parts = [part.strip() for part in text.split(",")]
    return [part for part in parts if part]


def parse_cypher(
    text: str,
    schema: Optional[GraphSchema] = None,
    name: str = "query",
    create_labels: bool = False,
) -> QueryGraph:
    """Parse a Cypher-style ``MATCH`` pattern into a :class:`QueryGraph`.

    Parameters
    ----------
    schema:
        Resolves named labels to integer ids.  Required whenever the pattern
        uses non-numeric labels.
    create_labels:
        Register unknown label names in the schema instead of raising.

    >>> schema = GraphSchema.from_names(["Person"], ["FOLLOWS"])
    >>> q = parse_cypher(
    ...     "MATCH (a:Person)-[:FOLLOWS]->(b), (b)-[:FOLLOWS]->(a) RETURN count(*)",
    ...     schema,
    ... )
    >>> q.num_vertices, q.num_edges
    (2, 2)
    """
    body = _split_clauses(text)
    if not body:
        raise QueryParseError("empty MATCH pattern")
    resolver = schema or GraphSchema()
    names = _AnonymousNames()
    edges: List[QueryEdge] = []
    vertex_labels: Dict[str, Optional[int]] = {}

    def register_vertex(vertex: str, label_token: Optional[str]) -> None:
        if label_token is None:
            vertex_labels.setdefault(vertex, None)
            return
        try:
            label = resolver.resolve_vertex_label(label_token, create=create_labels)
        except KeyError as exc:
            raise QueryParseError(str(exc)) from exc
        existing = vertex_labels.get(vertex)
        if existing is not None and existing != label:
            raise QueryParseError(
                f"conflicting labels for vertex {vertex!r}: {existing} vs {label}"
            )
        vertex_labels[vertex] = label

    for pattern in _split_patterns(body):
        position = 0
        current, label_token, position = _parse_node(pattern, position, names)
        register_vertex(current, label_token)
        saw_relationship = False
        while position < len(pattern):
            points_right, type_token, position = _parse_relationship(pattern, position)
            nxt, next_label, position = _parse_node(pattern, position, names)
            register_vertex(nxt, next_label)
            try:
                edge_label = resolver.resolve_edge_label(type_token, create=create_labels)
            except KeyError as exc:
                raise QueryParseError(str(exc)) from exc
            src, dst = (current, nxt) if points_right else (nxt, current)
            edges.append(QueryEdge(src, dst, edge_label))
            current = nxt
            saw_relationship = True
        if not saw_relationship:
            raise QueryParseError(
                f"pattern {pattern!r} matches a single node; subgraph queries need edges"
            )
        if position != len(pattern):
            raise QueryParseError(f"trailing characters in pattern: {pattern[position:]!r}")

    labels = {v: lab for v, lab in vertex_labels.items() if lab is not None}
    return QueryGraph(edges, vertex_labels=labels, name=name)


def format_cypher(query: QueryGraph, schema: Optional[GraphSchema] = None) -> str:
    """Render a query graph back into a single-line ``MATCH`` statement.

    Label ids are rendered through ``schema`` when it knows them, otherwise as
    raw integers, so the output is always re-parseable with the same schema.
    """

    def vertex(v: str) -> str:
        label = query.vertex_label(v)
        if label is None:
            return f"({v})"
        if schema is not None:
            try:
                return f"({v}:{schema.vertex_label_name(label)})"
            except KeyError:
                pass
        return f"({v}:{label})"

    parts: List[str] = []
    for edge in query.edges:
        if edge.label is None:
            rel = "-->"
        else:
            token: str
            if schema is not None:
                try:
                    token = schema.edge_label_name(edge.label)
                except KeyError:
                    token = str(edge.label)
            else:
                token = str(edge.label)
            rel = f"-[:{token}]->"
        parts.append(f"{vertex(edge.src)}{rel}{vertex(edge.dst)}")
    return "MATCH " + ", ".join(parts) + " RETURN count(*)"


def looks_like_cypher(text: str) -> bool:
    """Heuristic used by the high-level API to route query strings: anything
    starting with ``MATCH`` (case-insensitive) goes through this parser."""
    return bool(_MATCH_RE.match(text))


__all__ = ["parse_cypher", "format_cypher", "looks_like_cypher"]
