"""Directed, labeled query graphs.

A subgraph query ``Q(V_Q, E_Q)`` is a small directed, connected pattern whose
vertices and edges may carry labels (Section 2).  Query vertices are named
(``a1``, ``a2``, ...); labels are integers or ``None`` (wildcard = any label).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import InvalidQueryError


@dataclass(frozen=True)
class QueryEdge:
    """A directed query edge ``src -> dst`` with an optional edge label."""

    src: str
    dst: str
    label: Optional[int] = None

    def endpoints(self) -> FrozenSet[str]:
        return frozenset((self.src, self.dst))

    def touches(self, vertex: str) -> bool:
        return vertex == self.src or vertex == self.dst

    def other(self, vertex: str) -> str:
        if vertex == self.src:
            return self.dst
        if vertex == self.dst:
            return self.src
        raise KeyError(f"{vertex} is not an endpoint of {self}")

    def __repr__(self) -> str:
        lab = "" if self.label is None else f"[{self.label}]"
        return f"{self.src}-{lab}->{self.dst}"


class QueryGraph:
    """A directed, labeled query graph.

    Parameters
    ----------
    edges:
        Iterable of :class:`QueryEdge` (or ``(src, dst)`` / ``(src, dst, label)``
        tuples).
    vertex_labels:
        Optional mapping from vertex name to label; unspecified vertices get
        ``None`` (wildcard).
    name:
        Human-readable name used in experiment reports.
    """

    def __init__(
        self,
        edges: Iterable,
        vertex_labels: Optional[Dict[str, Optional[int]]] = None,
        name: str = "query",
    ) -> None:
        normalized: List[QueryEdge] = []
        for e in edges:
            if isinstance(e, QueryEdge):
                normalized.append(e)
            elif len(e) == 2:
                normalized.append(QueryEdge(e[0], e[1]))
            elif len(e) == 3:
                normalized.append(QueryEdge(e[0], e[1], e[2]))
            else:
                raise InvalidQueryError(f"cannot interpret query edge {e!r}")
        if not normalized:
            raise InvalidQueryError("a query must contain at least one edge")
        seen: Set[Tuple[str, str, Optional[int]]] = set()
        self._edges: List[QueryEdge] = []
        for e in normalized:
            if e.src == e.dst:
                raise InvalidQueryError("query self-loops are not supported")
            key = (e.src, e.dst, e.label)
            if key not in seen:
                seen.add(key)
                self._edges.append(e)
        vertices: List[str] = []
        for e in self._edges:
            for v in (e.src, e.dst):
                if v not in vertices:
                    vertices.append(v)
        self._vertices: Tuple[str, ...] = tuple(vertices)
        self._vertex_labels: Dict[str, Optional[int]] = {v: None for v in vertices}
        if vertex_labels:
            for v, lab in vertex_labels.items():
                if v in self._vertex_labels:
                    self._vertex_labels[v] = lab
        self.name = name

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def vertices(self) -> Tuple[str, ...]:
        """Query vertices in first-mention order."""
        return self._vertices

    @property
    def edges(self) -> Tuple[QueryEdge, ...]:
        return tuple(self._edges)

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def vertex_label(self, vertex: str) -> Optional[int]:
        return self._vertex_labels[vertex]

    @property
    def vertex_labels(self) -> Dict[str, Optional[int]]:
        return dict(self._vertex_labels)

    def has_vertex(self, vertex: str) -> bool:
        return vertex in self._vertex_labels

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    def edges_touching(self, vertex: str) -> List[QueryEdge]:
        return [e for e in self._edges if e.touches(vertex)]

    def edges_between(self, a: str, b: str) -> List[QueryEdge]:
        return [
            e
            for e in self._edges
            if (e.src == a and e.dst == b) or (e.src == b and e.dst == a)
        ]

    def neighbors(self, vertex: str) -> Set[str]:
        """Undirected neighbourhood of ``vertex`` in the query."""
        out: Set[str] = set()
        for e in self._edges:
            if e.src == vertex:
                out.add(e.dst)
            elif e.dst == vertex:
                out.add(e.src)
        return out

    def degree(self, vertex: str) -> int:
        return len(self.edges_touching(vertex))

    def is_connected(self) -> bool:
        if not self._vertices:
            return False
        seen = {self._vertices[0]}
        frontier = [self._vertices[0]]
        while frontier:
            v = frontier.pop()
            for u in self.neighbors(v):
                if u not in seen:
                    seen.add(u)
                    frontier.append(u)
        return len(seen) == self.num_vertices

    def is_acyclic(self) -> bool:
        """True when the *undirected* shape of the query is a forest (the
        notion of (a)cyclicity used throughout the paper)."""
        return self.num_edges == self.num_vertices - 1 and self.is_connected()

    def is_clique(self) -> bool:
        """True when every unordered vertex pair is connected by some edge."""
        pairs = {frozenset((e.src, e.dst)) for e in self._edges}
        n = self.num_vertices
        return len(pairs) == n * (n - 1) // 2

    # ------------------------------------------------------------------ #
    # projections (the projection constraint of Section 4.1)
    # ------------------------------------------------------------------ #
    def project(self, vertices: Sequence[str], name: Optional[str] = None) -> "QueryGraph":
        """Induced sub-query on ``vertices`` (keeps every edge among them)."""
        vset = set(vertices)
        missing = vset - set(self._vertices)
        if missing:
            raise InvalidQueryError(f"unknown query vertices: {sorted(missing)}")
        edges = [e for e in self._edges if e.src in vset and e.dst in vset]
        if not edges:
            raise InvalidQueryError(
                f"projection onto {sorted(vset)} has no edges and cannot form a sub-query"
            )
        labels = {v: self._vertex_labels[v] for v in vset}
        return QueryGraph(edges, vertex_labels=labels, name=name or f"{self.name}|{','.join(sorted(vset))}")

    def connected_projection_exists(self, vertices: Sequence[str]) -> bool:
        """True when the induced sub-query on ``vertices`` is connected and
        non-empty."""
        vset = set(vertices)
        edges = [e for e in self._edges if e.src in vset and e.dst in vset]
        if not edges:
            return False
        try:
            sub = QueryGraph(edges, name="probe")
        except InvalidQueryError:
            return False
        return set(sub.vertices) == vset and sub.is_connected()

    # ------------------------------------------------------------------ #
    # comparisons / hashing
    # ------------------------------------------------------------------ #
    def canonical_key(self) -> Tuple:
        """An isomorphism-invariant, hashable key for this query.

        Two queries share a key exactly when they are isomorphic respecting
        vertex and edge labels — i.e. one can be obtained from the other by
        renaming query vertices.  The key is what plan caches and prepared
        queries use to recognise a repeated query regardless of how its
        vertices happen to be named.

        Computed via brute-force canonicalization (exact for the small query
        graphs this system plans, ≤ ~8 vertices) and cached on the instance;
        the structure of a :class:`QueryGraph` is immutable after construction,
        so the cache can never go stale.
        """
        cached = getattr(self, "_canonical_key", None)
        if cached is None:
            from repro.query.isomorphism import canonical_code_and_order

            code, order = canonical_code_and_order(self)
            cached = ("qg", self.num_vertices, code)
            self._canonical_key = cached
            self._canonical_order = order
        return cached

    def canonical_vertex_order(self) -> Tuple[str, ...]:
        """A vertex ordering realising :meth:`canonical_key` (memoised with
        it); aligning two isomorphic queries' canonical orders yields an
        isomorphism mapping between them."""
        self.canonical_key()
        return self._canonical_order

    def edge_key_set(self) -> FrozenSet[Tuple[str, str, Optional[int]]]:
        return frozenset((e.src, e.dst, e.label) for e in self._edges)

    def structurally_equal(self, other: "QueryGraph") -> bool:
        """Equality of vertex sets, labels, and edge sets (names matter)."""
        return (
            set(self._vertices) == set(other._vertices)
            and self._vertex_labels == other._vertex_labels
            and self.edge_key_set() == other.edge_key_set()
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, QueryGraph) and self.structurally_equal(other)

    def __hash__(self) -> int:
        return hash(
            (
                self.edge_key_set(),
                frozenset(self._vertex_labels.items()),
            )
        )

    def __repr__(self) -> str:
        return f"QueryGraph({self.name!r}, vertices={self.num_vertices}, edges={list(self._edges)})"

    # ------------------------------------------------------------------ #
    # convenience constructors
    # ------------------------------------------------------------------ #
    def relabel_edges(self, label_map: Dict[Tuple[str, str], Optional[int]]) -> "QueryGraph":
        """Return a copy with edge labels replaced according to ``label_map``
        (keys are ``(src, dst)`` pairs; unmapped edges keep their label)."""
        edges = [
            QueryEdge(e.src, e.dst, label_map.get((e.src, e.dst), e.label))
            for e in self._edges
        ]
        return QueryGraph(edges, vertex_labels=self._vertex_labels, name=self.name)

    def with_random_edge_labels(self, num_labels: int, seed: Optional[int] = 0) -> "QueryGraph":
        """Randomly assign each query edge a label from ``0..num_labels-1``
        (the ``QJi`` protocol of Section 8.1.3)."""
        import numpy as np

        if num_labels <= 1:
            return self.relabel_edges({(e.src, e.dst): 0 for e in self._edges})
        rng = np.random.default_rng(seed)
        label_map = {
            (e.src, e.dst): int(rng.integers(0, num_labels)) for e in self._edges
        }
        out = self.relabel_edges(label_map)
        out.name = f"{self.name}_{num_labels}"
        return out

    def rename_vertices(self, mapping: Dict[str, str]) -> "QueryGraph":
        """Return a copy with vertices renamed (used to feed 'bad orderings'
        to the EmptyHeaded baseline, which orders lexicographically)."""
        edges = [
            QueryEdge(mapping.get(e.src, e.src), mapping.get(e.dst, e.dst), e.label)
            for e in self._edges
        ]
        labels = {mapping.get(v, v): lab for v, lab in self._vertex_labels.items()}
        return QueryGraph(edges, vertex_labels=labels, name=self.name)
