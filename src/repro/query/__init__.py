"""Query model: directed, labeled subgraph queries (Section 2 of the paper)."""

from repro.query.query_graph import QueryGraph, QueryEdge
from repro.query.parser import parse_query
from repro.query import catalog_queries

__all__ = ["QueryGraph", "QueryEdge", "parse_query", "catalog_queries"]
