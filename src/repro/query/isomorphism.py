"""Canonicalization, isomorphism, and automorphisms of small query graphs.

The subgraph catalogue (Section 5) is keyed by *sub-query shapes*, so lookups
must be isomorphism-invariant: the 3-path ``a1->a2->a3`` and ``b7->b2->b9``
must map to the same entry.  Query graphs in catalogue keys have at most
``h+1`` (≤ 5) vertices, so brute-force canonicalization over all vertex
permutations is both exact and fast.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.query.query_graph import QueryGraph

# A canonical code is a sorted tuple of (src_idx, dst_idx, edge_label) triples
# plus the tuple of vertex labels in canonical position order.
CanonicalCode = Tuple[Tuple[Tuple[int, int, Optional[int]], ...], Tuple[Optional[int], ...]]


def _code_for_order(query: QueryGraph, order: Sequence[str]) -> CanonicalCode:
    index = {v: i for i, v in enumerate(order)}
    edges = tuple(
        sorted((index[e.src], index[e.dst], e.label) for e in query.edges)
    )
    labels = tuple(query.vertex_label(v) for v in order)
    return (edges, labels)


def canonical_code_and_order(
    query: QueryGraph,
) -> Tuple[CanonicalCode, Tuple[str, ...]]:
    """The smallest code over all vertex orderings plus an ordering realising
    it, computed in a single ``O(k!)`` sweep.

    Intended for small sub-queries (≤ ~8 vertices).
    ``QueryGraph.canonical_key`` memoises the result per instance, so hot
    paths (plan-cache lookups, match-name translation) pay the factorial
    sweep once per query object.
    """
    best_code: Optional[CanonicalCode] = None
    best_order: Tuple[str, ...] = query.vertices
    for order in permutations(query.vertices):
        code = _code_for_order(query, order)
        if best_code is None or code < best_code:
            best_code = code
            best_order = tuple(order)
    assert best_code is not None
    return best_code, best_order


def canonical_code(query: QueryGraph) -> CanonicalCode:
    """Smallest code over all vertex orderings — an isomorphism-invariant key."""
    return canonical_code_and_order(query)[0]


def canonical_order(query: QueryGraph) -> Tuple[str, ...]:
    """A vertex ordering realising :func:`canonical_code`."""
    return canonical_code_and_order(query)[1]


def are_isomorphic(a: QueryGraph, b: QueryGraph) -> bool:
    """Exact isomorphism test via canonical codes (labels respected)."""
    if a.num_vertices != b.num_vertices or a.num_edges != b.num_edges:
        return False
    return canonical_code(a) == canonical_code(b)


def isomorphism_mapping(a: QueryGraph, b: QueryGraph) -> Optional[Dict[str, str]]:
    """A vertex mapping ``a -> b`` witnessing their isomorphism, or ``None``.

    Any witness is as good as any other: the set of matches of a query is
    closed under its automorphisms, so results translated through one witness
    equal results translated through another.  Used to reuse a cached plan
    built for an isomorphic (renamed) query while reporting matches under the
    caller's vertex names.
    """
    if a.num_vertices != b.num_vertices or a.num_edges != b.num_edges:
        return None
    # canonical_key()/canonical_vertex_order() are memoised per instance, so
    # repeated translations (every collected cache-hit execution) are cheap.
    if a.canonical_key() != b.canonical_key():
        return None
    return dict(zip(a.canonical_vertex_order(), b.canonical_vertex_order()))


def automorphisms(query: QueryGraph) -> List[Dict[str, str]]:
    """All label- and direction-preserving vertex permutations of the query.

    Used to deduplicate equivalent query-vertex orderings: two QVOs related by
    an automorphism perform exactly the same operations (Section 3.2.3).
    """
    vertices = query.vertices
    base_edges = {(e.src, e.dst, e.label) for e in query.edges}
    result: List[Dict[str, str]] = []
    for perm in permutations(vertices):
        mapping = dict(zip(vertices, perm))
        if any(
            query.vertex_label(v) != query.vertex_label(mapping[v]) for v in vertices
        ):
            continue
        mapped = {(mapping[s], mapping[d], l) for s, d, l in base_edges}
        if mapped == base_edges:
            result.append(mapping)
    return result


def orbit_representative_orderings(
    query: QueryGraph, orderings: Sequence[Tuple[str, ...]]
) -> List[Tuple[str, ...]]:
    """Collapse a set of QVOs into one representative per automorphism orbit."""
    autos = automorphisms(query)
    seen: set = set()
    representatives: List[Tuple[str, ...]] = []
    for ordering in orderings:
        orbit = {tuple(auto[v] for v in ordering) for auto in autos}
        key = min(orbit)
        if key not in seen:
            seen.add(key)
            representatives.append(ordering)
    return representatives
