"""A tiny Cypher-flavoured pattern parser.

Graphflow supports a subset of Cypher; for the reproduction we support the
pattern fragment that subgraph queries need:

    (a1)-->(a2), (a2)-->(a3), (a1)-->(a3)
    (a1:0)-[1]->(a2:2)        # vertex label 0/2, edge label 1
    (a2)<--(a3)               # reverse direction

Vertex labels and edge labels are small integers; omitting them leaves the
label as ``None`` (wildcard).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import QueryParseError
from repro.query.query_graph import QueryEdge, QueryGraph

_VERTEX = r"\(\s*(?P<name{0}>[A-Za-z_][A-Za-z_0-9]*)\s*(?::\s*(?P<label{0}>\d+))?\s*\)"
_EDGE = r"(?P<larrow><)?-(?:\[\s*(?P<elabel>\d+)?\s*\])?-(?P<rarrow>>)?"
_PATTERN = re.compile(_VERTEX.format("1") + r"\s*" + _EDGE + r"\s*" + _VERTEX.format("2"))


def parse_query(pattern: str, name: str = "query") -> QueryGraph:
    """Parse a comma-separated list of edge patterns into a QueryGraph.

    >>> q = parse_query("(a1)-->(a2), (a2)-->(a3), (a1)-->(a3)", name="triangle")
    >>> q.num_vertices, q.num_edges
    (3, 3)
    """
    edges: List[QueryEdge] = []
    vertex_labels: Dict[str, Optional[int]] = {}
    chunks = [c.strip() for c in pattern.split(",") if c.strip()]
    if not chunks:
        raise QueryParseError("empty query pattern")
    for chunk in chunks:
        match = _PATTERN.fullmatch(chunk)
        if not match:
            raise QueryParseError(f"cannot parse edge pattern: {chunk!r}")
        left, right = match.group("name1"), match.group("name2")
        left_label = match.group("label1")
        right_label = match.group("label2")
        edge_label = match.group("elabel")
        larrow, rarrow = match.group("larrow"), match.group("rarrow")
        if larrow and rarrow:
            raise QueryParseError(f"edge cannot point both ways: {chunk!r}")
        if not larrow and not rarrow:
            raise QueryParseError(f"edge must have a direction (--> or <--): {chunk!r}")
        src, dst = (left, right) if rarrow else (right, left)
        edges.append(QueryEdge(src, dst, int(edge_label) if edge_label is not None else None))
        for vertex, label in ((left, left_label), (right, right_label)):
            if label is not None:
                parsed = int(label)
                existing = vertex_labels.get(vertex)
                if existing is not None and existing != parsed:
                    raise QueryParseError(
                        f"conflicting labels for vertex {vertex}: {existing} vs {parsed}"
                    )
                vertex_labels[vertex] = parsed
    return QueryGraph(edges, vertex_labels=vertex_labels, name=name)


def format_query(query: QueryGraph) -> str:
    """Inverse of :func:`parse_query` (modulo whitespace)."""
    parts: List[str] = []
    for e in query.edges:
        src_label = query.vertex_label(e.src)
        dst_label = query.vertex_label(e.dst)
        src = f"({e.src}:{src_label})" if src_label is not None else f"({e.src})"
        dst = f"({e.dst}:{dst_label})" if dst_label is not None else f"({e.dst})"
        arrow = f"-[{e.label}]->" if e.label is not None else "-->"
        parts.append(f"{src}{arrow}{dst}")
    return ", ".join(parts)
