"""Random query generation.

The Appendix B and Appendix C experiments use randomly generated query sets:
all 5-vertex queries (Appendix B) and random sparse / dense queries with 10-20
query vertices (Appendix C, following the CFL paper's protocol where sparse
means average query-vertex degree <= 3 and dense means > 3).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.query.query_graph import QueryEdge, QueryGraph


def random_connected_query(
    num_vertices: int,
    avg_degree: float = 2.5,
    seed: Optional[int] = 0,
    num_edge_labels: int = 1,
    num_vertex_labels: int = 1,
    name: Optional[str] = None,
) -> QueryGraph:
    """A random connected directed query with roughly ``avg_degree`` average
    (undirected) query-vertex degree."""
    rng = np.random.default_rng(seed)
    vertices = [f"a{i+1}" for i in range(num_vertices)]
    edges: List[QueryEdge] = []
    pair_set = set()

    def add(u: str, v: str) -> None:
        if u == v or frozenset((u, v)) in pair_set:
            return
        pair_set.add(frozenset((u, v)))
        src, dst = (u, v) if rng.random() < 0.5 else (v, u)
        label = int(rng.integers(0, num_edge_labels)) if num_edge_labels > 1 else None
        edges.append(QueryEdge(src, dst, label))

    # Random spanning tree for connectivity.
    order = list(rng.permutation(num_vertices))
    for i in range(1, num_vertices):
        u = vertices[order[i]]
        v = vertices[order[int(rng.integers(0, i))]]
        add(u, v)
    # Extra edges until the average degree target is met.
    target_edges = max(num_vertices - 1, int(round(avg_degree * num_vertices / 2)))
    guard = 0
    while len(edges) < target_edges and guard < 50 * target_edges:
        guard += 1
        u, v = rng.choice(vertices, size=2, replace=False)
        add(str(u), str(v))

    vertex_labels = None
    if num_vertex_labels > 1:
        vertex_labels = {
            v: int(rng.integers(0, num_vertex_labels)) for v in vertices
        }
    return QueryGraph(
        edges,
        vertex_labels=vertex_labels,
        name=name or f"random-{num_vertices}v-{len(edges)}e",
    )


def random_query_set(
    count: int,
    num_vertices: int,
    dense: bool = False,
    seed: int = 0,
    num_edge_labels: int = 1,
    num_vertex_labels: int = 1,
) -> List[QueryGraph]:
    """A set of random queries in the style of the CFL evaluation: sparse
    (average degree <= 3) or dense (average degree > 3)."""
    queries = []
    for i in range(count):
        avg_degree = 3.6 if dense else 2.2
        queries.append(
            random_connected_query(
                num_vertices,
                avg_degree=avg_degree,
                seed=seed * 10_000 + i,
                num_edge_labels=num_edge_labels,
                num_vertex_labels=num_vertex_labels,
                name=f"{'dense' if dense else 'sparse'}-{num_vertices}v-{i}",
            )
        )
    return queries


def all_small_queries(
    num_vertices: int = 5,
    max_queries: Optional[int] = None,
    seed: int = 0,
    num_edge_labels: int = 1,
    num_vertex_labels: int = 1,
) -> List[QueryGraph]:
    """A diverse sample of connected queries with ``num_vertices`` vertices.

    The paper enumerates all 535 5-vertex queries; for tractability we sample
    a diverse subset (spanning sparse trees to near-cliques) unless
    ``max_queries`` is None, in which case 64 representatives are produced.
    """
    budget = max_queries or 64
    queries: List[QueryGraph] = []
    seen = set()
    rng = np.random.default_rng(seed)
    densities = np.linspace(1.8, num_vertices - 1.0, budget)
    for i, density in enumerate(densities):
        q = random_connected_query(
            num_vertices,
            avg_degree=float(density),
            seed=int(rng.integers(0, 10_000_000)),
            num_edge_labels=num_edge_labels,
            num_vertex_labels=num_vertex_labels,
            name=f"q{num_vertices}v-{i}",
        )
        key = q.edge_key_set()
        if key not in seen:
            seen.add(key)
            queries.append(q)
    return queries
