"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphConstructionError(ReproError):
    """Raised when a graph cannot be constructed from the given input."""


class QueryParseError(ReproError):
    """Raised when a query pattern string cannot be parsed."""


class InvalidQueryError(ReproError):
    """Raised when a query graph violates a structural requirement
    (e.g. it is empty or disconnected)."""


class PlanError(ReproError):
    """Raised when a plan tree is malformed or cannot be executed."""


class CatalogueError(ReproError):
    """Raised for invalid catalogue construction parameters or lookups."""


class OptimizerError(ReproError):
    """Raised when the optimizer cannot produce a plan for a query."""


class DeadlineExceededError(ReproError):
    """Raised by the executor when a query's deadline expires mid-execution."""


class AdmissionError(ReproError):
    """Raised by the query service when a submission is rejected because the
    service is at capacity (running + queued queries exceed the configured
    bounds)."""


class WorkerPoolError(ReproError):
    """Raised by the multi-process morsel executor when a worker process dies
    mid-query (after the retry budget is exhausted) or reports a task-level
    failure.  The pool itself survives: dead workers are respawned and later
    queries run normally."""


class ProcessExecutionUnsupported(ReproError):
    """Internal control-flow signal of the multi-process executor: the query
    cannot be shipped to worker processes (no partitionable scan leaf, an
    unshippable config such as a triangle index, or a dirty snapshot whose
    delta exceeds the shipping threshold).  :meth:`repro.api.GraphflowDB.execute`
    catches it and falls back to in-process thread execution."""


class PersistenceError(ReproError):
    """Raised by the durable graph store for unusable data directories or
    operations against a closed store."""


class SnapshotFormatError(PersistenceError):
    """Raised when a binary snapshot file is malformed, truncated, or fails
    its checksums."""


class WALCorruptionError(PersistenceError):
    """Raised for an unusable write-ahead-log segment; torn *tails* are
    truncated silently during recovery and do not raise."""
