"""An LRU cache of optimized plans keyed by canonical query form.

The optimizer's DP over connected sub-queries is by far the most expensive
part of serving a small query on a warm graph, and it depends only on the
query's *shape* (structure plus labels), the catalogue, and the planner
options — not on how the query's vertices are named.  The cache therefore
keys plans by :meth:`repro.query.query_graph.QueryGraph.canonical_key`
combined with the planner options, so ``(a1)->(a2)->(a3)`` and
``(b7)->(b2)->(b9)`` share one entry.

Concurrency: lookups, inserts, and evictions hold one lock.
:meth:`PlanCache.get_or_compute` additionally collapses concurrent misses on
the same key — one thread plans ("the leader") while the rest wait on an
event, so a thundering herd of identical queries invokes the optimizer once.

Invalidation: the cache must be flushed whenever the statistics that plans
were costed against change (catalogue rebuild, graph replacement).
:meth:`invalidate` does that and bumps a generation counter so that an
in-flight leader cannot re-insert a plan computed against stale statistics.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Optional, Tuple

from repro.planner.plan import Plan


@dataclass
class PlanCacheStats:
    """Counters exposed through ``QueryService.stats()`` and the CLI."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class PlanCache:
    """A bounded, thread-safe LRU mapping of canonical query keys to plans."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be at least 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._plans: "OrderedDict[Hashable, Plan]" = OrderedDict()
        self._inflight: Dict[Hashable, threading.Event] = {}
        self._generation = 0
        self.stats = PlanCacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._plans

    # ------------------------------------------------------------------ #
    def get(self, key: Hashable) -> Optional[Plan]:
        """Look up a plan, counting a hit or miss and refreshing recency."""
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self.stats.misses += 1
                return None
            self._plans.move_to_end(key)
            self.stats.hits += 1
            return plan

    def put(self, key: Hashable, plan: Plan) -> None:
        with self._lock:
            self._store(key, plan)

    def peek(self, key: Hashable) -> Optional[Plan]:
        """Look up a plan without touching hit/miss counters or recency.

        The re-optimization pass uses this to inspect cached plans: a
        maintenance sweep should not distort the serving hit rate or keep
        otherwise-cold entries alive.
        """
        with self._lock:
            return self._plans.get(key)

    @property
    def generation(self) -> int:
        """Current invalidation generation (bumped by :meth:`invalidate`)."""
        with self._lock:
            return self._generation

    def put_if_generation(self, key: Hashable, plan: Plan, generation: int) -> bool:
        """Insert ``plan`` only if no invalidation ran since ``generation``
        was observed.  Returns whether the plan was installed.

        This is the re-optimizer's guard: it plans outside any lock, so a
        concurrent write or catalogue refresh may have flushed the cache in
        the meantime — installing then would resurrect a plan costed against
        statistics that no longer exist.
        """
        with self._lock:
            if self._generation != generation:
                return False
            self._store(key, plan)
            return True

    def _store(self, key: Hashable, plan: Plan) -> None:
        if key in self._plans:
            self._plans.move_to_end(key)
        self._plans[key] = plan
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
            self.stats.evictions += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], Plan]) -> Plan:
        """Return the cached plan for ``key``, planning at most once per key.

        Concurrent callers that miss on the same key elect one leader to run
        ``compute``; the others block until the plan is available.  When
        ``compute`` raises, waiters retry (and may become the next leader).
        """
        while True:
            with self._lock:
                plan = self._plans.get(key)
                if plan is not None:
                    self._plans.move_to_end(key)
                    self.stats.hits += 1
                    return plan
                event = self._inflight.get(key)
                if event is None:
                    event = threading.Event()
                    self._inflight[key] = event
                    self.stats.misses += 1
                    generation = self._generation
                    leader = True
                else:
                    leader = False
            if not leader:
                event.wait()
                continue
            try:
                plan = compute()
            finally:
                with self._lock:
                    self._inflight.pop(key, None)
                    event.set()
            with self._lock:
                # Do not cache a plan computed against statistics that were
                # invalidated while planning ran; still return it.
                if self._generation == generation:
                    self._store(key, plan)
            return plan

    # ------------------------------------------------------------------ #
    def invalidate(self) -> int:
        """Drop every cached plan (catalogue/graph changed); returns how many
        plans were flushed."""
        with self._lock:
            flushed = len(self._plans)
            self._plans.clear()
            self._generation += 1
            self.stats.invalidations += 1
            return flushed

    def reset_stats(self) -> None:
        with self._lock:
            self.stats = PlanCacheStats()
