"""Rolling serving metrics: QPS and latency percentiles.

The service records one sample per completed query into a sliding time
window; :meth:`ServiceMetrics.snapshot` summarises the window as queries per
second and p50/p95/p99 latency.  Everything is guarded by one lock so the
registry can be shared by the service's worker threads.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple


def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted, non-empty list."""
    if not sorted_values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass(frozen=True)
class MetricsSnapshot:
    """A point-in-time summary of the rolling window."""

    window_seconds: float
    count: int
    qps: float
    p50_seconds: float
    p95_seconds: float
    p99_seconds: float
    mean_seconds: float

    def as_rows(self) -> List[dict]:
        """Rows for :func:`repro.experiments.harness.format_table`."""
        return [
            {"metric": "window (s)", "value": f"{self.window_seconds:.0f}"},
            {"metric": "queries", "value": str(self.count)},
            {"metric": "qps", "value": f"{self.qps:.1f}"},
            {"metric": "latency p50 (ms)", "value": f"{self.p50_seconds * 1e3:.2f}"},
            {"metric": "latency p95 (ms)", "value": f"{self.p95_seconds * 1e3:.2f}"},
            {"metric": "latency p99 (ms)", "value": f"{self.p99_seconds * 1e3:.2f}"},
            {"metric": "latency mean (ms)", "value": f"{self.mean_seconds * 1e3:.2f}"},
        ]


class ServiceMetrics:
    """Thread-safe rolling window of per-query latency samples.

    Parameters
    ----------
    window_seconds:
        Samples older than this are dropped (pruned lazily on record and
        snapshot).
    max_samples:
        Hard bound on retained samples so a hot service cannot grow the
        window without limit; the oldest samples are dropped first.
    """

    def __init__(self, window_seconds: float = 60.0, max_samples: int = 8192) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.window_seconds = window_seconds
        self.max_samples = max_samples
        self._lock = threading.Lock()
        # (completion timestamp from time.monotonic(), latency in seconds)
        self._samples: Deque[Tuple[float, float]] = deque()
        self.total_recorded = 0

    def record(self, latency_seconds: float, timestamp: Optional[float] = None) -> None:
        now = time.monotonic() if timestamp is None else timestamp
        with self._lock:
            self._samples.append((now, latency_seconds))
            self.total_recorded += 1
            self._prune(now)

    def _prune(self, now: float) -> None:
        horizon = now - self.window_seconds
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()
        while len(self._samples) > self.max_samples:
            self._samples.popleft()

    def snapshot(self, timestamp: Optional[float] = None) -> MetricsSnapshot:
        now = time.monotonic() if timestamp is None else timestamp
        with self._lock:
            self._prune(now)
            latencies = sorted(lat for _, lat in self._samples)
            count = len(latencies)
            if count == 0:
                return MetricsSnapshot(self.window_seconds, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
            # QPS over the span actually covered by samples (bounded below to
            # avoid divide-by-zero when all samples share one timestamp).
            span = max(now - self._samples[0][0], 1e-9)
            span = min(span, self.window_seconds)
            return MetricsSnapshot(
                window_seconds=self.window_seconds,
                count=count,
                qps=count / span,
                p50_seconds=percentile(latencies, 50.0),
                p95_seconds=percentile(latencies, 95.0),
                p99_seconds=percentile(latencies, 99.0),
                mean_seconds=sum(latencies) / count,
            )

    def reset(self) -> None:
        with self._lock:
            self._samples.clear()
