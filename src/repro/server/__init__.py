"""The query-serving subsystem.

The reproduction's :class:`repro.api.GraphflowDB` plans every query from
scratch, which is the right default for one-off experiments but wasteful for
serving workloads that repeat a small set of query shapes.  This package adds
the serving layer:

- :mod:`repro.server.plan_cache` — an LRU cache of optimized plans keyed by
  the query's canonical form (:meth:`repro.query.query_graph.QueryGraph.canonical_key`),
  so that isomorphic queries share one optimizer invocation.
- :mod:`repro.server.prepared` — prepared/parameterized queries: parse once,
  bind vertex/edge label parameters per execution.
- :mod:`repro.server.service` — a thread-safe :class:`QueryService` facade
  with admission control, per-query deadlines and row limits, and batch
  execution that shares planning across identical queries.
- :mod:`repro.server.metrics` — rolling throughput and latency-percentile
  metrics exposed through :meth:`QueryService.stats`.
"""

from repro.server.metrics import MetricsSnapshot, ServiceMetrics
from repro.server.plan_cache import PlanCache, PlanCacheStats
from repro.server.prepared import PreparedQuery
from repro.server.service import QueryService, ServiceResult

__all__ = [
    "MetricsSnapshot",
    "ServiceMetrics",
    "PlanCache",
    "PlanCacheStats",
    "PreparedQuery",
    "QueryService",
    "ServiceResult",
]
