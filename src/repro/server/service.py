"""A thread-safe query-serving facade over :class:`repro.api.GraphflowDB`.

:class:`QueryService` turns the single-shot experiment API into something a
server can sit behind:

- **Admission control** — at most ``max_concurrent`` queries execute at once;
  up to ``max_queue`` more wait.  A submission beyond both bounds is rejected
  deterministically with :class:`repro.errors.AdmissionError` instead of
  growing an unbounded backlog.
- **Per-query resource bounds** — a deadline (measured from submission, so
  queue time counts) and a row limit, both enforced through the executor's
  :class:`~repro.executor.operators.ExecutionConfig`; a query that exceeds
  its deadline returns a partial result with status ``deadline_exceeded``
  rather than hanging.
- **Plan reuse** — all planning goes through the database's canonical-form
  plan cache, so a repeated query (modulo vertex renaming) invokes the
  optimizer exactly once; :meth:`execute_batch` additionally warms the cache
  for each distinct query shape before fanning the batch out.
- **Live updates with snapshot-isolated reads** — :meth:`submit_update` /
  :meth:`apply_updates` route write batches through the same admission
  control and worker pool as queries, into
  :meth:`repro.api.GraphflowDB.apply_updates`.  Each read pins an MVCC
  snapshot of the :class:`~repro.storage.dynamic.DynamicGraph` at execution
  start, so concurrent writes never change a running query's matches.
- **Observability** — rolling QPS and latency percentiles plus admission,
  status, update, and plan-cache counters via :meth:`stats`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import AdmissionError
from repro.executor.operators import ExecutionConfig
from repro.obs.trace import QueryTrace
from repro.query.query_graph import QueryGraph
from repro.server.metrics import MetricsSnapshot, ServiceMetrics
from repro.server.prepared import PreparedQuery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import Future as _Future

    from repro.api import GraphflowDB, QueryResult, UpdateResult


#: Terminal statuses a served query can end in.
STATUS_OK = "ok"
STATUS_TRUNCATED = "truncated"
STATUS_DEADLINE_EXCEEDED = "deadline_exceeded"
STATUS_ERROR = "error"


@dataclass
class ServiceResult:
    """Outcome of one served query."""

    query_name: str
    status: str
    result: Optional["QueryResult"]
    error: Optional[str]
    queue_seconds: float
    total_seconds: float

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def num_matches(self) -> int:
        """Matches produced (possibly partial for non-``ok`` statuses)."""
        return self.result.num_matches if self.result is not None else 0

    def __repr__(self) -> str:
        return (
            f"ServiceResult({self.query_name!r}, status={self.status!r}, "
            f"matches={self.num_matches}, total={self.total_seconds:.3f}s)"
        )


class QueryService:
    """Concurrent, bounded query serving over a single ``GraphflowDB``.

    Parameters
    ----------
    db:
        The database to serve.  Its plan cache and planner counters are
        shared with direct API use.
    max_concurrent:
        Number of queries executing simultaneously (worker threads).
    max_queue:
        Additional submissions allowed to wait; beyond
        ``max_concurrent + max_queue`` in flight, :meth:`submit` raises
        :class:`AdmissionError`.
    default_deadline_seconds / default_row_limit:
        Per-query bounds applied when a submission does not override them.
    num_workers:
        Morsel-parallel workers used *within* each query's execution
        (:func:`repro.executor.parallel.execute_parallel`); 1 means the
        single-threaded pipeline.
    execution_mode:
        ``"thread"`` (default) or ``"process"``: how ``num_workers > 1``
        queries distribute their morsels.  Process mode warms a
        :class:`~repro.executor.multiprocess.MorselProcessPool` at
        construction — worker processes that map the durable store's
        snapshot file (or a spooled copy) read-only and execute morsels
        GIL-free — and shuts it down in :meth:`close`.  Queries the pool
        cannot ship (e.g. a dirty snapshot whose delta exceeds the shipping
        threshold) fall back to in-process thread execution per query.  A
        submission can override the mode per query.
    vectorized / batch_size:
        Default execution mode for served queries: when ``vectorized`` is
        True, plans run through the batch-at-a-time (columnar) engine with
        ``batch_size``-row frames instead of the tuple-at-a-time pipeline.
        Vectorized reads run on the pinned snapshot directly (dirty or not)
        — serving a dynamic graph never compacts on the query path.
        Deadline and row-limit semantics are unchanged (deadlines are checked
        per batch; the final frame is truncated to the row limit).  A
        submission can override the mode per query.
    background_compaction:
        When True, enable :meth:`GraphflowDB.enable_background_compaction`
        on the served database: update submissions return as soon as the
        delta is appended, and the CSR rebuild runs on a background thread
        with an atomic base swap (pinned snapshots keep serving the old
        base).  The manager is stopped by :meth:`close` if this service
        enabled it.
    compaction_ratio / compaction_min_delta_edges / compaction_min_interval_seconds:
        Overlay thresholds and pacing floor forwarded to the compaction
        manager (``None`` inherits the dynamic graph's / manager's own
        settings).
    data_dir:
        When set, serve durably: an existing store under ``data_dir`` is
        recovered into the database (snapshot + WAL-tail replay), an empty
        directory is bootstrapped from the database's current graph, and
        every update thereafter is write-ahead logged before its in-memory
        commit.  :meth:`close` then checkpoints the final state
        (``checkpoint_on_close``) so the next start replays nothing.
        Combine with ``background_compaction`` to turn compactions into
        checkpoints during operation.
    checkpoint_on_close / wal_sync_every:
        Graceful-shutdown checkpointing toggle and the WAL's group-commit
        width, both forwarded to the durable store.
    metrics_window_seconds:
        Width of the rolling metrics window reported by :meth:`stats`.
    trace:
        Per-query tracing toggle (default on).  When True every served
        request — queries *and* updates — leaves a
        :class:`~repro.obs.trace.QueryTrace` in the database's bounded trace
        ring: admission wait, plan/cache lookup, execution, and (for durable
        updates) WAL-append spans, plus per-operator actual-vs-estimated
        cardinalities.  When False the database records no traces, metrics,
        or cardinality feedback for requests served here.
    trace_capacity:
        Traces retained in the ring (oldest evicted first).
    slow_query_seconds:
        When set, requests at least this slow are also kept in a separate
        slow-query ring (:meth:`slow_queries`) and logged at WARNING level
        via the ``repro.obs.slowlog`` logger.
    event_log:
        A path (or :class:`~repro.obs.events.EventLog`) to stream structured
        lifecycle events to: query finishes, slow queries, update batches,
        checkpoints, compaction installs, pool respawns, fallbacks, and
        recovery — one JSON object per line, size-rotated.  A path given
        here is opened by (and closed with) this service; an ``EventLog``
        object is shared and stays open.
    self_tuning:
        When True, run the self-tuning optimizer loop for the served
        database: a :class:`~repro.tuning.CatalogueRefresher` thread
        re-samples the catalogue off the write path once its staleness
        crosses ``tuning_stale_threshold`` (installing via epoch CAS and
        invalidating the plan cache), and each cycle a
        :class:`~repro.tuning.Reoptimizer` pass re-plans cached plans whose
        worst-operator q-error drifted past ``tuning_qerror_threshold``,
        evicting only when the new plan is cheaper than the old by
        ``tuning_cost_margin``.  The loop is stopped by :meth:`close`.
    tuning_stale_threshold / tuning_qerror_threshold / tuning_cost_margin:
        The loop's sense/decide thresholds (see above).
    tuning_poll_interval_seconds / tuning_min_refresh_interval_seconds / tuning_refresh_z:
        Cadence of the staleness check, pacing floor between installed
        refreshes, and the re-sample's sample count (``None`` keeps the
        catalogue's own ``z``).
    ops_addr:
        When set, start the HTTP ops plane (:class:`~repro.obs.http.OpsServer`)
        alongside the service: an int port, a ``"port"`` / ``"host:port"``
        string, or a ``(host, port)`` tuple (port 0 picks an ephemeral one;
        the bound address is :attr:`ops_address`).  The server exposes
        ``/metrics``, ``/healthz``, ``/readyz`` (the database's health
        registry), ``/stats`` (this service's :meth:`stats`), the trace
        rings, and ``/events`` streaming.  :meth:`close` marks the node
        draining (``/readyz`` flips to 503) before tearing anything down,
        then stops the server last, so a load balancer watching ``/readyz``
        rotates the node out before in-flight queries finish draining.
    """

    def __init__(
        self,
        db: "GraphflowDB",
        max_concurrent: int = 4,
        max_queue: int = 16,
        default_deadline_seconds: Optional[float] = None,
        default_row_limit: Optional[int] = None,
        num_workers: int = 1,
        execution_mode: str = "thread",
        vectorized: bool = False,
        batch_size: int = 2048,
        background_compaction: bool = False,
        compaction_ratio: Optional[float] = None,
        compaction_min_delta_edges: Optional[int] = None,
        compaction_min_interval_seconds: Optional[float] = None,
        data_dir: Optional[str] = None,
        checkpoint_on_close: bool = True,
        wal_sync_every: int = 8,
        metrics_window_seconds: float = 60.0,
        trace: bool = True,
        trace_capacity: Optional[int] = None,
        slow_query_seconds: Optional[float] = None,
        event_log: Optional[object] = None,
        self_tuning: bool = False,
        tuning_stale_threshold: float = 0.25,
        tuning_qerror_threshold: float = 2.0,
        tuning_cost_margin: float = 0.9,
        tuning_poll_interval_seconds: float = 0.05,
        tuning_min_refresh_interval_seconds: float = 0.0,
        tuning_refresh_z: Optional[int] = None,
        ops_addr: Optional[Union[int, str, Tuple[str, int]]] = None,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be at least 1")
        if max_queue < 0:
            raise ValueError("max_queue cannot be negative")
        self.db = db
        # Event log before durability/compaction so their lifecycle events
        # (recovery happens in enable_durability's recovery path, compaction
        # installs on the manager thread) have somewhere to land.
        self._owns_event_log = event_log is not None and not hasattr(event_log, "emit")
        if event_log is not None:
            db.obs.attach_event_log(event_log)
        # Durability first: the durable store owns the dynamic graph a
        # compaction manager would watch, so attach it before compaction.
        # Mirror enable_durability's attach condition exactly: a closed
        # leftover store means *this* service's call opens a fresh one, which
        # this service must then checkpoint and close.
        self._owns_durability = data_dir is not None and (
            db.durable_store is None or db.durable_store.closed
        )
        self._checkpoint_on_close = checkpoint_on_close
        if data_dir is not None:
            db.enable_durability(data_dir, sync_every=wal_sync_every)
        self._owns_compaction = background_compaction and db.compaction_manager is None
        if background_compaction:
            db.enable_background_compaction(
                compact_ratio=compaction_ratio,
                min_delta_edges=compaction_min_delta_edges,
                min_interval_seconds=compaction_min_interval_seconds,
            )
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.default_deadline_seconds = default_deadline_seconds
        self.default_row_limit = default_row_limit
        self.num_workers = num_workers
        if execution_mode not in ("thread", "process"):
            raise ValueError(
                f"unknown execution_mode {execution_mode!r}; expected 'thread' or 'process'"
            )
        self.execution_mode = execution_mode
        # Process mode: warm the pool now (workers spawn, the base ships on
        # the first query) so serving latency never pays pool startup; this
        # service then owns the pool's shutdown.
        self._owns_process_pool = execution_mode == "process" and num_workers > 1
        if self._owns_process_pool:
            db.enable_process_pool(num_workers)
        self.vectorized = vectorized
        self.batch_size = batch_size
        # Self-tuning loop (catalogue auto-refresh + feedback-driven
        # re-optimization).  Started after compaction/durability so the
        # refresher watches the graph the service actually serves; owned and
        # stopped by close().
        self.reoptimizer = None
        self.catalogue_refresher = None
        self._owns_tuning = False
        if self_tuning:
            from repro.tuning import CatalogueRefresher, Reoptimizer

            self.reoptimizer = Reoptimizer(
                db,
                qerror_threshold=tuning_qerror_threshold,
                cost_margin=tuning_cost_margin,
            )
            self.catalogue_refresher = CatalogueRefresher(
                db,
                stale_threshold=tuning_stale_threshold,
                poll_interval_seconds=tuning_poll_interval_seconds,
                min_interval_seconds=tuning_min_refresh_interval_seconds,
                z=tuning_refresh_z,
                reoptimizer=self.reoptimizer,
            )
            self.catalogue_refresher.start()
            self._owns_tuning = True
            db.obs.registry.register_collector("tuning", self._collect_tuning_stats)
            from repro.obs.health import thread_alive_check

            db.health.register(
                "catalogue_refresher",
                thread_alive_check(
                    lambda: self.catalogue_refresher is not None
                    and self.catalogue_refresher.running,
                    description="catalogue refresher",
                ),
            )
        self.metrics = ServiceMetrics(window_seconds=metrics_window_seconds)
        # Observability: the database owns the registry/trace ring/feedback
        # table; the service configures them and layers request-level data
        # (rolling window, admission counters) on via a collector.
        self.obs = db.obs
        self.obs.enabled = trace
        if slow_query_seconds is not None:
            self.obs.traces.slow_seconds = slow_query_seconds
        if trace_capacity is not None:
            self.obs.traces.set_capacity(trace_capacity)
        self.obs.registry.register_collector("service", self._collect_service_stats)
        self._pool = ThreadPoolExecutor(
            max_workers=max_concurrent, thread_name_prefix="query-service"
        )
        self._lock = threading.Lock()
        self._slots_free = threading.Condition(self._lock)
        self._in_flight = 0
        self._closed = False
        self.counters: Dict[str, int] = {
            "submitted": 0,
            "rejected": 0,
            "updates": 0,
            "update_edges": 0,
            STATUS_OK: 0,
            STATUS_TRUNCATED: 0,
            STATUS_DEADLINE_EXCEEDED: 0,
            STATUS_ERROR: 0,
        }
        # The HTTP ops plane starts last, once every subsystem (and its
        # health check) is attached — the first /readyz can never observe a
        # half-constructed service.
        self.ops_server = None
        if ops_addr is not None:
            from repro.obs.http import OpsServer, parse_ops_addr

            host, port = parse_ops_addr(ops_addr)
            self.ops_server = OpsServer(
                self.obs,
                health=db.health,
                stats_fn=self.stats,
                host=host,
                port=port,
            )

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> int:
        """Total in-flight bound (running + queued)."""
        return self.max_concurrent + self.max_queue

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def _admit(self, block: bool) -> None:
        with self._slots_free:
            if self._closed:
                raise AdmissionError("query service is closed")
            if not block and self._in_flight >= self.capacity:
                self.counters["rejected"] += 1
                raise AdmissionError(
                    f"service at capacity: {self._in_flight} queries in flight "
                    f"(max_concurrent={self.max_concurrent}, max_queue={self.max_queue})"
                )
            while self._in_flight >= self.capacity:
                self._slots_free.wait()
                if self._closed:
                    raise AdmissionError("query service is closed")
            self._in_flight += 1
            self.counters["submitted"] += 1

    def _release(self) -> None:
        with self._slots_free:
            self._in_flight -= 1
            self._slots_free.notify_all()

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        query: Union[QueryGraph, str],
        collect: bool = False,
        adaptive: bool = False,
        deadline_seconds: Optional[float] = None,
        row_limit: Optional[int] = None,
        num_workers: Optional[int] = None,
        vectorized: Optional[bool] = None,
        execution_mode: Optional[str] = None,
        _block: bool = False,
    ) -> "Future[ServiceResult]":
        """Submit a query for asynchronous execution.

        Raises :class:`AdmissionError` immediately when the service is at
        capacity (running + queued ≥ ``max_concurrent + max_queue``); never
        blocks the caller otherwise.  The returned future resolves to a
        :class:`ServiceResult` and never raises for query-level failures —
        errors are reported through ``status``/``error``.
        """
        query_graph = self.db._as_query(query) if not isinstance(query, QueryGraph) else query
        self._admit(block=_block)
        submit_time = time.monotonic()
        try:
            return self._pool.submit(
                self._run,
                query_graph,
                submit_time,
                collect,
                adaptive,
                deadline_seconds if deadline_seconds is not None else self.default_deadline_seconds,
                row_limit if row_limit is not None else self.default_row_limit,
                num_workers if num_workers is not None else self.num_workers,
                vectorized if vectorized is not None else self.vectorized,
                execution_mode if execution_mode is not None else self.execution_mode,
            )
        except BaseException:
            self._release()
            raise

    def execute(self, query: Union[QueryGraph, str], **options) -> ServiceResult:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(query, **options).result()

    def execute_batch(
        self,
        queries: Sequence[Union[QueryGraph, str]],
        collect: bool = False,
        adaptive: bool = False,
        deadline_seconds: Optional[float] = None,
        row_limit: Optional[int] = None,
        vectorized: Optional[bool] = None,
        execution_mode: Optional[str] = None,
    ) -> List[ServiceResult]:
        """Execute a batch, sharing planning across identical query shapes.

        Each *distinct* canonical query form in the batch is planned exactly
        once: the plan cache's leader election collapses concurrent misses on
        the same canonical key, so distinct shapes plan concurrently across
        the worker pool while repeats wait for (then reuse) the leader's
        plan.  Unlike :meth:`submit`, batch admission blocks instead of
        rejecting, so a batch larger than the queue bound flows through in
        waves; results come back in input order.
        """
        graphs = [
            q if isinstance(q, QueryGraph) else self.db._as_query(q) for q in queries
        ]
        futures = [
            self.submit(
                graph,
                collect=collect,
                adaptive=adaptive,
                deadline_seconds=deadline_seconds,
                row_limit=row_limit,
                vectorized=vectorized,
                execution_mode=execution_mode,
                _block=True,
            )
            for graph in graphs
        ]
        return [f.result() for f in futures]

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #
    def submit_update(
        self,
        inserts: Sequence[Tuple[int, ...]] = (),
        deletes: Sequence[Tuple[int, ...]] = (),
        new_vertex_labels: Optional[Sequence[int]] = None,
        _block: bool = False,
    ) -> "_Future[UpdateResult]":
        """Submit a live update batch for asynchronous application.

        Updates share the worker pool and admission bounds with queries, so a
        write-heavy client cannot starve reads past the configured capacity.
        Reads started before the update resolves keep their pinned snapshot
        (snapshot isolation); reads submitted after it see the new version.
        """
        self._admit(block=_block)
        try:
            return self._pool.submit(self._run_update, inserts, deletes, new_vertex_labels)
        except BaseException:
            self._release()
            raise

    def apply_updates(
        self,
        inserts: Sequence[Tuple[int, ...]] = (),
        deletes: Sequence[Tuple[int, ...]] = (),
        new_vertex_labels: Optional[Sequence[int]] = None,
    ) -> "UpdateResult":
        """Synchronous convenience wrapper around :meth:`submit_update`."""
        return self.submit_update(inserts, deletes, new_vertex_labels, _block=True).result()

    def _run_update(
        self,
        inserts: Sequence[Tuple[int, ...]],
        deletes: Sequence[Tuple[int, ...]],
        new_vertex_labels: Optional[Sequence[int]],
    ) -> "UpdateResult":
        try:
            result = self.db.apply_updates(
                inserts=inserts, deletes=deletes, new_vertex_labels=new_vertex_labels
            )
        finally:
            self._release()
        with self._lock:
            self.counters["updates"] += 1
            self.counters["update_edges"] += result.num_applied
        return result

    def prepare(
        self,
        query: Union[QueryGraph, str],
        vertex_params: Optional[Dict[str, str]] = None,
        edge_params: Optional[Dict[Tuple[str, str], str]] = None,
        name: Optional[str] = None,
    ) -> PreparedQuery:
        """A :class:`PreparedQuery` against this service's database."""
        return PreparedQuery(
            self.db, query, vertex_params=vertex_params, edge_params=edge_params, name=name
        )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _run(
        self,
        query: QueryGraph,
        submit_time: float,
        collect: bool,
        adaptive: bool,
        deadline_seconds: Optional[float],
        row_limit: Optional[int],
        num_workers: int,
        vectorized: bool,
        execution_mode: str,
    ) -> ServiceResult:
        start = time.monotonic()
        queue_seconds = start - submit_time
        deadline = submit_time + deadline_seconds if deadline_seconds is not None else None
        result: Optional["QueryResult"] = None
        error: Optional[str] = None
        try:
            if deadline is not None and start >= deadline:
                # The deadline expired while the query sat in the queue.
                status = STATUS_DEADLINE_EXCEEDED
            else:
                config = ExecutionConfig(
                    output_limit=row_limit,
                    deadline=deadline,
                    vectorized=vectorized,
                    batch_size=self.batch_size,
                )
                result = self.db.execute(
                    query,
                    adaptive=adaptive,
                    collect=collect,
                    num_workers=num_workers,
                    config=config,
                    execution_mode=execution_mode,
                )
                if result.deadline_exceeded:
                    status = STATUS_DEADLINE_EXCEEDED
                elif result.truncated:
                    status = STATUS_TRUNCATED
                else:
                    status = STATUS_OK
        except Exception as exc:  # query-level failure, not a service failure
            status = STATUS_ERROR
            error = f"{type(exc).__name__}: {exc}"
        finally:
            self._release()
        total_seconds = time.monotonic() - submit_time
        self.metrics.record(total_seconds)
        with self._lock:
            self.counters[status] += 1
        if self.obs.enabled:
            trace = result.trace if result is not None else None
            if trace is not None:
                # The database built and recorded the trace (plan/execute
                # spans); wrap it in the serving context: the admission-wait
                # span up front, and the end-to-end total including it.
                trace.prepend_span("admission_wait", queue_seconds)
                trace.total_seconds = total_seconds
                trace.status = status
            else:
                # Queue-expired deadline or a query-level error: the database
                # never ran, but the request still leaves a trace.
                trace = QueryTrace(
                    query_name=query.name,
                    status=status,
                    mode="queued",
                    total_seconds=total_seconds,
                )
                trace.add_span("admission_wait", queue_seconds)
                if error is not None:
                    trace.add_span("error", total_seconds - queue_seconds, message=error)
                self.obs.record_query(trace)
            self.obs.admission_wait_seconds.labels().observe(queue_seconds)
        return ServiceResult(
            query_name=query.name,
            status=status,
            result=result,
            error=error,
            queue_seconds=queue_seconds,
            total_seconds=total_seconds,
        )

    # ------------------------------------------------------------------ #
    # observability / lifecycle
    # ------------------------------------------------------------------ #
    def recent_traces(self, n: Optional[int] = None, kind: Optional[str] = None):
        """The most recent :class:`~repro.obs.trace.QueryTrace` records
        (newest last); ``kind`` filters to ``"query"`` or ``"update"``."""
        return self.obs.traces.recent(n, kind=kind)

    def trace(self, trace_id: int):
        """Look a trace up by id (None once evicted from the ring)."""
        return self.obs.traces.get(trace_id)

    def slow_queries(self, n: Optional[int] = None):
        """Traces that crossed ``slow_query_seconds`` (newest last)."""
        return self.obs.traces.slow(n)

    def metrics_prometheus(self) -> str:
        """The Prometheus text exposition of the database's registry
        (includes this service's request-level collector)."""
        return self.obs.registry.expose_prometheus()

    def _collect_tuning_stats(self) -> dict:
        """Self-tuning loop numbers for the registry's ``tuning`` collector."""
        refresher = self.catalogue_refresher
        reopt = self.reoptimizer
        out: dict = {}
        if refresher is not None:
            out.update(refresher.stats())
        if reopt is not None:
            out["reoptimizer"] = reopt.stats()
        return out

    def refresh_catalogue_now(self) -> bool:
        """Synchronously run one catalogue re-sample + install (requires
        ``self_tuning=True``); returns whether a catalogue was installed."""
        if self.catalogue_refresher is None:
            raise RuntimeError("self_tuning is disabled for this service")
        return self.catalogue_refresher.refresh_now()

    def reoptimize_now(self):
        """Synchronously run one re-optimization pass over drifting plans
        (requires ``self_tuning=True``); returns the pass report."""
        if self.reoptimizer is None:
            raise RuntimeError("self_tuning is disabled for this service")
        return self.reoptimizer.run_once()

    def _collect_service_stats(self) -> dict:
        """Request-level numbers for the metrics registry's collector (flat,
        numeric leaves only — strings are skipped by the flattener)."""
        snapshot: MetricsSnapshot = self.metrics.snapshot()
        with self._lock:
            counters = dict(self.counters)
            in_flight = self._in_flight
        return {
            "qps": snapshot.qps,
            "latency_p50_seconds": snapshot.p50_seconds,
            "latency_p95_seconds": snapshot.p95_seconds,
            "latency_p99_seconds": snapshot.p99_seconds,
            "in_flight": in_flight,
            "counters": counters,
        }

    def stats(self) -> dict:
        """Rolling metrics, status counters, and plan-cache statistics."""
        snapshot: MetricsSnapshot = self.metrics.snapshot()
        with self._lock:
            counters = dict(self.counters)
            in_flight = self._in_flight
        out = {
            "qps": snapshot.qps,
            "latency_p50_seconds": snapshot.p50_seconds,
            "latency_p95_seconds": snapshot.p95_seconds,
            "latency_p99_seconds": snapshot.p99_seconds,
            "latency_mean_seconds": snapshot.mean_seconds,
            "window_queries": snapshot.count,
            "in_flight": in_flight,
            "counters": counters,
            "planner_invocations": self.db.planner_invocations,
            "graph_version": self.db.graph_version,
            "catalogue_stale_fraction": self.db.catalogue_stale_fraction,
        }
        if self.db.plan_cache is not None:
            out["plan_cache"] = self.db.plan_cache.stats.as_dict()
        if self.db.compaction_manager is not None:
            out["compaction"] = self.db.compaction_manager.stats()
        if self.db.durable_store is not None:
            out["persistence"] = self.db.durable_store.stats()
        pool_stats = self.db._process_pool_stats()
        if pool_stats:
            out["process_pool"] = pool_stats
            # Worker section: the cross-generation per-worker totals plus the
            # pool generation, pulled up for `repro stats --json` consumers.
            out["workers"] = {
                "generation": pool_stats.get("generation", 0),
                "queue_wait_p50_seconds": pool_stats.get("queue_wait_p50_seconds", 0.0),
                "queue_wait_p99_seconds": pool_stats.get("queue_wait_p99_seconds", 0.0),
                **pool_stats.get("workers", {}),
            }
        if self.catalogue_refresher is not None:
            out["tuning"] = self._collect_tuning_stats()
        out["traces"] = self.obs.traces.stats()
        out["cardinality_feedback"] = self.obs.feedback.stats()
        out["events"] = (
            self.obs.event_log.stats()
            if self.obs.event_log is not None
            else {"attached": False}
        )
        out["health"] = self.db.health.run().as_dict()
        if self.ops_server is not None:
            out["ops"] = {"url": self.ops_server.url, "closed": self.ops_server.closed}
        return out

    def stats_rows(self) -> List[dict]:
        """The stats flattened into rows for ``format_table``."""
        stats = self.stats()
        rows = [
            {"metric": "graph version", "value": str(stats["graph_version"])},
            {"metric": "qps", "value": f"{stats['qps']:.1f}"},
            {"metric": "latency p50 (ms)", "value": f"{stats['latency_p50_seconds'] * 1e3:.2f}"},
            {"metric": "latency p95 (ms)", "value": f"{stats['latency_p95_seconds'] * 1e3:.2f}"},
            {"metric": "latency p99 (ms)", "value": f"{stats['latency_p99_seconds'] * 1e3:.2f}"},
            {"metric": "queries in window", "value": str(stats["window_queries"])},
            {"metric": "planner invocations", "value": str(stats["planner_invocations"])},
        ]
        for name, count in stats["counters"].items():
            rows.append({"metric": f"queries {name}", "value": str(count)})
        cache = stats.get("plan_cache")
        if cache:
            rows.append({"metric": "plan cache hits", "value": str(cache["hits"])})
            rows.append({"metric": "plan cache misses", "value": str(cache["misses"])})
            rows.append({"metric": "plan cache hit rate", "value": f"{cache['hit_rate']:.1%}"})
        compaction = stats.get("compaction")
        if compaction:
            rows.append(
                {"metric": "background compactions", "value": str(compaction["compactions"])}
            )
            rows.append(
                {"metric": "delta overlay edges", "value": str(compaction["delta_edges"])}
            )
        if stats["catalogue_stale_fraction"]:
            rows.append(
                {
                    "metric": "catalogue stale fraction",
                    "value": f"{stats['catalogue_stale_fraction']:.1%}",
                }
            )
        persistence = stats.get("persistence")
        if persistence:
            rows.append({"metric": "wal last seq", "value": str(persistence["last_seq"])})
            rows.append(
                {
                    "metric": "wal records since checkpoint",
                    "value": str(persistence["wal_records_since_checkpoint"]),
                }
            )
            rows.append({"metric": "checkpoints", "value": str(persistence["checkpoints"])})
        traces = stats.get("traces")
        if traces and traces.get("recorded"):
            rows.append({"metric": "traces recorded", "value": str(traces["recorded"])})
            if traces.get("slow_queries"):
                rows.append({"metric": "slow queries", "value": str(traces["slow_queries"])})
        workers = stats.get("workers")
        if workers:
            rows.append({"metric": "pool generation", "value": str(workers["generation"])})
            for name, per_worker in sorted(workers.items()):
                if isinstance(per_worker, dict):
                    rows.append(
                        {
                            "metric": f"worker {name} busy (ms)",
                            "value": f"{per_worker['busy_seconds'] * 1e3:.2f}",
                        }
                    )
        events = stats.get("events")
        if events and events.get("attached"):
            rows.append({"metric": "events emitted", "value": str(events["emitted"])})
        tuning = stats.get("tuning")
        if tuning:
            rows.append({"metric": "catalogue refreshes", "value": str(tuning["refreshes"])})
            rows.append({"metric": "catalogue epoch", "value": str(tuning["catalogue_epoch"])})
            reopt = tuning.get("reoptimizer")
            if reopt:
                rows.append({"metric": "plan replans", "value": str(reopt["replans"])})
                rows.append({"metric": "plan changes", "value": str(reopt["plan_changes"])})
        feedback = stats.get("cardinality_feedback")
        if feedback and feedback.get("plans_tracked"):
            rows.append({"metric": "plans with feedback", "value": str(feedback["plans_tracked"])})
            rows.append({"metric": "max q-error", "value": f"{feedback['max_q_error']:.2f}"})
            rows.append(
                {"metric": "plans drifting (q-error ≥ 2)", "value": str(feedback["drifting_over_2"])}
            )
        return rows

    def close(self, wait: bool = True) -> None:
        """Stop accepting queries and (optionally) wait for in-flight ones;
        stops the background compaction manager if this service enabled it
        and, when this service attached durability, checkpoints and closes
        the durable store (graceful shutdown: restart replays nothing).

        With an ops server attached, the node is marked draining *first* —
        ``/readyz`` flips to 503 while in-flight queries finish — and the
        server itself stops *last*, so external probes watch the shutdown
        all the way through."""
        if self.ops_server is not None:
            self.db.health.set_draining(True, reason="service closing")
        with self._slots_free:
            self._closed = True
            self._slots_free.notify_all()
        # Stop the tuning loop before draining workers: it reads planner
        # state that the teardown below starts dismantling.
        if self._owns_tuning and self.catalogue_refresher is not None:
            self.catalogue_refresher.stop(wait=wait)
            self._owns_tuning = False
            self.db.health.unregister("catalogue_refresher")
        self._pool.shutdown(wait=wait)
        if self._owns_process_pool:
            self.db.close_process_pool()
            self._owns_process_pool = False
        if self._owns_compaction:
            self.db.disable_background_compaction(wait=wait)
            self._owns_compaction = False
        if self._owns_durability:
            store = self.db.durable_store
            if store is not None and not store.closed:
                store.close(checkpoint=self._checkpoint_on_close)
            self._owns_durability = False
        if self._owns_event_log:
            log = self.obs.event_log
            if log is not None:
                log.close()
            self._owns_event_log = False
        if self.ops_server is not None:
            self.ops_server.close()

    @property
    def ops_address(self) -> Optional[Tuple[str, int]]:
        """The ops server's bound ``(host, port)``, or ``None`` without one."""
        return self.ops_server.address if self.ops_server is not None else None

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
