"""Prepared (parameterized) queries: parse and plan once, bind per execution.

A :class:`PreparedQuery` fixes a query's *shape* at preparation time and
leaves vertex/edge labels open as named parameters.  Each execution binds
concrete labels, producing a bound :class:`~repro.query.query_graph.QueryGraph`
whose plan is resolved through the database's plan cache — so the optimizer
runs once per distinct binding, not once per execution, and the parse/
canonicalization work is shared across bindings through a small binding
cache.

Example
-------
>>> prepared = PreparedQuery(db, "(a1)->(a2), (a2)->(a3), (a1)->(a3)",
...                          vertex_params={"a1": "root"})
>>> prepared.execute(root=0).num_matches  # triangles whose a1 has label 0
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Union

from repro.errors import InvalidQueryError
from repro.query.cypher import looks_like_cypher, parse_cypher
from repro.query.parser import parse_query
from repro.query.query_graph import QueryGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api import GraphflowDB, QueryResult


class PreparedQuery:
    """A query template with named label parameters.

    Parameters
    ----------
    db:
        The :class:`repro.api.GraphflowDB` the query will run against.
    query:
        A :class:`QueryGraph` or a pattern/Cypher string; parsed once here.
    vertex_params:
        Mapping from query-vertex name to parameter name; the vertex's label
        is bound from that parameter at execution time.
    edge_params:
        Mapping from ``(src, dst)`` query-edge endpoints to parameter name.
    name:
        Name given to bound queries (the binding is appended).
    """

    def __init__(
        self,
        db: "GraphflowDB",
        query: Union[QueryGraph, str],
        vertex_params: Optional[Dict[str, str]] = None,
        edge_params: Optional[Dict[Tuple[str, str], str]] = None,
        name: Optional[str] = None,
    ) -> None:
        self.db = db
        self.template = self._parse(query)
        self.name = name or self.template.name
        self.vertex_params = dict(vertex_params or {})
        self.edge_params = dict(edge_params or {})
        for vertex in self.vertex_params:
            if not self.template.has_vertex(vertex):
                raise InvalidQueryError(
                    f"prepared query has no vertex {vertex!r} to parameterize"
                )
        template_edges = {(e.src, e.dst) for e in self.template.edges}
        for endpoints in self.edge_params:
            if tuple(endpoints) not in template_edges:
                raise InvalidQueryError(
                    f"prepared query has no edge {endpoints!r} to parameterize"
                )
        self.param_names = frozenset(self.vertex_params.values()) | frozenset(
            self.edge_params.values()
        )
        # Bound QueryGraphs are memoised per binding so repeated executions
        # skip relabeling and canonical-key computation entirely.
        self._bindings: Dict[Tuple[Tuple[str, Optional[int]], ...], QueryGraph] = {}
        self._lock = threading.Lock()

    def _parse(self, query: Union[QueryGraph, str]) -> QueryGraph:
        if isinstance(query, QueryGraph):
            return query
        if looks_like_cypher(query):
            return parse_cypher(query, schema=getattr(self.db, "schema", None))
        return parse_query(query)

    # ------------------------------------------------------------------ #
    def bind(self, **params: Optional[int]) -> QueryGraph:
        """The query graph with every parameter bound to a concrete label.

        Unbound parameters keep the template's label for their sites (vertex
        labels default to the template's, usually the ``None`` wildcard).
        Unknown parameter names raise :class:`InvalidQueryError`.
        """
        unknown = set(params) - self.param_names
        if unknown:
            raise InvalidQueryError(
                f"unknown parameters {sorted(unknown)}; "
                f"declared parameters are {sorted(self.param_names)}"
            )
        key = tuple(sorted(params.items()))
        with self._lock:
            bound = self._bindings.get(key)
        if bound is not None:
            return bound
        vertex_labels = self.template.vertex_labels
        for vertex, param in self.vertex_params.items():
            if param in params:
                vertex_labels[vertex] = params[param]
        edge_label_map = {
            endpoints: params[param]
            for endpoints, param in self.edge_params.items()
            if param in params
        }
        bound = QueryGraph(
            self.template.relabel_edges(edge_label_map).edges,
            vertex_labels=vertex_labels,
            name=self.name if not params else f"{self.name}({key})",
        )
        with self._lock:
            self._bindings[key] = bound
        return bound

    def plan(self, **params: Optional[int]):
        """The (cached) plan for the given binding."""
        return self.db.plan(self.bind(**params))

    def execute(
        self,
        collect: bool = False,
        adaptive: bool = False,
        num_workers: int = 1,
        config=None,
        **params: Optional[int],
    ) -> "QueryResult":
        """Bind the parameters and execute; planning goes through the plan
        cache, so only the first execution of a binding pays for optimization."""
        bound = self.bind(**params)
        return self.db.execute(
            bound, collect=collect, adaptive=adaptive, num_workers=num_workers, config=config
        )

    def __repr__(self) -> str:
        return (
            f"PreparedQuery({self.name!r}, params={sorted(self.param_names)}, "
            f"bindings={len(self._bindings)})"
        )
