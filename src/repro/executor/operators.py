"""Physical operators.

The executor follows Graphflow's Volcano-style pipeline (Section 7): SCAN
leaves emit matched data edges as 2-matches, EXTEND/INTERSECT (E/I) operators
extend partial matches by one query vertex through multiway adjacency-list
intersections (with an intersection cache over consecutive identical
intersections), and HASH-JOIN operators join the matches of two sub-plans.

Partial matches are plain tuples of vertex ids aligned with the plan node's
``out_vertices`` order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import DeadlineExceededError, PlanError
from repro.executor.profile import ExecutionProfile
from repro.graph.graph import Direction, Graph
from repro.graph.intersect import contains_sorted, intersect_multiway
from repro.graph.triangle_index import TriangleIndex
from repro.planner.plan import ExtendNode, HashJoinNode, PlanNode, ScanNode


@dataclass
class ExecutionConfig:
    """Knobs controlling plan execution.

    Attributes
    ----------
    enable_intersection_cache:
        The E/I intersection cache of Section 3.1 (Table 3 toggles this).
    isomorphism:
        When True, partial matches must map query vertices to *distinct* data
        vertices (subgraph-isomorphism semantics, used for the CFL comparison);
        the default False matches the join/homomorphism semantics of WCOJ
        systems such as Graphflow and EmptyHeaded.
    scan_range:
        Optional ``(start, stop)`` slice over the SCAN operator's edge list;
        the parallel executor partitions work this way (morsels).
    scan_range_vertices:
        When a plan contains several SCAN leaves (hash-join plans), the range
        is applied only to the scan whose ``out_vertices`` equal this tuple;
        all other scans read their full edge list.
    output_limit:
        Stop after this many output matches (Appendix C limits output sizes).
    triangle_index:
        Optional :class:`repro.graph.triangle_index.TriangleIndex`.  Two-way
        intersections whose (vertex pair, direction pair) the index covers are
        answered with a lookup instead of an adjacency-list intersection; all
        other extensions fall back to ordinary intersections.
    deadline:
        Optional absolute ``time.monotonic()`` timestamp.  Operators check it
        periodically while iterating and raise
        :class:`repro.errors.DeadlineExceededError` once it has passed, so a
        query with a deadline cannot hang even when it produces no output
        rows.  :func:`repro.executor.pipeline.execute_plan` converts the
        exception into a partial (truncated) result.
    vectorized:
        Execute with the batch-at-a-time engine of
        :mod:`repro.executor.vectorized`: operators exchange 2-D ``int64``
        frames of bound tuples instead of per-tuple Python generators, which
        removes interpreter overhead from the hot path.  Match counts are
        identical to the iterator pipeline; only the order in which matches
        are produced may differ.
    batch_size:
        Rows per columnar frame emitted by the batch SCAN operator (and the
        granularity of deadline checks in vectorized mode).
    execution_mode:
        How ``num_workers > 1`` executions distribute morsels: ``"thread"``
        (the in-process pool of :func:`repro.executor.parallel.execute_parallel`,
        GIL-bound for Python-level work) or ``"process"`` (the
        :class:`repro.executor.multiprocess.MorselProcessPool`, worker
        processes mapping a shared snapshot file read-only for wall-clock
        scaling).  Ignored when ``num_workers <= 1``.  An unsupported query
        in process mode (e.g. a triangle-index config or an oversized dirty
        delta) falls back to thread execution per query.
    """

    enable_intersection_cache: bool = True
    isomorphism: bool = False
    scan_range: Optional[Tuple[int, int]] = None
    scan_range_vertices: Optional[Tuple[str, ...]] = None
    output_limit: Optional[int] = None
    triangle_index: Optional["TriangleIndex"] = None
    deadline: Optional[float] = None
    vectorized: bool = False
    batch_size: int = 2048
    execution_mode: str = "thread"


# How many tuples an operator processes between deadline checks; keeps the
# time.monotonic() overhead off the per-tuple hot path.
DEADLINE_CHECK_STRIDE = 256


def resolve_extend_descriptors(
    node: ExtendNode, child_order: Tuple[str, ...]
) -> List[Tuple[int, Direction, Optional[int]]]:
    """Resolve an E/I node's descriptors to ``(tuple index, direction, edge
    label)`` triples against the child's output order (shared by the iterator
    and vectorized executors)."""
    index_of = {v: i for i, v in enumerate(child_order)}
    return [
        (index_of[d.from_vertex], d.direction, d.edge_label) for d in node.descriptors
    ]


def resolve_hash_join(
    node: HashJoinNode,
) -> Tuple[List[int], List[int], List[int], List[Tuple[int, int, Optional[int]]]]:
    """Column resolution for a HASH-JOIN node, shared by both executors.

    Returns ``(build_key_idx, probe_key_idx, build_payload_idx,
    filter_edges)``: key/payload column positions in the children's output
    orders, plus the query edges of the joined sub-query covered by neither
    child, resolved to ``(src column, dst column, edge label)`` in the node's
    own output order (verified as post-filters).
    """
    build_order = node.build.out_vertices
    probe_order = node.probe.out_vertices
    build_key_idx = [build_order.index(v) for v in node.join_vertices]
    probe_key_idx = [probe_order.index(v) for v in node.join_vertices]
    probe_set = set(probe_order)
    build_payload_idx = [i for i, v in enumerate(build_order) if v not in probe_set]
    covered = {
        (e.src, e.dst, e.label)
        for child in (node.build, node.probe)
        for e in child.sub_query.edges
    }
    out_index = {v: i for i, v in enumerate(node.out_vertices)}
    filter_edges = [
        (out_index[e.src], out_index[e.dst], e.label)
        for e in node.sub_query.edges
        if (e.src, e.dst, e.label) not in covered
    ]
    return build_key_idx, probe_key_idx, build_payload_idx, filter_edges


def scan_edge_arrays(
    scan_node: ScanNode, graph: Graph, config: ExecutionConfig
) -> Tuple[np.ndarray, np.ndarray]:
    """``(src, dst)`` edge arrays for a SCAN leaf, with the config's scan
    range applied when it targets this scan (shared by the iterator and
    vectorized executors)."""
    edge = scan_node.edge
    query = scan_node.sub_query
    src, dst = graph.edges(
        edge_label=edge.label,
        src_label=query.vertex_label(edge.src),
        dst_label=query.vertex_label(edge.dst),
    )
    if config.scan_range is not None and (
        config.scan_range_vertices is None
        or tuple(config.scan_range_vertices) == tuple(scan_node.out_vertices)
    ):
        start, stop = config.scan_range
        src, dst = src[start:stop], dst[start:stop]
    return src, dst


class Operator:
    """Base class for physical operators; subclasses implement ``__iter__``."""

    def __init__(
        self,
        node: PlanNode,
        graph: Graph,
        profile: ExecutionProfile,
        config: ExecutionConfig,
        is_root: bool,
    ) -> None:
        self.node = node
        self.graph = graph
        self.profile = profile
        self.config = config
        self.is_root = is_root

    def __iter__(self) -> Iterator[Tuple[int, ...]]:  # pragma: no cover - abstract
        raise NotImplementedError

    def _emit(self, count: int) -> None:
        """Account for ``count`` tuples produced by this operator."""
        if self.is_root:
            self.profile.output_matches += count
        else:
            self.profile.record_intermediate(count)

    def _check_deadline(self) -> None:
        if (
            self.config.deadline is not None
            and time.monotonic() > self.config.deadline
        ):
            raise DeadlineExceededError(
                f"query deadline exceeded in {type(self).__name__}"
            )


class ScanOperator(Operator):
    """Scans data edges matching a single query edge.

    When the scan's sub-query contains additional (parallel or reciprocal)
    query edges between the same two query vertices, they are verified as
    filters so that multi-edge queries such as Q6 stay correct.
    """

    def __init__(self, node: ScanNode, *args, **kwargs) -> None:
        super().__init__(node, *args, **kwargs)
        self.scan_node = node
        query = node.sub_query
        edge = node.edge
        self._extra_edges = [
            e
            for e in query.edges
            if not (e.src == edge.src and e.dst == edge.dst and e.label == edge.label)
        ]
        self._reversed = node.out_vertices[0] != edge.src

    def _edge_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return scan_edge_arrays(self.scan_node, self.graph, self.config)

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        edge = self.scan_node.edge
        src, dst = self._edge_arrays()
        emitted = 0
        ticks = 0
        for u, v in zip(src, dst):
            ticks += 1
            if ticks % DEADLINE_CHECK_STRIDE == 0:
                self._check_deadline()
            u, v = int(u), int(v)
            if self.config.isomorphism and u == v:
                continue
            ok = True
            for extra in self._extra_edges:
                s, d = (u, v) if extra.src == edge.src else (v, u)
                if not self.graph.has_edge(s, d, extra.label):
                    ok = False
                    break
            if not ok:
                continue
            emitted += 1
            yield (v, u) if self._reversed else (u, v)
        self._emit(emitted)
        self.profile.record_operator(self.scan_node.display_name(), out=emitted)


class ExtendIntersectOperator(Operator):
    """EXTEND/INTERSECT with the intersection cache of Section 3.1."""

    def __init__(self, node: ExtendNode, child: Operator, *args, **kwargs) -> None:
        super().__init__(node, *args, **kwargs)
        self.extend_node = node
        self.child = child
        self._resolved = resolve_extend_descriptors(node, child.node.out_vertices)
        self._to_label = node.to_vertex_label
        self._cache_key: Optional[Tuple] = None
        self._cache_value: Optional[np.ndarray] = None

    def _indexed_extension(self, t: Tuple[int, ...]) -> Optional[np.ndarray]:
        """Serve a 2-way intersection from the triangle index when possible.

        Only applies to unlabeled 2-descriptor extensions onto an unlabeled
        target vertex, because the index stores intersections of full (merged)
        adjacency lists.
        """
        index = self.config.triangle_index
        if index is None or len(self._resolved) != 2 or self._to_label is not None:
            return None
        (idx_a, dir_a, label_a), (idx_b, dir_b, label_b) = self._resolved
        if label_a is not None or label_b is not None:
            return None
        extension = index.lookup(t[idx_a], t[idx_b], dir_a, dir_b)
        if extension is None:
            return None
        self.profile.record_index_hit()
        return extension

    def _extension_set(self, t: Tuple[int, ...]) -> np.ndarray:
        key = tuple(t[idx] for idx, _, _ in self._resolved)
        if (
            self.config.enable_intersection_cache
            and self._cache_key is not None
            and key == self._cache_key
        ):
            self.profile.record_cache_hit()
            return self._cache_value  # type: ignore[return-value]
        self.profile.record_cache_miss()
        indexed = self._indexed_extension(t)
        if indexed is not None:
            if self.config.enable_intersection_cache:
                self._cache_key = key
                self._cache_value = indexed
            return indexed
        lists = []
        accessed = 0
        for idx, direction, edge_label in self._resolved:
            adj = self.graph.neighbors(t[idx], direction, edge_label, self._to_label)
            accessed += len(adj)
            lists.append(adj)
        self.profile.record_intersection(accessed)
        extension = lists[0] if len(lists) == 1 else intersect_multiway(lists)
        if self.config.enable_intersection_cache:
            self._cache_key = key
            self._cache_value = extension
        return extension

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        emitted = 0
        ticks = 0
        isomorphism = self.config.isomorphism
        for t in self.child:
            ticks += 1
            if ticks % DEADLINE_CHECK_STRIDE == 0:
                self._check_deadline()
            extension = self._extension_set(t)
            if len(extension) == 0:
                continue
            if isomorphism:
                used = set(t)
                new_vertices = [int(w) for w in extension if int(w) not in used]
            else:
                new_vertices = [int(w) for w in extension]
            emitted += len(new_vertices)
            for w in new_vertices:
                yield t + (w,)
        self._emit(emitted)
        self.profile.record_operator(self.extend_node.display_name(), out=emitted)


class HashJoinOperator(Operator):
    """Classic hash join on the shared query vertices of its children.

    Query edges of the joined sub-query that are covered by neither child
    (possible only for plans outside the optimizer's space, but supported for
    robustness and for baseline planners) are verified as post-filters.
    """

    def __init__(
        self, node: HashJoinNode, build: Operator, probe: Operator, *args, **kwargs
    ) -> None:
        super().__init__(node, *args, **kwargs)
        self.join_node = node
        self.build_child = build
        self.probe_child = probe
        (
            self._build_key_idx,
            self._probe_key_idx,
            self._build_payload_idx,
            self._filter_edges,
        ) = resolve_hash_join(node)

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        table: Dict[Tuple[int, ...], List[Tuple[int, ...]]] = {}
        entries = 0
        for t in self.build_child:
            key = tuple(t[i] for i in self._build_key_idx)
            table.setdefault(key, []).append(tuple(t[i] for i in self._build_payload_idx))
            entries += 1
        self.profile.hash_table_entries += entries

        emitted = 0
        ticks = 0
        isomorphism = self.config.isomorphism
        for t in self.probe_child:
            ticks += 1
            if ticks % DEADLINE_CHECK_STRIDE == 0:
                self._check_deadline()
            self.profile.hash_probes += 1
            key = tuple(t[i] for i in self._probe_key_idx)
            payloads = table.get(key)
            if not payloads:
                continue
            for payload in payloads:
                out = t + payload
                if isomorphism and len(set(out)) != len(out):
                    continue
                ok = True
                for si, di, lab in self._filter_edges:
                    if not self.graph.has_edge(out[si], out[di], lab):
                        ok = False
                        break
                if not ok:
                    continue
                emitted += 1
                yield out
        self._emit(emitted)
        self.profile.record_operator(
            self.join_node.display_name(),
            out=emitted,
            entries=entries,
        )


def build_operator_tree(
    node: PlanNode,
    graph: Graph,
    profile: ExecutionProfile,
    config: ExecutionConfig,
    is_root: bool = True,
) -> Operator:
    """Recursively wire physical operators for a plan subtree."""
    if isinstance(node, ScanNode):
        return ScanOperator(node, graph, profile, config, is_root)
    if isinstance(node, ExtendNode):
        child = build_operator_tree(node.child, graph, profile, config, is_root=False)
        return ExtendIntersectOperator(node, child, graph, profile, config, is_root)
    if isinstance(node, HashJoinNode):
        build = build_operator_tree(node.build, graph, profile, config, is_root=False)
        probe = build_operator_tree(node.probe, graph, profile, config, is_root=False)
        return HashJoinOperator(node, build, probe, graph, profile, config, is_root)
    raise PlanError(f"unknown plan node type: {type(node).__name__}")
