"""Adaptive WCO plan evaluation (Section 6).

A fixed plan's WCO part (a chain of two or more E/I operators) commits to one
query-vertex ordering chosen from *average* statistics.  The adaptive executor
instead fixes only the partial match produced below the chain (for pure WCO
plans: the scanned edge) and, for every such partial match, re-evaluates the
cost of every ordering of the remaining query vertices using the *actual*
adjacency-list sizes of the matched data vertices, then extends that match
with the cheapest ordering (Example 6.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.catalogue.catalogue import SubgraphCatalogue
from repro.catalogue.estimation import extension_statistics
from repro.errors import DeadlineExceededError
from repro.executor.operators import (
    DEADLINE_CHECK_STRIDE,
    ExecutionConfig,
    build_operator_tree,
)
from repro.executor.pipeline import ExecutionResult
from repro.executor.profile import ExecutionProfile
from repro.graph.graph import Direction, Graph
from repro.graph.intersect import intersect_multiway
from repro.planner.descriptors import AdjListDescriptor
from repro.planner.plan import ExtendNode, Plan, PlanNode
from repro.planner.qvo import enumerate_orderings
from repro.query.query_graph import QueryGraph


@dataclass
class _OrderingTemplate:
    """Pre-resolved extension steps for one candidate ordering."""

    ordering: Tuple[str, ...]
    # For each extension step: (target label, [(tuple index, direction, edge label), ...])
    steps: List[Tuple[Optional[int], List[Tuple[int, Direction, Optional[int]]]]]
    # Catalogue statistics per step: (sum of avg list sizes, mu), used to
    # re-evaluate the cost of the tail of the ordering.
    step_stats: List[Tuple[float, float]]


def _wco_chain_base(plan: Plan) -> Tuple[PlanNode, int]:
    """Find the node below the topmost maximal chain of E/I operators.

    Returns the base node and the length of the chain above it.
    """
    chain_len = 0
    node = plan.root
    while isinstance(node, ExtendNode):
        chain_len += 1
        node = node.child
    return node, chain_len


def _build_templates(
    query: QueryGraph,
    base_vertices: Tuple[str, ...],
    graph: Graph,
    catalogue: Optional[SubgraphCatalogue],
) -> List[_OrderingTemplate]:
    """All orderings that extend the base partial match to the full query,
    with descriptors resolved to tuple positions and per-step statistics."""
    templates: List[_OrderingTemplate] = []
    for ordering in enumerate_orderings(query, prefix=base_vertices):
        steps: List[Tuple[Optional[int], List[Tuple[int, Direction, Optional[int]]]]] = []
        step_stats: List[Tuple[float, float]] = []
        ok = True
        for k in range(len(base_vertices), len(ordering)):
            to_vertex = ordering[k]
            prefix = ordering[:k]
            index = {v: i for i, v in enumerate(prefix)}
            descriptors = [
                AdjListDescriptor.for_extension(e, to_vertex)
                for e in query.edges_touching(to_vertex)
                if e.other(to_vertex) in set(prefix)
            ]
            if not descriptors:
                ok = False
                break
            resolved = [
                (index[d.from_vertex], d.direction, d.edge_label) for d in descriptors
            ]
            to_label = query.vertex_label(to_vertex)
            steps.append((to_label, resolved))
            if catalogue is not None:
                try:
                    sub = query.project(prefix)
                    sizes, mu = extension_statistics(
                        catalogue, sub, descriptors, to_label, graph=graph
                    )
                    step_stats.append((float(sum(sizes)), float(mu)))
                except Exception:
                    step_stats.append((float(graph.num_edges) / max(graph.num_vertices, 1), 1.0))
            else:
                avg = float(graph.num_edges) / max(graph.num_vertices, 1)
                step_stats.append((avg * len(resolved), 1.0))
        if ok and steps:
            templates.append(
                _OrderingTemplate(ordering=tuple(ordering), steps=steps, step_stats=step_stats)
            )
    return templates


def _estimate_template_cost(
    template: _OrderingTemplate, t: Tuple[int, ...], graph: Graph
) -> float:
    """Re-evaluated i-cost of extending the specific partial match ``t`` with
    this ordering: the first step uses the actual adjacency-list sizes of the
    matched vertices, later steps scale the catalogue averages by the ratio of
    actual to average size (Example 6.2)."""
    to_label, resolved = template.steps[0]
    actual_first = 0.0
    for idx, direction, edge_label in resolved:
        actual_first += graph.degree(t[idx], direction, edge_label, to_label)
    avg_first, mu_first = template.step_stats[0]
    cost = actual_first
    # Scale the expected number of matches flowing into later steps.
    scale = 1.0
    if avg_first > 0:
        scale = actual_first / avg_first
    expected_matches = mu_first * scale
    for (avg_sizes, mu), _step in zip(template.step_stats[1:], template.steps[1:]):
        cost += expected_matches * avg_sizes
        expected_matches *= mu
    return cost


def execute_adaptive(
    plan: Plan,
    graph: Graph,
    catalogue: Optional[SubgraphCatalogue] = None,
    config: Optional[ExecutionConfig] = None,
    collect: bool = False,
) -> ExecutionResult:
    """Run ``plan`` with adaptive query-vertex-ordering selection.

    The plan must contain a chain of at least two E/I operators at the top
    (pure WCO plans always do for queries with 4+ vertices); otherwise the
    plan is executed as-is.
    """
    config = config or ExecutionConfig()
    base_node, chain_len = _wco_chain_base(plan)
    if chain_len < 2:
        from repro.executor.pipeline import execute_plan

        return execute_plan(plan, graph, config=config, collect=collect)

    profile = ExecutionProfile()
    if config.vectorized:
        # The partial matches below the chain stream through the batch engine
        # (columnar frames straight off the CSR arrays); the per-match
        # ordering re-selection itself is inherently tuple-at-a-time.
        from repro.executor.vectorized import build_batch_operator_tree

        batch_base = build_batch_operator_tree(
            base_node, graph, profile, config, is_root=False
        )

        def _base_tuples():
            for frame in batch_base.frames():
                for row in frame.tolist():
                    yield tuple(row)

        base_operator = _base_tuples()
    else:
        base_operator = build_operator_tree(
            base_node, graph, profile, config, is_root=False
        )
    base_vertices = tuple(base_node.out_vertices)
    templates = _build_templates(plan.query, base_vertices, graph, catalogue)
    if not templates:
        from repro.executor.pipeline import execute_plan

        return execute_plan(plan, graph, config=config, collect=collect)

    matches: Optional[List[Tuple[int, ...]]] = [] if collect else None
    count = 0
    truncated = False
    deadline_exceeded = False
    ticks = 0
    # Per-template, per-level intersection cache (key -> extension array).
    caches: List[List[Optional[Tuple[Tuple[int, ...], np.ndarray]]]] = [
        [None] * len(template.steps) for template in templates
    ]

    start = time.perf_counter()

    def extend(
        t: Tuple[int, ...], template_idx: int, level: int
    ) -> None:
        nonlocal count, truncated, deadline_exceeded, ticks
        if truncated:
            return
        ticks += 1
        if (
            config.deadline is not None
            and ticks % DEADLINE_CHECK_STRIDE == 0
            and time.monotonic() > config.deadline
        ):
            truncated = True
            deadline_exceeded = True
            return
        template = templates[template_idx]
        if level == len(template.steps):
            count += 1
            if collect:
                # Different partial matches may use different orderings, so
                # normalise every collected match to the plan root's order.
                position = {v: i for i, v in enumerate(template.ordering)}
                matches.append(  # type: ignore[union-attr]
                    tuple(t[position[v]] for v in plan.root.out_vertices)
                )
            if config.output_limit is not None and count >= config.output_limit:
                truncated = True
            return
        to_label, resolved = template.steps[level]
        key = tuple(t[idx] for idx, _, _ in resolved)
        cached = caches[template_idx][level]
        if config.enable_intersection_cache and cached is not None and cached[0] == key:
            extension = cached[1]
            profile.record_cache_hit()
        else:
            profile.record_cache_miss()
            lists = []
            accessed = 0
            for idx, direction, edge_label in resolved:
                adj = graph.neighbors(t[idx], direction, edge_label, to_label)
                accessed += len(adj)
                lists.append(adj)
            profile.record_intersection(accessed)
            extension = lists[0] if len(lists) == 1 else intersect_multiway(lists)
            if config.enable_intersection_cache:
                caches[template_idx][level] = (key, extension)
        for w in extension:
            w = int(w)
            if config.isomorphism and w in t:
                continue
            if level + 1 < len(template.steps):
                profile.record_intermediate(1)
            extend(t + (w,), template_idx, level + 1)
            if truncated:
                return

    try:
        for t in base_operator:
            if truncated:
                break
            if config.deadline is not None and time.monotonic() > config.deadline:
                truncated = True
                deadline_exceeded = True
                break
            costs = [_estimate_template_cost(tpl, t, graph) for tpl in templates]
            best_idx = int(np.argmin(costs))
            extend(t, best_idx, 0)
    except DeadlineExceededError:
        truncated = True
        deadline_exceeded = True

    profile.elapsed_seconds = time.perf_counter() - start
    profile.output_matches = count
    adaptive_plan = Plan(
        query=plan.query,
        root=plan.root,
        estimated_cost=plan.estimated_cost,
        estimated_cardinality=plan.estimated_cardinality,
        label=(plan.label + "+adaptive") if plan.label else "adaptive",
        adaptive=True,
    )
    return ExecutionResult(
        plan=adaptive_plan,
        num_matches=count,
        profile=profile,
        matches=matches,
        vertex_order=tuple(plan.root.out_vertices),
        truncated=truncated,
        deadline_exceeded=deadline_exceeded,
    )
