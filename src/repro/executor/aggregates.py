"""Aggregation over query results.

The applications that motivate subgraph queries in the paper's introduction —
recommendation from diamonds in a follower network, community detection from
clique counts, fraud detection from cyclic payment patterns — rarely want the
raw list of matches.  They want *aggregates*: how many cliques touch each
vertex, which accounts participate in the most cycles, how many distinct
(buyer, seller) pairs appear in a fraud pattern.

This module provides streaming aggregation over a plan's output.  Matches are
consumed directly from the operator tree (they are never materialized in a
list), so aggregations run in memory proportional to the number of *groups*
rather than the number of matches — the same reason the paper's SINK operator
counts rather than collects.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.executor.operators import ExecutionConfig, build_operator_tree
from repro.executor.profile import ExecutionProfile
from repro.graph.graph import Graph
from repro.planner.plan import Plan


@dataclass
class AggregateResult:
    """Outcome of a streaming aggregation over a plan's matches."""

    plan: Plan
    group_by: Tuple[str, ...]
    counts: Dict[Tuple[int, ...], int]
    total_matches: int
    profile: ExecutionProfile = field(default_factory=ExecutionProfile)

    @property
    def num_groups(self) -> int:
        return len(self.counts)

    def top(self, k: int = 10) -> List[Tuple[Tuple[int, ...], int]]:
        """The ``k`` groups with the most matches (count-descending, then key)."""
        return sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))[:k]

    def count_for(self, *key: int) -> int:
        """Number of matches whose group-by columns equal ``key``."""
        return self.counts.get(tuple(key), 0)

    def __repr__(self) -> str:
        return (
            f"AggregateResult(query={self.plan.query.name!r}, groups={self.num_groups}, "
            f"matches={self.total_matches}, group_by={self.group_by})"
        )


def _column_positions(plan: Plan, vertices: Sequence[str]) -> List[int]:
    order = plan.root.out_vertices
    positions = []
    for vertex in vertices:
        if vertex not in order:
            raise PlanError(
                f"query vertex {vertex!r} is not produced by the plan (has {order})"
            )
        positions.append(order.index(vertex))
    return positions


def group_count(
    plan: Plan,
    graph: Graph,
    group_by: Sequence[str],
    config: Optional[ExecutionConfig] = None,
) -> AggregateResult:
    """Count matches grouped by the bindings of ``group_by`` query vertices.

    Example: grouping the triangle query by ``a1`` gives, for every data
    vertex, the number of triangles in which it plays the role of ``a1``.
    """
    if not group_by:
        raise PlanError("group_count requires at least one group-by query vertex")
    config = config or ExecutionConfig()
    profile = ExecutionProfile()
    positions = _column_positions(plan, group_by)
    root = build_operator_tree(plan.root, graph, profile, config, is_root=True)
    counts: Dict[Tuple[int, ...], int] = {}
    total = 0
    start = time.perf_counter()
    for match in root:
        key = tuple(match[i] for i in positions)
        counts[key] = counts.get(key, 0) + 1
        total += 1
        if config.output_limit is not None and total >= config.output_limit:
            break
    profile.elapsed_seconds = time.perf_counter() - start
    return AggregateResult(
        plan=plan,
        group_by=tuple(group_by),
        counts=counts,
        total_matches=total,
        profile=profile,
    )


def distinct_count(
    plan: Plan,
    graph: Graph,
    vertices: Sequence[str],
    config: Optional[ExecutionConfig] = None,
) -> int:
    """Number of distinct bindings of ``vertices`` across all matches.

    Example: the number of distinct vertices that appear as the apex of a
    diamond, regardless of how many diamonds they participate in.
    """
    return group_count(plan, graph, vertices, config=config).num_groups


def top_k_vertices(
    plan: Plan,
    graph: Graph,
    vertex: str,
    k: int = 10,
    config: Optional[ExecutionConfig] = None,
) -> List[Tuple[int, int]]:
    """The ``k`` data vertices that bind ``vertex`` in the most matches.

    Returns ``(vertex_id, match_count)`` pairs sorted by descending count.
    This is the "who is in the most cliques / fraud cycles" query that the
    motivating applications ask.
    """
    result = group_count(plan, graph, [vertex], config=config)
    return [(key[0], count) for key, count in result.top(k)]


def per_vertex_participation(
    plan: Plan,
    graph: Graph,
    config: Optional[ExecutionConfig] = None,
) -> Dict[int, int]:
    """For every data vertex, the number of matches it participates in
    (counted once per match even if it fills several query vertices)."""
    config = config or ExecutionConfig()
    profile = ExecutionProfile()
    root = build_operator_tree(plan.root, graph, profile, config, is_root=True)
    participation: Dict[int, int] = {}
    total = 0
    for match in root:
        for vertex_id in set(match):
            participation[vertex_id] = participation.get(vertex_id, 0) + 1
        total += 1
        if config.output_limit is not None and total >= config.output_limit:
            break
    return participation


__all__ = [
    "AggregateResult",
    "group_count",
    "distinct_count",
    "top_k_vertices",
    "per_vertex_participation",
]
