"""Multi-process morsel execution over a shared mmap'd snapshot base.

The thread-pool executor (:mod:`repro.executor.parallel`) partitions the
primary SCAN's edge list into morsels but remains GIL-bound: it reports
honest *work-based* speed-ups while wall-clock time barely moves for
Python-level work.  This module escapes the GIL with worker *processes*,
following the partition-and-stream design of distributed WCOJ dataflows
(arXiv:1802.03760): the graph is never pickled through a pipe — workers
``np.memmap`` one shared, immutable snapshot file read-only (the persistence
layer's checksummed ``.gfs`` format), rebuild the cheap derived structures
once per base, and then stream ``(plan, config, scan-range)`` tasks.

Coordinator protocol
--------------------
:class:`MorselProcessPool` owns ``num_workers`` long-lived worker processes,
one shared task queue, and one shared result queue.  For each query the
coordinator

1. resolves a *base path*: the durable store's current snapshot file when the
   caller can prove it matches the pinned snapshot (checkpoint-on-demand is
   the caller's job, see ``GraphflowDB._process_base_path``), else a spool
   file written once per distinct base object and reused across queries;
2. serialises the query **once** — plan via
   :func:`repro.planner.serialize.plan_to_dict`, config as primitives, and,
   for a *dirty* snapshot, the delta as an overlay of sorted
   ``(src, dst, label)`` triples (bounded by ``delta_ship_threshold``;
   anything larger raises :class:`ProcessExecutionUnsupported` so the caller
   falls back to in-process execution);
3. computes morsel ranges over the scan's edge count with dynamic sizing
   (``total / (num_workers * morsels_per_worker)`` clamped to
   ``[min_morsel_size, max_morsel_size]``), enqueues one task per range, and
   collects exactly one result per range, discarding stale messages from
   abandoned attempts by query id;
4. merges counts, collected rows (in morsel-index order, which equals the
   serial scan order for the iterator engine), and
   :class:`~repro.executor.profile.ExecutionProfile` objects with the same
   ``workers``/``busy_seconds`` semantics as the thread executor.

Every task also carries its enqueue timestamp and every result a compact
per-morsel timing dict (queue wait, plan deserialization, base load vs
mmap-cache hit, overlay rebuild, execute) — the worker's metric deltas,
piggybacked on the result message rather than shipped separately.  The
coordinator folds them into the attached observability's ``worker_*``
registry families, computes the query's busy skew and critical path onto
the merged profile, and returns the raw records on
:attr:`~repro.executor.parallel.ParallelResult.morsel_records` so the
database can attach one child span per morsel to the query's trace.

Workers cache the deserialised ``(plan, graph, config)`` per query id and the
mapped base per path, so a query's cost is paid once, not per morsel.  A
worker that dies mid-query is respawned and the query retried once under a
fresh id; a second death raises :class:`~repro.errors.WorkerPoolError` while
the pool stays usable for later queries.

Determinism: match *counts* are bit-identical to the single-threaded pipeline
for both engines (each scan edge is executed exactly once across morsels).
Collected rows from the iterator engine come back in exact serial order;
the vectorized engine may group rows differently within a morsel, exactly as
it already does in-process.

Deadlines ship as absolute ``time.monotonic()`` values, which is correct on
Linux (``CLOCK_MONOTONIC`` is system-wide, and child processes share the
boot clock) — the platform this pool targets.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as queue_mod
import shutil
import tempfile
import threading
import time
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.errors import ProcessExecutionUnsupported, WorkerPoolError
from repro.executor.operators import ExecutionConfig
from repro.executor.parallel import ParallelResult, _primary_scan
from repro.executor.profile import ExecutionProfile
from repro.graph.graph import Graph
from repro.obs.registry import Histogram
from repro.planner.plan import Plan
from repro.planner.serialize import plan_from_dict, plan_to_dict

#: Mapped bases a worker keeps alive at once (current + previous, so a
#: compaction/checkpoint handover does not thrash the page cache).
_WORKER_BASE_CACHE = 2

#: Config fields shipped to workers.  Everything else on ExecutionConfig is
#: either per-morsel (scan_range) or unshippable (triangle_index).
_SHIPPED_CONFIG_FIELDS = (
    "enable_intersection_cache",
    "isomorphism",
    "output_limit",
    "deadline",
    "vectorized",
    "batch_size",
)


class _WorkerDied(Exception):
    """Internal: a worker process died while a query was in flight."""


# --------------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------------- #
def _load_worker_graph(spec: dict, base_cache: Dict[str, Graph], timings: dict):
    """Map the shared base (cached per path) and apply the delta overlay.

    Fills ``timings`` with the stage costs this load actually paid:
    ``base_cache_hit`` (whether the mapped base was already cached),
    ``base_load`` seconds on a miss, and ``overlay_rebuild`` seconds for a
    dirty snapshot's delta replay.
    """
    path = spec["base_path"]
    base = base_cache.get(path)
    if base is None:
        from repro.persistence.snapshot_file import read_snapshot

        load_start = time.perf_counter()
        base, _ = read_snapshot(path, mmap=True)
        timings["base_load"] = time.perf_counter() - load_start
        timings["base_cache_hit"] = False
        while len(base_cache) >= _WORKER_BASE_CACHE:
            base_cache.pop(next(iter(base_cache)))
        base_cache[path] = base
    else:
        timings["base_cache_hit"] = True
    overlay = spec.get("overlay")
    if overlay is None:
        return base
    from repro.storage.dynamic import DynamicGraph

    rebuild_start = time.perf_counter()
    dynamic = DynamicGraph(base)
    if overlay["vertex_labels_tail"]:
        dynamic.add_vertices(labels=overlay["vertex_labels_tail"])
    if overlay["inserts"]:
        dynamic.add_edges(overlay["inserts"])
    if overlay["deletes"]:
        dynamic.delete_edges(overlay["deletes"])
    snapshot = dynamic.snapshot()
    timings["overlay_rebuild"] = time.perf_counter() - rebuild_start
    return snapshot


def _worker_main(worker_id: int, task_queue, result_queue) -> None:
    """Worker loop: deserialise a query spec once, then execute its morsels.

    Must stay importable at module top level (``spawn`` start method).
    """
    base_cache: Dict[str, Graph] = {}
    current: Optional[tuple] = None  # (query_id, plan, graph, config, collect, scan_vertices)
    while True:
        task = task_queue.get()
        pickup = time.monotonic()
        if task is None:
            break
        _, query_id, morsel_index, spec_bytes, scan_range, enqueue_ts = task
        # Per-morsel stage timings, shipped back with the result.  queue_wait
        # spans coordinator enqueue -> worker pickup: CLOCK_MONOTONIC is
        # system-wide on Linux, so the two processes' readings compare
        # directly (same convention the shipped deadlines already rely on).
        timings = {"queue_wait": max(0.0, pickup - enqueue_ts)}
        try:
            if current is None or current[0] != query_id:
                deser_start = time.perf_counter()
                spec = pickle.loads(spec_bytes)
                graph = _load_worker_graph(spec, base_cache, timings)
                plan = plan_from_dict(spec["plan"])
                config = ExecutionConfig(**spec["config"])
                # Spec-unpickle + plan/config rebuild cost, excluding the
                # graph load (reported as base_load / overlay_rebuild).
                timings["deserialize"] = max(
                    0.0,
                    (time.perf_counter() - deser_start)
                    - timings.get("base_load", 0.0)
                    - timings.get("overlay_rebuild", 0.0),
                )
                current = (
                    query_id,
                    plan,
                    graph,
                    config,
                    spec["collect"],
                    tuple(spec["scan_vertices"]),
                )
            _, plan, graph, config, collect, scan_vertices = current
            from repro.executor.pipeline import execute_plan

            morsel_config = replace(
                config,
                scan_range=tuple(scan_range),
                scan_range_vertices=scan_vertices,
            )
            timings["started_at"] = time.monotonic()
            busy_start = time.perf_counter()
            result = execute_plan(plan, graph, config=morsel_config, collect=collect)
            timings["execute"] = time.perf_counter() - busy_start
            result_queue.put(
                (
                    "result",
                    query_id,
                    morsel_index,
                    worker_id,
                    result.num_matches,
                    result.matches if collect else None,
                    tuple(result.vertex_order),
                    result.profile,
                    result.truncated,
                    result.deadline_exceeded,
                    timings,
                )
            )
        except BaseException as exc:  # report, keep serving later queries
            current = None
            try:
                result_queue.put(
                    (
                        "error",
                        query_id,
                        morsel_index,
                        worker_id,
                        f"{type(exc).__name__}: {exc}",
                    )
                )
            except Exception:
                return


# --------------------------------------------------------------------------- #
# coordinator side
# --------------------------------------------------------------------------- #
class MorselProcessPool:
    """A persistent pool of worker processes executing scan-range morsels.

    Parameters
    ----------
    num_workers:
        Worker processes to spawn (lazily, on the first query).
    start_method:
        ``multiprocessing`` start method; defaults to ``"fork"`` where
        available (cheap, workers inherit the imported modules) and
        ``"spawn"`` otherwise.
    morsels_per_worker:
        Dynamic-sizing target: aim for this many morsels per worker so the
        shared queue load-balances skewed ranges.
    min_morsel_size / max_morsel_size:
        Clamp on the computed morsel size (edges per morsel).
    delta_ship_threshold:
        Largest dirty-snapshot overlay (edge mutations + new vertices) the
        coordinator will serialise to workers; beyond it the query raises
        :class:`ProcessExecutionUnsupported` for the caller to run in-process.
    spool_dir:
        Where bases without a durable snapshot file are materialized; a
        private temp directory (removed on close) by default.
    observability:
        Optional :class:`~repro.obs.Observability` to fold worker-side
        metrics into (``worker_*`` registry families) and to emit pool
        events through (``pool_respawn``, ``fallback_to_thread``).  The
        registry families live on the observability object, so they survive
        both generation respawns and pool replacement.

    One query executes at a time (``execute`` serialises callers); morsels of
    that query run concurrently across all workers.
    """

    def __init__(
        self,
        num_workers: int = 2,
        start_method: Optional[str] = None,
        morsels_per_worker: int = 4,
        min_morsel_size: int = 256,
        max_morsel_size: int = 65536,
        delta_ship_threshold: int = 5000,
        spool_dir: Optional[str] = None,
        poll_seconds: float = 0.1,
        retry_limit: int = 1,
        observability=None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self.num_workers = num_workers
        self.start_method = start_method
        self.morsels_per_worker = morsels_per_worker
        self.min_morsel_size = min_morsel_size
        self.max_morsel_size = max_morsel_size
        self.delta_ship_threshold = delta_ship_threshold
        self.poll_seconds = poll_seconds
        self.retry_limit = retry_limit
        self._ctx = mp.get_context(start_method)
        self._task_queue = None
        self._result_queue = None
        self._workers: List = []
        self._spool_dir_given = spool_dir
        self._spool_dir: Optional[str] = None
        self._query_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._query_counter = 0
        self._ship_counter = 0
        # Base-dedup cache: id(base) -> (base, spool path).  Strong refs pin
        # the objects so a recycled id() can never alias a different graph.
        self._shipped: Dict[int, Tuple[object, str]] = {}
        self._closed = False
        # Observability (read by the registry collector wired up in api.py).
        self._observability = observability
        self.morsel_seconds = Histogram()
        self.queue_wait_seconds = Histogram()
        self._counters = {
            "queries": 0,
            "tasks": 0,
            "fallbacks": 0,
            "respawns": 0,
            "base_ships": 0,
            "overlay_queries": 0,
            "base_cache_hits": 0,
            "base_cache_misses": 0,
            "overlay_rebuilds": 0,
        }
        # Cumulative across generations: a crash-respawn rebuilds workers
        # but must not zero the per-worker totals (a scrape would read a
        # counter going backwards).  `generation` counts whole-pool
        # respawns; `carry_from` additionally preserves the totals across a
        # pool *replacement* (enable_process_pool with a new worker count).
        self._generation = 0
        self._worker_busy_seconds = [0.0] * num_workers
        self._worker_morsels = [0] * num_workers
        self._last_query_skew = 1.0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_started(self) -> None:
        if self._closed:
            raise WorkerPoolError("process pool is closed")
        if self._task_queue is None:
            self._task_queue = self._ctx.Queue()
            self._result_queue = self._ctx.Queue()
        if not self._workers:
            self._workers = [self._spawn(i) for i in range(self.num_workers)]
        elif any(proc is None or not proc.is_alive() for proc in self._workers):
            self._respawn_dead()

    def _spawn(self, worker_id: int):
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, self._task_queue, self._result_queue),
            name=f"repro-morsel-{worker_id}",
            daemon=True,
        )
        proc.start()
        return proc

    def _respawn_dead(self) -> int:
        """Rebuild the pool after a worker death: fresh queues, fresh workers.

        A worker killed while blocked in ``queue.get()`` dies *holding the
        shared queue's reader lock*, poisoning it for every sibling — so one
        death condemns the whole generation, not just the dead slot."""
        dead = sum(
            1 for proc in self._workers if proc is None or not proc.is_alive()
        )
        if not dead:
            return 0
        for proc in self._workers:
            if proc is not None and proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for q in (self._task_queue, self._result_queue):
            if q is not None:
                q.close()
                q.cancel_join_thread()
        self._task_queue = self._ctx.Queue()
        self._result_queue = self._ctx.Queue()
        self._workers = [self._spawn(i) for i in range(self.num_workers)]
        with self._state_lock:
            self._counters["respawns"] += dead
            self._generation += 1
            generation = self._generation
        self._emit_event(
            "pool_respawn",
            dead_workers=dead,
            generation=generation,
            num_workers=self.num_workers,
        )
        return dead

    def close(self) -> None:
        """Graceful shutdown: drain workers with sentinels, then reap."""
        if self._closed:
            return
        self._closed = True
        if self._task_queue is not None:
            for _ in self._workers:
                try:
                    self._task_queue.put(None)
                except Exception:  # pragma: no cover - queue already broken
                    break
        for proc in self._workers:
            if proc is None:
                continue
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        self._workers = []
        for q in (self._task_queue, self._result_queue):
            if q is not None:
                q.close()
                q.cancel_join_thread()
        self._task_queue = self._result_queue = None
        self._shipped.clear()
        if self._spool_dir is not None and self._spool_dir_given is None:
            shutil.rmtree(self._spool_dir, ignore_errors=True)
        self._spool_dir = None

    def __enter__(self) -> "MorselProcessPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # base shipping
    # ------------------------------------------------------------------ #
    def _spool(self) -> str:
        if self._spool_dir is None:
            if self._spool_dir_given is not None:
                os.makedirs(self._spool_dir_given, exist_ok=True)
                self._spool_dir = self._spool_dir_given
            else:
                self._spool_dir = tempfile.mkdtemp(prefix="repro-morsel-pool-")
        return self._spool_dir

    def _ship_base(self, base: Graph) -> str:
        """Materialize ``base`` as a snapshot file exactly once per object."""
        with self._state_lock:
            entry = self._shipped.get(id(base))
            if entry is not None and entry[0] is base:
                return entry[1]
        from repro.persistence.snapshot_file import write_snapshot

        path = os.path.join(self._spool(), f"base-{self._ship_counter}.gfs")
        self._ship_counter += 1
        write_snapshot(base, path, last_seq=0)
        with self._state_lock:
            self._shipped[id(base)] = (base, path)
            # Dedup entries for the two most recent bases are enough; spool
            # files stay on disk until close() so a worker's mapping of an
            # evicted base never dangles.
            while len(self._shipped) > 2:
                oldest = next(iter(self._shipped))
                if oldest == id(base):
                    break
                self._shipped.pop(oldest)
            self._counters["base_ships"] += 1
        return path

    # ------------------------------------------------------------------ #
    # query execution
    # ------------------------------------------------------------------ #
    def note_fallback(self, reason: str) -> None:
        """Count a per-query fallback to in-process execution."""
        with self._state_lock:
            self._counters["fallbacks"] += 1
        self._emit_event("fallback_to_thread", reason=reason)

    # ------------------------------------------------------------------ #
    # observability plumbing
    # ------------------------------------------------------------------ #
    def _emit_event(self, event_type: str, **fields) -> None:
        """Forward a pool event to the attached observability's event log
        (a no-op without one; ``emit_event`` itself never raises)."""
        obs = self._observability
        emit = getattr(obs, "emit_event", None)
        if emit is not None:
            emit(event_type, **fields)

    def carry_from(self, previous: "MorselProcessPool") -> None:
        """Adopt the cumulative counters of a pool this one replaces.

        ``enable_process_pool`` calls this when a resize swaps pools, so
        the scrape-visible totals (busy seconds, morsel counts, query and
        respawn counters, latency histograms) keep accumulating instead of
        resetting to zero; the generation counter continues past the old
        pool's.  Per-worker totals carry for the overlapping worker ids.
        """
        with previous._state_lock:
            prev_counters = dict(previous._counters)
            prev_busy = list(previous._worker_busy_seconds)
            prev_morsels = list(previous._worker_morsels)
            prev_generation = previous._generation
        with self._state_lock:
            for key, value in prev_counters.items():
                if key in self._counters:
                    self._counters[key] += value
            for worker_id in range(min(self.num_workers, len(prev_busy))):
                self._worker_busy_seconds[worker_id] += prev_busy[worker_id]
                self._worker_morsels[worker_id] += prev_morsels[worker_id]
            self._generation += prev_generation + 1
        self.morsel_seconds = previous.morsel_seconds
        self.queue_wait_seconds = previous.queue_wait_seconds

    def _fold_worker_metrics(self, records: List[dict]) -> None:
        """Fold per-morsel worker timings into the shared registry families
        (``worker_*``); skipped when no observability is attached or the
        master switch is off."""
        obs = self._observability
        if obs is None or not getattr(obs, "enabled", False):
            return
        if not hasattr(obs, "worker_queue_wait_seconds"):
            return
        for rec in records:
            obs.worker_queue_wait_seconds.labels().observe(rec.get("queue_wait", 0.0))
            obs.worker_execute_seconds.labels().observe(rec.get("execute", 0.0))
            if "base_cache_hit" in rec:
                if rec["base_cache_hit"]:
                    obs.worker_base_cache_hits_total.labels().inc()
                else:
                    obs.worker_base_cache_misses_total.labels().inc()
                    obs.worker_base_load_seconds.labels().observe(rec.get("base_load", 0.0))
            if "overlay_rebuild" in rec:
                obs.worker_overlay_rebuild_seconds.labels().observe(rec["overlay_rebuild"])
            worker = f"w{rec['worker_id']}"
            obs.worker_busy_seconds_total.labels(worker).inc(rec.get("execute", 0.0))
            obs.worker_morsels_total.labels(worker).inc()
        obs.worker_pool_generation.labels().set(float(self._generation))

    def execute(
        self,
        plan: Plan,
        graph,
        config: Optional[ExecutionConfig] = None,
        collect: bool = False,
        base_path: Optional[str] = None,
    ) -> ParallelResult:
        """Execute ``plan`` across the worker processes.

        ``graph`` is a :class:`~repro.graph.graph.Graph`,
        :class:`~repro.storage.snapshot.GraphSnapshot`, or
        :class:`~repro.storage.dynamic.DynamicGraph` (pinned to a snapshot
        here).  ``base_path`` optionally names an existing snapshot file whose
        content equals the graph's *base* (the durable store's current
        checkpoint); without it the base is spooled on first use.

        Raises :class:`ProcessExecutionUnsupported` (before any work is
        enqueued) when the query cannot be shipped; the caller decides
        whether to fall back in-process.
        """
        from repro.storage.dynamic import DynamicGraph

        if isinstance(graph, DynamicGraph):
            graph = graph.snapshot()
        base_config = config or ExecutionConfig()
        spec, ranges = self._build_spec(plan, graph, base_config, collect, base_path)
        with self._query_lock:
            self._ensure_started()
            return self._run_query(plan, spec, ranges, base_config, collect)

    def _build_spec(
        self,
        plan: Plan,
        graph,
        base_config: ExecutionConfig,
        collect: bool,
        base_path: Optional[str],
    ) -> Tuple[dict, List[Tuple[int, int]]]:
        from repro.storage.snapshot import GraphSnapshot

        scan = _primary_scan(plan)
        if scan is None:
            raise ProcessExecutionUnsupported(
                "plan has no scan leaf to partition into morsels"
            )
        if base_config.scan_range is not None:
            raise ProcessExecutionUnsupported(
                "an explicit scan_range conflicts with morsel partitioning"
            )
        if base_config.triangle_index is not None:
            raise ProcessExecutionUnsupported(
                "a triangle index cannot be shipped to worker processes"
            )

        overlay = None
        if isinstance(graph, GraphSnapshot):
            base = graph.base
            if not graph.is_clean:
                inserts = sorted(graph.delta.insert_keys)
                deletes = sorted(graph.delta.deleted_keys)
                tail = graph.vertex_labels[base.num_vertices:]
                overlay_size = len(inserts) + len(deletes) + len(tail)
                if overlay_size > self.delta_ship_threshold:
                    raise ProcessExecutionUnsupported(
                        f"dirty snapshot delta ({overlay_size} mutations) exceeds "
                        f"the shipping threshold ({self.delta_ship_threshold})"
                    )
                overlay = {
                    "inserts": inserts,
                    "deletes": deletes,
                    "vertex_labels_tail": [int(x) for x in tail.tolist()],
                }
                with self._state_lock:
                    self._counters["overlay_queries"] += 1
        elif isinstance(graph, Graph):
            base = graph
        else:
            raise ProcessExecutionUnsupported(
                f"unsupported graph type for process execution: {type(graph).__name__}"
            )

        if base_path is None:
            base_path = self._ship_base(base)

        edge = scan.edge
        total_edges = graph.count_edges(
            edge_label=edge.label,
            src_label=scan.sub_query.vertex_label(edge.src),
            dst_label=scan.sub_query.vertex_label(edge.dst),
        )
        spec = {
            "base_path": base_path,
            "overlay": overlay,
            "plan": plan_to_dict(plan),
            "config": {
                field: getattr(base_config, field) for field in _SHIPPED_CONFIG_FIELDS
            },
            "collect": collect,
            "scan_vertices": tuple(scan.out_vertices),
        }
        return spec, self._morsel_ranges(total_edges)

    def _morsel_ranges(self, total_edges: int) -> List[Tuple[int, int]]:
        if total_edges <= 0:
            return [(0, 0)]
        target = max(1, self.num_workers * self.morsels_per_worker)
        size = -(-total_edges // target)  # ceil division
        size = max(self.min_morsel_size, min(self.max_morsel_size, size))
        return [
            (start, min(start + size, total_edges))
            for start in range(0, total_edges, size)
        ]

    def _run_query(
        self,
        plan: Plan,
        spec: dict,
        ranges: List[Tuple[int, int]],
        base_config: ExecutionConfig,
        collect: bool,
    ) -> ParallelResult:
        spec_bytes = pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
        start_time = time.perf_counter()
        attempts = 0
        while True:
            with self._state_lock:
                self._query_counter += 1
                query_id = self._query_counter
            try:
                payloads = self._dispatch(query_id, spec_bytes, ranges)
                break
            except _WorkerDied:
                self._respawn_dead()
                attempts += 1
                if attempts > self.retry_limit:
                    raise WorkerPoolError(
                        "worker process died mid-query and the retry budget is "
                        "exhausted; the query failed but the pool was respawned"
                    )
                # Retry the whole query under a fresh id: results of the
                # abandoned attempt are discarded by id on arrival.
        elapsed = time.perf_counter() - start_time
        return self._merge(plan, payloads, ranges, base_config, collect, elapsed)

    def _dispatch(
        self, query_id: int, spec_bytes: bytes, ranges: List[Tuple[int, int]]
    ) -> Dict[int, tuple]:
        for index, scan_range in enumerate(ranges):
            # The enqueue timestamp rides with the task so the worker can
            # measure its own queue wait (monotonic clocks are shared across
            # processes on Linux; see the module docstring).
            self._task_queue.put(
                ("task", query_id, index, spec_bytes, scan_range, time.monotonic())
            )
        payloads: Dict[int, tuple] = {}
        while len(payloads) < len(ranges):
            try:
                message = self._result_queue.get(timeout=self.poll_seconds)
            except queue_mod.Empty:
                if self._closed:
                    raise WorkerPoolError("process pool closed mid-query")
                if any(proc is None or not proc.is_alive() for proc in self._workers):
                    raise _WorkerDied()
                continue
            if message[1] != query_id:
                continue  # stale result from an abandoned attempt
            if message[0] == "error":
                raise WorkerPoolError(
                    f"worker {message[3]} failed on morsel {message[2]}: {message[4]}"
                )
            payloads[message[2]] = message
        return payloads

    def _merge(
        self,
        plan: Plan,
        payloads: Dict[int, tuple],
        ranges: List[Tuple[int, int]],
        base_config: ExecutionConfig,
        collect: bool,
        elapsed: float,
    ) -> ParallelResult:
        total = 0
        merged = ExecutionProfile()
        truncated = False
        deadline_exceeded = False
        per_worker_work = [0] * self.num_workers
        query_busy = [0.0] * self.num_workers
        # Per-worker total seconds on this query including setup stages
        # (deserialize, base load, overlay rebuild) — the critical-path basis.
        query_total = [0.0] * self.num_workers
        morsel_records: List[dict] = []
        matches: Optional[List[Tuple[int, ...]]] = [] if collect else None
        vertex_order: Tuple[str, ...] = ()
        for index in sorted(payloads):
            (
                _,
                _,
                _,
                worker_id,
                count,
                rows,
                v_order,
                profile,
                m_truncated,
                m_deadline,
                timings,
            ) = payloads[index]
            busy = timings.get("execute", 0.0)
            total += count
            merged = merged.merge(profile)
            per_worker_work[worker_id] += profile.intersection_cost + count
            truncated = truncated or m_truncated
            deadline_exceeded = deadline_exceeded or m_deadline
            if v_order:
                vertex_order = v_order
            if matches is not None and rows:
                matches.extend(rows)
            query_busy[worker_id] += busy
            query_total[worker_id] += (
                busy
                + timings.get("deserialize", 0.0)
                + timings.get("base_load", 0.0)
                + timings.get("overlay_rebuild", 0.0)
            )
            self.morsel_seconds.observe(busy)
            self.queue_wait_seconds.observe(timings.get("queue_wait", 0.0))
            record = {"morsel_index": index, "worker_id": worker_id, "rows": count}
            record.update(timings)
            morsel_records.append(record)
        limit = base_config.output_limit
        if limit is not None and total > limit:
            total = limit
            truncated = True
        if matches is not None and limit is not None and len(matches) > limit:
            matches = matches[:limit]
        merged.elapsed_seconds = elapsed
        merged.output_matches = total
        # One profile per morsel was folded in; normalise busy-vs-wall by the
        # process count, mirroring the thread executor.
        merged.workers = self.num_workers
        active = [b for b in query_busy if b > 0]
        skew = (max(active) * len(active) / sum(active)) if active else 1.0
        merged.skew = skew
        merged.critical_path_seconds = max(query_total) if query_total else 0.0
        with self._state_lock:
            self._counters["queries"] += 1
            self._counters["tasks"] += len(ranges)
            for record in morsel_records:
                if "base_cache_hit" in record:
                    key = "base_cache_hits" if record["base_cache_hit"] else "base_cache_misses"
                    self._counters[key] += 1
                if "overlay_rebuild" in record:
                    self._counters["overlay_rebuilds"] += 1
            for worker_id, busy in enumerate(query_busy):
                self._worker_busy_seconds[worker_id] += busy
            for index in payloads:
                self._worker_morsels[payloads[index][3]] += 1
            self._last_query_skew = skew
        self._fold_worker_metrics(morsel_records)
        return ParallelResult(
            plan=plan,
            num_matches=total,
            profile=merged,
            num_workers=self.num_workers,
            elapsed_seconds=elapsed,
            per_worker_work=per_worker_work,
            truncated=truncated,
            deadline_exceeded=deadline_exceeded,
            matches=matches,
            vertex_order=vertex_order,
            morsel_records=morsel_records,
        )

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Pool-level counters plus per-worker busy/morsel/skew numbers
        (flattened into gauges by the metrics registry's collector)."""
        with self._state_lock:
            counters = dict(self._counters)
            busy = list(self._worker_busy_seconds)
            morsels = list(self._worker_morsels)
            skew = self._last_query_skew
            generation = self._generation
        total_busy = sum(busy)
        mean_busy = total_busy / self.num_workers if self.num_workers else 0.0
        overall_skew = (max(busy) / mean_busy) if mean_busy > 0 else 1.0
        return {
            "num_workers": self.num_workers,
            "start_method": self.start_method,
            "alive_workers": sum(
                1 for proc in self._workers if proc is not None and proc.is_alive()
            ),
            "generation": generation,
            **counters,
            "last_query_skew": skew,
            "busy_skew": overall_skew,
            "morsel_count": self.morsel_seconds.count,
            "morsel_p50_seconds": self.morsel_seconds.quantile(0.5),
            "morsel_p99_seconds": self.morsel_seconds.quantile(0.99),
            "queue_wait_p50_seconds": self.queue_wait_seconds.quantile(0.5),
            "queue_wait_p99_seconds": self.queue_wait_seconds.quantile(0.99),
            "workers": {
                f"w{worker_id}": {
                    "busy_seconds": busy[worker_id],
                    "morsels": morsels[worker_id],
                }
                for worker_id in range(self.num_workers)
            },
        }

    def __repr__(self) -> str:
        return (
            f"MorselProcessPool(num_workers={self.num_workers}, "
            f"start_method={self.start_method!r}, closed={self._closed})"
        )


__all__ = [
    "MorselProcessPool",
    "ProcessExecutionUnsupported",
    "WorkerPoolError",
]
