"""Batch-at-a-time (morsel/columnar) plan execution.

The iterator pipeline in :mod:`repro.executor.operators` processes one bound
tuple per Python ``yield``, so interpreter overhead — not intersection cost —
dominates runtimes.  The operators here exchange 2-D ``int64`` NumPy frames
instead: each frame holds a batch of partial matches, one row per match, with
columns aligned to the plan node's ``out_vertices`` order.

* :class:`BatchScanOperator` slices edge batches straight out of the graph's
  edge arrays and verifies extra (parallel/reciprocal) query edges with a
  vectorized membership test over sorted adjacency keys.
* :class:`BatchExtendIntersectOperator` groups each batch by its
  adjacency-key columns (lexsort + boundary detection, the explicit form of
  ``np.unique(axis=0)``), so the single-entry intersection cache of paper
  Section 3.1 generalises to one intersection per *distinct* key instead of
  one per consecutive duplicate.  Extensions for the distinct keys are
  computed without a per-tuple Python loop: the most selective adjacency list
  of every key is gathered with one ragged CSR gather, and every other
  descriptor is applied as a vectorized binary-search membership filter
  (galloping at batch scale).  Isomorphism violations are filtered with
  broadcast compares against the prefix columns, and the ``(prefix x
  extension)`` product is expanded with ``np.repeat`` + ragged gathers.
* :class:`BatchHashJoinOperator` concatenates the build side into one frame,
  sorts it by an encoded join key, and probes whole columnar batches with a
  single ``searchsorted`` per batch.

Match *counts* are identical to the iterator pipeline on every plan; only the
order in which matches are produced may differ (each batch is sorted by its
adjacency-key columns).  Counting queries never materialise matches —
``num_matches`` accumulates from frame row counts.

Batch-grouping invariants — what the operators assume of their inputs and
guarantee of their outputs:

* every adjacency structure consumed (``graph.csr(...)`` partitions and
  ``graph.adjacency_key_array(...)``) has **sorted per-vertex runs** and a
  **globally sorted key array**; all membership tests are binary searches
  over them, so any graph-like provider must preserve that ordering;
* within one E/I invocation, rows are lexsorted by their adjacency-key
  columns so equal keys are consecutive, ``group_of_row`` is non-decreasing,
  and the per-group extension lists come back with non-decreasing group ids
  and sorted values — the ragged expansion gathers index directly into that
  layout;
* expansion is chunked (``_expansion_segments``) so no output frame grows far
  beyond ``batch_size`` rows regardless of per-row fanout, bounding peak
  memory multiplicatively through an operator chain.

The operators are deliberately agnostic about *which* graph object provides
the columnar arrays: an immutable :class:`~repro.graph.graph.Graph` serves
its flat CSR partitions, and a dirty
:class:`~repro.storage.snapshot.GraphSnapshot` serves lazily merged
per-partition views with the same ordering contracts — so the batch engine
runs directly on dirty snapshots of a :class:`DynamicGraph` without any
synchronous compaction on the query path (delta-merge invariants in
:mod:`repro.storage.delta`).
"""

from __future__ import annotations

import time
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import DeadlineExceededError, PlanError
from repro.executor.operators import (
    ExecutionConfig,
    resolve_extend_descriptors,
    resolve_hash_join,
    scan_edge_arrays,
)
from repro.executor.profile import ExecutionProfile
from repro.graph.graph import ANY_LABEL, Direction, Graph
from repro.graph.intersect import intersect_multiway
from repro.planner.plan import ExtendNode, HashJoinNode, Plan, PlanNode, ScanNode

_EMPTY_I64 = np.array([], dtype=np.int64)

# Composite hash-join keys are packed into one int64 code; beyond this many
# bits the operator falls back to a per-row Python hash table.
_CODE_BITS = 62


def _ragged_positions(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat gather positions for ragged segments.

    Segment ``i`` contributes ``counts[i]`` consecutive positions beginning at
    ``starts[i]``; the result concatenates all segments in order.
    """
    total = int(counts.sum())
    if total == 0:
        return _EMPTY_I64
    ends = np.cumsum(counts)
    inner = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return np.repeat(starts, counts) + inner


def _group_runs(
    sorted_keys: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Runs of identical consecutive entries in a sorted key array.

    Accepts a 1-D code array or a 2-D row-wise key matrix; returns
    ``(starts, counts, group_of_row)`` where ``starts``/``counts`` describe
    each run and ``group_of_row`` maps every row to its run index.
    """
    n = sorted_keys.shape[0]
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    keys = sorted_keys.reshape(n, -1)
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = np.any(keys[1:] != keys[:-1], axis=1)
    group_of_row = np.cumsum(boundary) - 1
    starts = np.flatnonzero(boundary)
    counts = np.diff(np.append(starts, n))
    return starts, counts, group_of_row


def _expansion_segments(counts: np.ndarray, cap: int) -> Iterator[Tuple[int, int]]:
    """Split rows into contiguous ``(start, end)`` segments whose summed
    expansion counts stay within ``cap``.

    Bounds the size of expanded output frames (and therefore peak memory and
    the multiplicative frame growth through an operator chain) regardless of
    per-row fanout; a single row whose own count exceeds ``cap`` still forms a
    one-row segment.
    """
    n = len(counts)
    cumulative = np.cumsum(counts)
    start = 0
    while start < n:
        base = int(cumulative[start - 1]) if start else 0
        end = int(np.searchsorted(cumulative, base + cap, side="right"))
        end = max(end, start + 1)
        yield start, min(end, n)
        start = end


def _membership(sorted_keys: np.ndarray, probe: np.ndarray) -> np.ndarray:
    """Vectorized ``probe in sorted_keys`` via binary search."""
    out = np.zeros(len(probe), dtype=bool)
    if len(sorted_keys) == 0 or len(probe) == 0:
        return out
    loc = np.searchsorted(sorted_keys, probe)
    valid = loc < len(sorted_keys)
    out[valid] = sorted_keys[loc[valid]] == probe[valid]
    return out


class BatchOperator:
    """Base class of batch operators; subclasses implement :meth:`frames`."""

    def __init__(
        self,
        node: PlanNode,
        graph: Graph,
        profile: ExecutionProfile,
        config: ExecutionConfig,
        is_root: bool,
    ) -> None:
        self.node = node
        self.graph = graph
        self.profile = profile
        self.config = config
        self.is_root = is_root

    def frames(self) -> Iterator[np.ndarray]:  # pragma: no cover - abstract
        raise NotImplementedError

    def _account(self, rows: int) -> None:
        if self.is_root:
            self.profile.output_matches += rows
        else:
            self.profile.record_intermediate(rows)

    def _check_deadline(self) -> None:
        if (
            self.config.deadline is not None
            and time.monotonic() > self.config.deadline
        ):
            raise DeadlineExceededError(
                f"query deadline exceeded in {type(self).__name__}"
            )

    def _yield_frame(self, name: str, frame: np.ndarray) -> np.ndarray:
        """Shared per-frame accounting before a frame is handed upstream."""
        rows = frame.shape[0]
        self._account(rows)
        self.profile.record_batch()
        self.profile.record_operator(name, out=rows, batches=1)
        return frame


class BatchScanOperator(BatchOperator):
    """Emits edge batches sliced directly from the graph's edge arrays."""

    def __init__(self, node: ScanNode, *args, **kwargs) -> None:
        super().__init__(node, *args, **kwargs)
        self.scan_node = node
        query = node.sub_query
        edge = node.edge
        self._extra_edges = [
            e
            for e in query.edges
            if not (e.src == edge.src and e.dst == edge.dst and e.label == edge.label)
        ]
        self._reversed = node.out_vertices[0] != edge.src
        self._name = node.display_name()

    def frames(self) -> Iterator[np.ndarray]:
        src, dst = scan_edge_arrays(self.scan_node, self.graph, self.config)
        edge = self.scan_node.edge
        n_vertices = self.graph.num_vertices
        batch = max(1, self.config.batch_size)
        for start in range(0, len(src), batch):
            self._check_deadline()
            t0 = time.perf_counter()
            u = src[start:start + batch]
            v = dst[start:start + batch]
            mask = np.ones(len(u), dtype=bool)
            if self.config.isomorphism:
                mask &= u != v
            for extra in self._extra_edges:
                s, d = (u, v) if extra.src == edge.src else (v, u)
                keys = self.graph.adjacency_key_array(
                    Direction.FORWARD, extra.label, ANY_LABEL
                )
                mask &= _membership(keys, s * n_vertices + d)
            if not mask.all():
                u, v = u[mask], v[mask]
            frame = np.stack((v, u) if self._reversed else (u, v), axis=1)
            self.profile.record_operator_time(self._name, time.perf_counter() - t0)
            if frame.shape[0]:
                yield self._yield_frame(self._name, frame)


class BatchExtendIntersectOperator(BatchOperator):
    """EXTEND/INTERSECT over columnar batches, grouped by adjacency keys."""

    def __init__(self, node: ExtendNode, child: BatchOperator, *args, **kwargs) -> None:
        super().__init__(node, *args, **kwargs)
        self.extend_node = node
        self.child = child
        self._resolved: List[Tuple[int, Direction, Optional[int]]] = (
            resolve_extend_descriptors(node, child.node.out_vertices)
        )
        self._to_label = node.to_vertex_label
        self._key_idx = np.array([idx for idx, _, _ in self._resolved], dtype=np.int64)
        self._csrs = [
            self.graph.csr(direction, edge_label, self._to_label)
            for _, direction, edge_label in self._resolved
        ]
        index = self.config.triangle_index
        self._index_applicable = (
            index is not None
            and len(self._resolved) == 2
            and self._to_label is None
            and all(edge_label is None for _, _, edge_label in self._resolved)
        )
        self._name = node.display_name()

    # ------------------------------------------------------------------ #
    def _adj_keys(self, descriptor: int) -> np.ndarray:
        _, direction, edge_label = self._resolved[descriptor]
        return self.graph.adjacency_key_array(direction, edge_label, self._to_label)

    def _extensions_vectorized(
        self, unique_keys: np.ndarray, group_sizes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Extension candidates for every distinct key row.

        Returns ``(group_ids, values)`` with ``group_ids`` non-decreasing and
        values sorted within each group.  The most selective adjacency list of
        every key seeds the candidates (one ragged CSR gather per descriptor
        partition); every other descriptor is applied as a vectorized
        binary-search membership filter.
        """
        num_desc = len(self._resolved)
        n_vertices = self.graph.num_vertices
        cols = [unique_keys[:, j] for j in range(num_desc)]
        degrees = np.stack(
            [csr.indptr[c + 1] - csr.indptr[c] for csr, c in zip(self._csrs, cols)],
            axis=1,
        )
        accessed = degrees.sum(axis=1)
        if self.config.enable_intersection_cache:
            self.profile.record_intersection(int(accessed.sum()))
        else:
            # Without the cache the iterator recomputes per duplicate tuple;
            # mirror that in the i-cost accounting.
            self.profile.record_intersection(int((accessed * group_sizes).sum()))
        seed_choice = np.argmin(degrees, axis=1)
        group_parts: List[np.ndarray] = []
        value_parts: List[np.ndarray] = []
        for d in range(num_desc):
            group_ids = np.flatnonzero(seed_choice == d)
            if group_ids.size == 0:
                continue
            csr = self._csrs[d]
            from_vertices = cols[d][group_ids]
            counts = csr.indptr[from_vertices + 1] - csr.indptr[from_vertices]
            if int(counts.sum()) == 0:
                continue
            positions = _ragged_positions(csr.indptr[from_vertices], counts)
            values = csr.indices[positions]
            groups = np.repeat(group_ids, counts)
            mask = np.ones(len(values), dtype=bool)
            for e in range(num_desc):
                if e == d:
                    continue
                probe = cols[e][groups] * n_vertices + values
                mask &= _membership(self._adj_keys(e), probe)
            group_parts.append(groups[mask])
            value_parts.append(values[mask])
        if not group_parts:
            return _EMPTY_I64, _EMPTY_I64
        groups = np.concatenate(group_parts)
        values = np.concatenate(value_parts)
        if len(group_parts) > 1:
            order = np.argsort(groups, kind="stable")
            groups, values = groups[order], values[order]
        return groups, values

    def _extensions_per_key(
        self, unique_keys: np.ndarray, group_sizes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-distinct-key path used when a triangle index is configured:
        each key is answered with an index lookup when covered, falling back
        to an ordinary multiway intersection."""
        index = self.config.triangle_index
        (idx_a, dir_a, _), (idx_b, dir_b, _) = self._resolved[0], self._resolved[1]
        group_parts: List[np.ndarray] = []
        value_parts: List[np.ndarray] = []
        for gid in range(unique_keys.shape[0]):
            key = unique_keys[gid]
            extension = index.lookup(int(key[0]), int(key[1]), dir_a, dir_b)
            if extension is not None:
                self.profile.record_index_hit()
            else:
                lists = []
                accessed = 0
                for j, (_, direction, _) in enumerate(self._resolved):
                    adj = self._csrs[j].neighbors(int(key[j]))
                    accessed += len(adj)
                    lists.append(adj)
                weight = 1 if self.config.enable_intersection_cache else int(group_sizes[gid])
                self.profile.record_intersection(accessed * weight)
                extension = lists[0] if len(lists) == 1 else intersect_multiway(lists)
            if len(extension):
                group_parts.append(np.full(len(extension), gid, dtype=np.int64))
                value_parts.append(np.asarray(extension, dtype=np.int64))
        if not group_parts:
            return _EMPTY_I64, _EMPTY_I64
        return np.concatenate(group_parts), np.concatenate(value_parts)

    # ------------------------------------------------------------------ #
    def _process(self, frame: np.ndarray) -> Iterator[np.ndarray]:
        n = frame.shape[0]
        key_cols = frame[:, self._key_idx]
        # Sort rows so equal adjacency keys become consecutive, then find the
        # group boundaries (np.unique(axis=0) without the overhead).
        order = np.lexsort(key_cols[:, ::-1].T)
        sorted_frame = frame[order]
        keys = sorted_frame[:, self._key_idx]
        starts, group_sizes, group_of_row = _group_runs(keys)
        unique_keys = keys[starts]
        num_groups = len(starts)
        if self.config.enable_intersection_cache:
            # Grouping generalises the single-entry cache: every duplicate of
            # a distinct key is served from the one computed intersection.
            self.profile.cache_hits += int(n - num_groups)
            self.profile.cache_misses += int(num_groups)
        if self._index_applicable:
            groups, values = self._extensions_per_key(unique_keys, group_sizes)
        else:
            groups, values = self._extensions_vectorized(unique_keys, group_sizes)
        counts_per_group = (
            np.bincount(groups, minlength=num_groups)
            if len(groups)
            else np.zeros(num_groups, dtype=np.int64)
        )
        row_counts = counts_per_group[group_of_row]
        if int(row_counts.sum()) == 0:
            return
        # Expand (prefix x extension): repeat each sorted row by its group's
        # extension count and gather the matching candidate segment.  The
        # expansion is chunked so no output frame grows far beyond
        # ``batch_size`` rows, whatever the per-row fanout.
        segment_starts = np.concatenate(([0], np.cumsum(counts_per_group)[:-1]))
        first = segment_starts[group_of_row]
        for lo, hi in _expansion_segments(row_counts, max(1, self.config.batch_size)):
            counts = row_counts[lo:hi]
            total = int(counts.sum())
            if total == 0:
                continue
            prefix = sorted_frame[np.repeat(np.arange(lo, hi), counts)]
            extension = values[_ragged_positions(first[lo:hi], counts)]
            if self.config.isomorphism:
                mask = np.ones(total, dtype=bool)
                for j in range(frame.shape[1]):
                    mask &= prefix[:, j] != extension
                if not mask.all():
                    prefix, extension = prefix[mask], extension[mask]
            if prefix.shape[0]:
                yield np.concatenate([prefix, extension[:, None]], axis=1)

    def frames(self) -> Iterator[np.ndarray]:
        for frame in self.child.frames():
            self._check_deadline()
            t0 = time.perf_counter()
            for out in self._process(frame):
                self.profile.record_operator_time(self._name, time.perf_counter() - t0)
                yield self._yield_frame(self._name, out)
                self._check_deadline()
                t0 = time.perf_counter()
            self.profile.record_operator_time(self._name, time.perf_counter() - t0)


class BatchHashJoinOperator(BatchOperator):
    """Hash join over columnar batches.

    The build side is concatenated into one frame and sorted by an encoded
    composite join key; every probe batch is then matched with a single
    vectorized binary search and expanded with ragged gathers.  Join keys
    whose packed width would overflow 62 bits fall back to a per-row Python
    hash table (unreachable for realistic graph sizes, kept for safety).
    """

    def __init__(
        self, node: HashJoinNode, build: BatchOperator, probe: BatchOperator, *args, **kwargs
    ) -> None:
        super().__init__(node, *args, **kwargs)
        self.join_node = node
        self.build_child = build
        self.probe_child = probe
        build_key_idx, probe_key_idx, build_payload_idx, self._filter_edges = (
            resolve_hash_join(node)
        )
        self._build_key_idx = np.array(build_key_idx, dtype=np.int64)
        self._probe_key_idx = np.array(probe_key_idx, dtype=np.int64)
        self._build_payload_idx = np.array(build_payload_idx, dtype=np.int64)
        self._name = node.display_name()

    # ------------------------------------------------------------------ #
    def _encode(self, key_cols: np.ndarray) -> np.ndarray:
        codes = key_cols[:, 0].copy()
        n_vertices = max(self.graph.num_vertices, 1)
        for j in range(1, key_cols.shape[1]):
            codes = codes * n_vertices + key_cols[:, j]
        return codes

    def _codes_fit(self) -> bool:
        import math

        n_vertices = max(self.graph.num_vertices, 2)
        return len(self._build_key_idx) * math.log2(n_vertices) < _CODE_BITS

    def _post_filter(self, out: np.ndarray) -> np.ndarray:
        mask = np.ones(out.shape[0], dtype=bool)
        if self.config.isomorphism:
            for i in range(out.shape[1]):
                for j in range(i + 1, out.shape[1]):
                    mask &= out[:, i] != out[:, j]
        n_vertices = self.graph.num_vertices
        for src_idx, dst_idx, label in self._filter_edges:
            keys = self.graph.adjacency_key_array(Direction.FORWARD, label, ANY_LABEL)
            mask &= _membership(keys, out[:, src_idx] * n_vertices + out[:, dst_idx])
        return out if mask.all() else out[mask]

    def frames(self) -> Iterator[np.ndarray]:
        build_frames = list(self.build_child.frames())
        build = (
            np.concatenate(build_frames, axis=0)
            if build_frames
            else np.empty((0, len(self.join_node.build.out_vertices)), dtype=np.int64)
        )
        self.profile.hash_table_entries += build.shape[0]
        if not self._codes_fit():
            yield from self._frames_python_table(build)
            return
        t0 = time.perf_counter()
        build_codes = self._encode(build[:, self._build_key_idx]) if build.shape[0] else _EMPTY_I64
        order = np.argsort(build_codes, kind="stable")
        sorted_codes = build_codes[order]
        sorted_payload = build[order][:, self._build_payload_idx]
        table_starts, table_counts, _ = _group_runs(sorted_codes)
        unique_codes = sorted_codes[table_starts]
        self.profile.record_operator_time(self._name, time.perf_counter() - t0)

        for probe_frame in self.probe_child.frames():
            self._check_deadline()
            t0 = time.perf_counter()
            self.profile.hash_probes += probe_frame.shape[0]
            if len(unique_codes) == 0:
                self.profile.record_operator_time(self._name, time.perf_counter() - t0)
                continue
            probe_codes = self._encode(probe_frame[:, self._probe_key_idx])
            loc = np.searchsorted(unique_codes, probe_codes)
            valid = loc < len(unique_codes)
            hit = np.zeros(len(probe_codes), dtype=bool)
            hit[valid] = unique_codes[loc[valid]] == probe_codes[valid]
            rows = np.flatnonzero(hit)
            if rows.size == 0:
                self.profile.record_operator_time(self._name, time.perf_counter() - t0)
                continue
            matched = loc[rows]
            match_counts = table_counts[matched]
            match_starts = table_starts[matched]
            # Chunk the expansion so heavily duplicated join keys cannot blow
            # up a single output frame (same bound as the E/I operator).
            for lo, hi in _expansion_segments(match_counts, max(1, self.config.batch_size)):
                counts = match_counts[lo:hi]
                probe_expanded = probe_frame[np.repeat(rows[lo:hi], counts)]
                payload = sorted_payload[_ragged_positions(match_starts[lo:hi], counts)]
                out = self._post_filter(np.concatenate([probe_expanded, payload], axis=1))
                if out.shape[0]:
                    self.profile.record_operator_time(self._name, time.perf_counter() - t0)
                    yield self._yield_frame(self._name, out)
                    self._check_deadline()
                    t0 = time.perf_counter()
            self.profile.record_operator_time(self._name, time.perf_counter() - t0)

    def _frames_python_table(self, build: np.ndarray) -> Iterator[np.ndarray]:
        table = {}
        for row in build.tolist():
            key = tuple(row[i] for i in self._build_key_idx)
            table.setdefault(key, []).append([row[i] for i in self._build_payload_idx])
        for probe_frame in self.probe_child.frames():
            self._check_deadline()
            self.profile.hash_probes += probe_frame.shape[0]
            out_rows = []
            for row in probe_frame.tolist():
                payloads = table.get(tuple(row[i] for i in self._probe_key_idx))
                if payloads:
                    out_rows.extend(row + payload for payload in payloads)
            if out_rows:
                out = self._post_filter(np.asarray(out_rows, dtype=np.int64))
                if out.shape[0]:
                    yield self._yield_frame(self._name, out)


def build_batch_operator_tree(
    node: PlanNode,
    graph: Graph,
    profile: ExecutionProfile,
    config: ExecutionConfig,
    is_root: bool = True,
) -> BatchOperator:
    """Recursively wire batch operators for a plan subtree."""
    if isinstance(node, ScanNode):
        return BatchScanOperator(node, graph, profile, config, is_root)
    if isinstance(node, ExtendNode):
        child = build_batch_operator_tree(node.child, graph, profile, config, is_root=False)
        return BatchExtendIntersectOperator(node, child, graph, profile, config, is_root)
    if isinstance(node, HashJoinNode):
        build = build_batch_operator_tree(node.build, graph, profile, config, is_root=False)
        probe = build_batch_operator_tree(node.probe, graph, profile, config, is_root=False)
        return BatchHashJoinOperator(node, build, probe, graph, profile, config, is_root)
    raise PlanError(f"unknown plan node type: {type(node).__name__}")


def execute_plan_vectorized(
    plan: Plan,
    graph: Graph,
    config: Optional[ExecutionConfig] = None,
    collect: bool = False,
):
    """Run ``plan`` with the batch-at-a-time engine.

    Semantics match :func:`repro.executor.pipeline.execute_plan`: deadlines
    are checked per batch, ``output_limit`` truncates the final frame, and
    counting runs never materialise matches.
    """
    from repro.executor.pipeline import ExecutionResult

    config = config or ExecutionConfig(vectorized=True)
    profile = ExecutionProfile()
    root = build_batch_operator_tree(plan.root, graph, profile, config, is_root=True)
    frames: Optional[List[np.ndarray]] = [] if collect else None
    count = 0
    truncated = False
    deadline_exceeded = False
    start = time.perf_counter()
    try:
        for frame in root.frames():
            count += frame.shape[0]
            if collect:
                frames.append(frame)  # type: ignore[union-attr]
            if config.output_limit is not None and count >= config.output_limit:
                overshoot = count - config.output_limit
                if overshoot and collect:
                    frames[-1] = frames[-1][: frame.shape[0] - overshoot]  # type: ignore[index]
                count = config.output_limit
                truncated = True
                break
            if config.deadline is not None and time.monotonic() > config.deadline:
                truncated = True
                deadline_exceeded = True
                break
    except DeadlineExceededError:
        truncated = True
        deadline_exceeded = True
    profile.elapsed_seconds = time.perf_counter() - start
    profile.output_matches = count
    matches: Optional[List[Tuple[int, ...]]] = None
    if collect:
        matches = [tuple(row) for f in frames for row in f.tolist()]  # type: ignore[union-attr]
    return ExecutionResult(
        plan=plan,
        num_matches=count,
        profile=profile,
        matches=matches,
        vertex_order=tuple(plan.root.out_vertices),
        truncated=truncated,
        deadline_exceeded=deadline_exceeded,
    )
