"""Parallel plan execution (Section 7 / Figure 11).

Graphflow parallelises plans by giving every worker a copy of the plan and
letting workers steal ranges of the SCAN operator's edges from a shared queue;
E/I extensions then proceed without coordination.  We reproduce the same
work-partitioning scheme with a morsel queue over scan ranges.  Because CPython
threads share the GIL, measured wall-clock speed-ups for Python-level work are
bounded; the result therefore also reports the *work-based* speed-up (the
maximum over workers of the work each performed, relative to the total), which
is what the paper's near-linear scaling measures on a JVM.

Scan-range morsels are also the natural unit of the vectorized batch engine:
each range executes through :func:`repro.executor.pipeline.execute_plan` with
the caller's config, so ``config.vectorized`` makes every worker process its
morsel as columnar frames (and NumPy kernels release the GIL, improving the
wall-clock scaling story).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.executor.operators import ExecutionConfig
from repro.executor.profile import ExecutionProfile
from repro.graph.graph import Graph
from repro.planner.plan import Plan, ScanNode


@dataclass
class ParallelResult:
    """Outcome of a parallel run."""

    plan: Plan
    num_matches: int
    profile: ExecutionProfile
    num_workers: int
    elapsed_seconds: float
    per_worker_work: List[int] = field(default_factory=list)
    truncated: bool = False
    deadline_exceeded: bool = False
    # Collected rows (``collect=True``): per-morsel frames merged in range
    # order, capped at ``config.output_limit``; None when only counting.
    matches: Optional[List[Tuple[int, ...]]] = None
    vertex_order: Tuple[str, ...] = ()
    # Process mode only: one dict per executed morsel with the worker-side
    # stage timings (queue_wait, deserialize, base_load, overlay_rebuild,
    # execute, started_at) plus worker_id/morsel_index/rows — the raw
    # material the trace merge turns into worker child spans.  Empty for
    # thread-mode runs (stage boundaries are not observable in-process).
    morsel_records: List[dict] = field(default_factory=list)

    @property
    def work_based_speedup(self) -> float:
        """Ideal speed-up implied by the work partition: total work divided by
        the maximum work any single worker performed."""
        total = sum(self.per_worker_work)
        worst = max(self.per_worker_work) if self.per_worker_work else 0
        return total / worst if worst else 1.0

    def matches_as_dicts(self) -> List[dict]:
        """Matches keyed by query-vertex name (only if matches were collected)."""
        if self.matches is None:
            return []
        return [dict(zip(self.vertex_order, m)) for m in self.matches]


def _primary_scan(plan: Plan) -> Optional[ScanNode]:
    """The scan whose edge range the morsel queue partitions: the first scan
    reached by walking probe/child pointers from the root."""
    node = plan.root
    while True:
        children = node.children()
        if not children:
            return node if isinstance(node, ScanNode) else None
        # HashJoinNode.children() returns (build, probe); descend the probe
        # side so the build side is computed fully by every worker exactly
        # once is avoided -- each worker computes the build side over the full
        # edge list, mirroring Graphflow's shared hash-table construction cost.
        node = children[-1]


def execute_parallel(
    plan: Plan,
    graph: Graph,
    num_workers: int = 2,
    morsel_size: int = 1024,
    config: Optional[ExecutionConfig] = None,
    collect: bool = False,
) -> ParallelResult:
    """Execute ``plan`` with ``num_workers`` workers over scan-range morsels.

    With ``collect=True`` each morsel materialises its rows and the merged
    result concatenates them in range order (the iterator engine therefore
    reproduces the serial row order exactly), capped at
    ``config.output_limit``.
    """
    base_config = config or ExecutionConfig()
    scan = _primary_scan(plan)
    if scan is None or num_workers <= 1:
        from repro.executor.pipeline import execute_plan

        start = time.perf_counter()
        result = execute_plan(plan, graph, config=base_config, collect=collect)
        elapsed = time.perf_counter() - start
        return ParallelResult(
            plan=plan,
            num_matches=result.num_matches,
            profile=result.profile,
            num_workers=1,
            elapsed_seconds=elapsed,
            per_worker_work=[result.profile.intersection_cost + result.num_matches],
            truncated=result.truncated,
            deadline_exceeded=result.deadline_exceeded,
            matches=result.matches,
            vertex_order=tuple(result.vertex_order),
        )

    edge = scan.edge
    total_edges = graph.count_edges(
        edge_label=edge.label,
        src_label=scan.sub_query.vertex_label(edge.src),
        dst_label=scan.sub_query.vertex_label(edge.dst),
    )
    ranges: List[Tuple[int, int]] = [
        (start, min(start + morsel_size, total_edges))
        for start in range(0, total_edges, morsel_size)
    ] or [(0, 0)]

    def run_range(scan_range: Tuple[int, int]):
        # A global output limit cannot be partitioned across morsels exactly,
        # but it still bounds each worker: no single range may contribute more
        # than the limit, and the merged count is capped below.  Every other
        # knob (intersection cache, isomorphism, vectorized batching, ...)
        # carries over from the caller's config unchanged, so each morsel runs
        # through the same engine the serial path would use.
        from repro.executor.pipeline import execute_plan

        worker_config = replace(
            base_config,
            scan_range=scan_range,
            scan_range_vertices=tuple(scan.out_vertices),
        )
        result = execute_plan(plan, graph, config=worker_config, collect=collect)
        range_truncated = result.truncated and not result.deadline_exceeded
        return (
            result.num_matches,
            result.profile,
            result.deadline_exceeded,
            range_truncated,
            result.matches,
            tuple(result.vertex_order),
        )

    start_time = time.perf_counter()
    per_worker_work = [0] * num_workers
    total = 0
    merged = ExecutionProfile()
    deadline_exceeded = False
    truncated = False
    matches: Optional[List[Tuple[int, ...]]] = [] if collect else None
    vertex_order: Tuple[str, ...] = ()
    with ThreadPoolExecutor(max_workers=num_workers) as pool:
        results = list(pool.map(run_range, ranges))
    for i, (count, profile, exceeded, range_truncated, rows, v_order) in enumerate(results):
        total += count
        merged = merged.merge(profile)
        per_worker_work[i % num_workers] += profile.intersection_cost + count
        deadline_exceeded = deadline_exceeded or exceeded
        truncated = truncated or exceeded or range_truncated
        if v_order:
            vertex_order = v_order
        if matches is not None and rows:
            # pool.map preserves input order, so frames merge in range order.
            matches.extend(rows)
    if base_config.output_limit is not None and total > base_config.output_limit:
        total = base_config.output_limit
        truncated = True
    if matches is not None and base_config.output_limit is not None:
        matches = matches[: base_config.output_limit]
    elapsed = time.perf_counter() - start_time
    merged.elapsed_seconds = elapsed
    merged.output_matches = total
    # The fold above merged one profile per *morsel*; the meaningful
    # busy-vs-wall normalisation factor is the thread count.
    merged.workers = num_workers
    return ParallelResult(
        plan=plan,
        num_matches=total,
        profile=merged,
        num_workers=num_workers,
        elapsed_seconds=elapsed,
        per_worker_work=per_worker_work,
        truncated=truncated,
        deadline_exceeded=deadline_exceeded,
        matches=matches,
        vertex_order=vertex_order,
    )
