"""Runtime profiling of plan execution.

The profile records exactly the quantities the paper reports alongside
runtimes in Tables 4-6: the *i-cost* actually incurred (sizes of all adjacency
lists accessed, skipping lists served from the intersection cache), the number
of intermediate partial matches produced by non-root operators, and
intersection-cache hit counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Dict, Tuple


@dataclass
class ExecutionProfile:
    """Counters accumulated while a plan runs."""

    #: Multi-worker summary fields assigned by the parallel coordinators
    #: after merging per-morsel profiles.  The trace merge (``api.py``) and
    #: :meth:`as_dict` both iterate this tuple, so the two surfaces can
    #: never drift apart.
    WORKER_SUMMARY_FIELDS: ClassVar[Tuple[str, ...]] = (
        "skew",
        "critical_path_seconds",
    )

    intersection_cost: int = 0
    intermediate_matches: int = 0
    output_matches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    index_hits: int = 0
    hash_table_entries: int = 0
    hash_probes: int = 0
    batches: int = 0
    # Wall-clock duration of the run.  Under `merge` this takes the max of
    # the two sides: parallel morsels overlap in time, so their wall clocks
    # must not be added.
    elapsed_seconds: float = 0.0
    per_operator: Dict[str, Dict[str, int]] = field(default_factory=dict)
    # Busy seconds spent inside each operator's own frame processing
    # (vectorized mode only; the iterator pipeline interleaves operators in
    # one generator chain, so per-operator time is not separable there).
    # Unlike `elapsed_seconds` this is a *work* quantity: `merge` sums it, so
    # after a parallel run an operator's busy seconds can legitimately exceed
    # `elapsed_seconds` — compare against `elapsed_seconds * workers`.
    operator_seconds: Dict[str, float] = field(default_factory=dict)
    # Number of worker profiles folded into this one (1 for a serial run).
    # The normalisation factor between the summed busy-second fields and the
    # max-ed wall-clock field.
    workers: int = 1
    # Per-query busy skew across active workers: max(busy) * n / sum(busy),
    # 1.0 for a perfectly balanced (or serial) run.  Assigned by the process
    # pool coordinator after merging; `merge` leaves it at the default.
    skew: float = 1.0
    # The busiest worker's total seconds on this query (setup + execute) —
    # the wall-clock lower bound the morsel partition allows.  0.0 for
    # serial runs.
    critical_path_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    def record_intersection(self, accessed_list_sizes: int) -> None:
        self.intersection_cost += int(accessed_list_sizes)

    def record_cache_hit(self) -> None:
        self.cache_hits += 1

    def record_cache_miss(self) -> None:
        self.cache_misses += 1

    def record_index_hit(self) -> None:
        """An extension set was served from a precomputed triangle index."""
        self.index_hits += 1

    def record_intermediate(self, count: int = 1) -> None:
        self.intermediate_matches += count

    def record_batch(self) -> None:
        """One columnar frame passed between operators (vectorized mode)."""
        self.batches += 1

    def record_operator(self, name: str, **counters: int) -> None:
        entry = self.per_operator.setdefault(name, {})
        for key, value in counters.items():
            entry[key] = entry.get(key, 0) + int(value)

    def record_operator_time(self, name: str, seconds: float) -> None:
        self.operator_seconds[name] = self.operator_seconds.get(name, 0.0) + seconds

    # ------------------------------------------------------------------ #
    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def busy_seconds(self) -> float:
        """Total operator busy time (summed across workers and operators)."""
        return sum(self.operator_seconds.values())

    def merge(self, other: "ExecutionProfile") -> "ExecutionProfile":
        """Combine two profiles (used by the parallel executor).

        Merge semantics are field-kind dependent and deliberate:

        * **work** fields (counters, `per_operator`, `operator_seconds`) are
          *summed* — two morsels each reading N list elements did 2N work;
        * **wall-clock** (`elapsed_seconds`) takes the *max* — morsels run
          concurrently, so their wall clocks overlap rather than add.

        This means per-operator busy seconds are CPU-seconds across all
        workers, not wall time: divide by `workers` for a per-worker mean, or
        compare against `elapsed_seconds * workers` for utilisation.
        """
        merged = ExecutionProfile(
            intersection_cost=self.intersection_cost + other.intersection_cost,
            intermediate_matches=self.intermediate_matches + other.intermediate_matches,
            output_matches=self.output_matches + other.output_matches,
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
            index_hits=self.index_hits + other.index_hits,
            hash_table_entries=self.hash_table_entries + other.hash_table_entries,
            hash_probes=self.hash_probes + other.hash_probes,
            batches=self.batches + other.batches,
            elapsed_seconds=max(self.elapsed_seconds, other.elapsed_seconds),
            workers=self.workers + other.workers,
        )
        for source in (self.per_operator, other.per_operator):
            for name, counters in source.items():
                entry = merged.per_operator.setdefault(name, {})
                for key, value in counters.items():
                    entry[key] = entry.get(key, 0) + value
        for source in (self.operator_seconds, other.operator_seconds):
            for name, seconds in source.items():
                merged.operator_seconds[name] = merged.operator_seconds.get(name, 0.0) + seconds
        return merged

    def as_dict(self) -> Dict[str, float]:
        out = {
            "i_cost": self.intersection_cost,
            "intermediate_matches": self.intermediate_matches,
            "output_matches": self.output_matches,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "index_hits": self.index_hits,
            "hash_table_entries": self.hash_table_entries,
            "hash_probes": self.hash_probes,
            "batches": self.batches,
            "elapsed_seconds": self.elapsed_seconds,
            "busy_seconds": self.busy_seconds,
            "workers": self.workers,
        }
        for name in self.WORKER_SUMMARY_FIELDS:
            out[name] = getattr(self, name)
        return out

    def __repr__(self) -> str:
        return (
            f"ExecutionProfile(i_cost={self.intersection_cost}, "
            f"intermediate={self.intermediate_matches}, output={self.output_matches}, "
            f"cache_hits={self.cache_hits}, elapsed={self.elapsed_seconds:.3f}s)"
        )
