"""Volcano-style plan execution: SCAN, EXTEND/INTERSECT, HASH-JOIN, SINK
operators, runtime profiling (i-cost, intermediate matches, cache hits),
adaptive query-vertex-ordering selection, parallel execution, and a
vectorized batch-at-a-time engine exchanging columnar morsels."""

from repro.executor.profile import ExecutionProfile
from repro.executor.pipeline import execute_plan, count_matches
from repro.executor.adaptive import execute_adaptive
from repro.executor.parallel import execute_parallel
from repro.executor.multiprocess import MorselProcessPool
from repro.executor.vectorized import execute_plan_vectorized

__all__ = [
    "ExecutionProfile",
    "MorselProcessPool",
    "execute_plan",
    "count_matches",
    "execute_adaptive",
    "execute_parallel",
    "execute_plan_vectorized",
]
