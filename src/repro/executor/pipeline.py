"""Plan execution entry points."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import DeadlineExceededError
from repro.executor.operators import ExecutionConfig, build_operator_tree
from repro.executor.profile import ExecutionProfile
from repro.graph.graph import Graph
from repro.planner.plan import Plan


@dataclass
class ExecutionResult:
    """The outcome of running one plan on one graph."""

    plan: Plan
    num_matches: int
    profile: ExecutionProfile
    matches: Optional[List[Tuple[int, ...]]] = None
    vertex_order: Tuple[str, ...] = ()
    truncated: bool = False
    deadline_exceeded: bool = False

    @property
    def elapsed_seconds(self) -> float:
        return self.profile.elapsed_seconds

    def matches_as_dicts(self) -> List[dict]:
        """Matches keyed by query-vertex name (only if matches were collected)."""
        if self.matches is None:
            return []
        return [dict(zip(self.vertex_order, m)) for m in self.matches]

    def __repr__(self) -> str:
        return (
            f"ExecutionResult(query={self.plan.query.name!r}, matches={self.num_matches}, "
            f"i_cost={self.profile.intersection_cost}, elapsed={self.elapsed_seconds:.3f}s)"
        )


def execute_plan(
    plan: Plan,
    graph: Graph,
    config: Optional[ExecutionConfig] = None,
    collect: bool = False,
) -> ExecutionResult:
    """Run ``plan`` on ``graph``.

    Parameters
    ----------
    config:
        Execution knobs (intersection cache, isomorphism semantics, scan range,
        output limit).  A default config is used when omitted.  When
        ``config.vectorized`` is set the batch-at-a-time engine of
        :mod:`repro.executor.vectorized` runs instead of the tuple-at-a-time
        pipeline (identical match counts; match order may differ).
    collect:
        When True the matches themselves are materialised (tuples of vertex ids
        in the plan root's ``out_vertices`` order); otherwise only counted.
    """
    config = config or ExecutionConfig()
    if config.vectorized:
        from repro.executor.vectorized import execute_plan_vectorized

        return execute_plan_vectorized(plan, graph, config=config, collect=collect)
    profile = ExecutionProfile()
    root = build_operator_tree(plan.root, graph, profile, config, is_root=True)
    matches: Optional[List[Tuple[int, ...]]] = [] if collect else None
    count = 0
    truncated = False
    deadline_exceeded = False
    start = time.perf_counter()
    try:
        for t in root:
            count += 1
            if collect:
                matches.append(t)  # type: ignore[union-attr]
            if config.output_limit is not None and count >= config.output_limit:
                truncated = True
                break
            if config.deadline is not None and time.monotonic() > config.deadline:
                truncated = True
                deadline_exceeded = True
                break
    except DeadlineExceededError:
        truncated = True
        deadline_exceeded = True
    profile.elapsed_seconds = time.perf_counter() - start
    # The root operator's own accounting may not have run if we broke early.
    profile.output_matches = count
    return ExecutionResult(
        plan=plan,
        num_matches=count,
        profile=profile,
        matches=matches,
        vertex_order=tuple(plan.root.out_vertices),
        truncated=truncated,
        deadline_exceeded=deadline_exceeded,
    )


def count_matches(plan: Plan, graph: Graph, config: Optional[ExecutionConfig] = None) -> int:
    """Convenience wrapper returning only the number of matches."""
    return execute_plan(plan, graph, config=config, collect=False).num_matches
