"""An independence-assumption cardinality estimator (the PostgreSQL baseline
of Appendix B).

The paper compares its catalogue against PostgreSQL's estimates for the same
subgraph queries written as self-joins of an ``Edge(from, to)`` relation.
PostgreSQL's estimator combines per-relation statistics with attribute
independence; the estimator below follows the same textbook (System-R style)
model: the size of a join is the product of the input sizes divided by, for
each join attribute, the larger of the two distinct-value counts.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.graph.graph import Graph
from repro.query.query_graph import QueryGraph


class IndependenceEstimator:
    """System-R / PostgreSQL-style join cardinality estimation."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self._edge_count_by_label: Dict[Optional[int], int] = {}
        for label in graph.edge_label_values:
            self._edge_count_by_label[int(label)] = int(np.sum(graph.edge_labels == label))
        self._edge_count_by_label[None] = graph.num_edges
        # Distinct-value statistics of the from / to columns.
        self._distinct_src = int(len(np.unique(graph.edge_src))) if graph.num_edges else 0
        self._distinct_dst = int(len(np.unique(graph.edge_dst))) if graph.num_edges else 0

    def edge_count(self, label: Optional[int]) -> float:
        return float(self._edge_count_by_label.get(label, self.graph.num_edges))

    def estimate(self, query: QueryGraph) -> float:
        """Estimated number of matches of ``query``.

        Each query edge contributes its relation size; each query vertex of
        degree ``d`` joins ``d`` relation columns, contributing a division by
        ``max(distinct values)`` for each of the ``d - 1`` equi-join
        predicates on that vertex (attribute-independence assumption).
        """
        if query.num_edges == 0:
            return 0.0
        estimate = 1.0
        for e in query.edges:
            estimate *= self.edge_count(e.label)
        for v in query.vertices:
            incident = query.edges_touching(v)
            degree = len(incident)
            if degree <= 1:
                continue
            distinct_counts = []
            for e in incident:
                distinct_counts.append(
                    self._distinct_src if e.src == v else self._distinct_dst
                )
            # One selectivity factor per additional predicate on this vertex.
            for extra in range(degree - 1):
                denominator = max(distinct_counts[extra], distinct_counts[extra + 1], 1)
                estimate /= denominator
        return float(estimate)
