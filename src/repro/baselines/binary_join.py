"""A binary-join-only planner (the BJ plans of the paper).

BJ plans use only SCAN leaves and HASH-JOIN internal nodes; under the
projection constraint every node's sub-query is the induced projection of the
query onto its vertex set and the children's edges must cover it.  As the
paper notes, this means cyclic cores such as triangles have *no* BJ plan in
the space (the open-triangle-then-close plans of traditional optimizers are
deliberately excluded); acyclic and sparsely-cyclic queries do, and for those
queries the planner performs a standard dynamic program over join orders
(left-deep and bushy), costed with the same cardinality estimates as the main
optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional

from repro.errors import OptimizerError
from repro.planner.cost_model import CostModel
from repro.planner.plan import Plan, PlanNode, make_hash_join, make_scan
from repro.query.query_graph import QueryGraph


@dataclass
class _Candidate:
    root: PlanNode
    cost: float


class BinaryJoinPlanner:
    """DP over hash-join orders only."""

    def __init__(self, cost_model: CostModel) -> None:
        self.cost_model = cost_model

    def optimize(self, query: QueryGraph) -> Plan:
        plan = self.try_optimize(query)
        if plan is None:
            raise OptimizerError(
                f"query {query.name} has no binary-join-only plan under the projection constraint"
            )
        return plan

    def try_optimize(self, query: QueryGraph) -> Optional[Plan]:
        best: Dict[FrozenSet[str], _Candidate] = {}
        for edge in query.edges:
            vset = frozenset((edge.src, edge.dst))
            scan = make_scan(query, edge)
            cost = self.cost_model.scan_cost(scan)
            existing = best.get(vset)
            if existing is None or cost < existing.cost:
                best[vset] = _Candidate(root=scan, cost=cost)

        vertices = list(query.vertices)
        for k in range(3, query.num_vertices + 1):
            for subset in combinations(vertices, k):
                vset = frozenset(subset)
                if not query.connected_projection_exists(subset):
                    continue
                sub = query.project(subset)
                sub_edges = {(e.src, e.dst, e.label) for e in sub.edges}
                winner: Optional[_Candidate] = None
                stored = [s for s in best if s < vset and len(s) >= 2]
                for i, left in enumerate(stored):
                    for right in stored[i:]:
                        if left | right != vset or not (left & right):
                            continue
                        covered = {
                            (e.src, e.dst, e.label)
                            for part in (left, right)
                            for e in query.project(part).edges
                        }
                        if covered != sub_edges:
                            continue
                        left_cand, right_cand = best[left], best[right]
                        left_card = self.cost_model.cardinality(query.project(left))
                        right_card = self.cost_model.cardinality(query.project(right))
                        build, probe = (
                            (left_cand, right_cand)
                            if left_card <= right_card
                            else (right_cand, left_cand)
                        )
                        try:
                            node = make_hash_join(sub, build.root, probe.root)
                        except Exception:
                            continue
                        cost = (
                            left_cand.cost
                            + right_cand.cost
                            + self.cost_model.hash_join_cost(node)
                        )
                        if winner is None or cost < winner.cost:
                            winner = _Candidate(root=node, cost=cost)
                if winner is not None:
                    best[vset] = winner

        full = best.get(frozenset(query.vertices))
        if full is None:
            return None
        return Plan(
            query=query,
            root=full.root,
            estimated_cost=full.cost,
            estimated_cardinality=self.cost_model.cardinality(query),
            label="binary-join-only",
        )

    # ------------------------------------------------------------------ #
    def enumerate_plans(self, query: QueryGraph, max_plans: int = 500) -> List[Plan]:
        """All BJ plans of the query (for the B(n) points of the spectrums)."""
        from repro.planner.full_enumeration import PlanSpaceEnumerator

        enumerator = PlanSpaceEnumerator(query, enable_binary_joins=True)
        plans = enumerator.all_plans()
        return [p for p in plans if p.is_binary_join_only][:max_plans]
