"""Baseline systems the paper compares against, re-implemented on top of the
same graph substrate and executor so that comparisons isolate *plan choice*:

* :mod:`repro.baselines.emptyheaded` — GHD-based planner (EmptyHeaded),
* :mod:`repro.baselines.binary_join` — binary-join-only planner,
* :mod:`repro.baselines.generic_join` — BiGJoin / LogicBlox-style orderings,
* :mod:`repro.baselines.cfl` — simplified CFL subgraph matcher,
* :mod:`repro.baselines.naive_matcher` — Neo4j stand-in (no sorted intersections),
* :mod:`repro.baselines.postgres_estimator` — independence-assumption estimator.
"""

from repro.baselines.emptyheaded import EmptyHeadedPlanner
from repro.baselines.binary_join import BinaryJoinPlanner
from repro.baselines.generic_join import arbitrary_ordering_plan, heuristic_ordering_plan
from repro.baselines.cfl import CFLMatcher
from repro.baselines.naive_matcher import NaiveMatcher
from repro.baselines.postgres_estimator import IndependenceEstimator

__all__ = [
    "EmptyHeadedPlanner",
    "BinaryJoinPlanner",
    "arbitrary_ordering_plan",
    "heuristic_ordering_plan",
    "CFLMatcher",
    "NaiveMatcher",
    "IndependenceEstimator",
]
