"""A naive binary-join / backtracking engine standing in for Neo4j (Appendix D).

The paper's Neo4j comparison illustrates how much slower a traditional
edge-at-a-time engine is on cyclic queries when it (i) uses only binary joins
with no multiway intersections, and (ii) stores adjacency as unsorted linked
structures so that closing edges are verified by linear scans.  This stand-in
reproduces both properties: it extends partial matches one *query edge* at a
time in an arbitrary (lexicographic) order and checks every closing edge by a
linear membership scan over an unsorted copy of the adjacency list.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.graph.graph import Direction, Graph
from repro.query.query_graph import QueryEdge, QueryGraph


@dataclass
class NaiveResult:
    num_matches: int
    elapsed_seconds: float
    truncated: bool
    edge_order: Tuple[Tuple[str, str], ...]


class NaiveMatcher:
    """Edge-at-a-time matcher with linear-scan edge checks."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        # Unsorted adjacency copies (python lists) to mimic pointer-chasing
        # storage; lookups are linear scans.
        self._fwd: Dict[int, List[Tuple[int, int]]] = {}
        for s, d, l in graph.iter_edges():
            self._fwd.setdefault(s, []).append((d, l))

    def _has_edge_linear(self, src: int, dst: int, label: Optional[int]) -> bool:
        for d, l in self._fwd.get(src, ()):  # linear scan on purpose
            if d == dst and (label is None or l == label):
                return True
        return False

    def _edge_order(self, query: QueryGraph) -> List[QueryEdge]:
        """Left-deep, lexicographic join order over the query edges, keeping
        each next edge connected to the already-joined prefix."""
        edges = sorted(query.edges, key=lambda e: (e.src, e.dst))
        ordered: List[QueryEdge] = [edges[0]]
        matched = {edges[0].src, edges[0].dst}
        remaining = edges[1:]
        while remaining:
            pick = None
            for e in remaining:
                if e.src in matched or e.dst in matched:
                    pick = e
                    break
            if pick is None:
                pick = remaining[0]
            ordered.append(pick)
            matched.update((pick.src, pick.dst))
            remaining.remove(pick)
        return ordered

    def count_matches(
        self, query: QueryGraph, output_limit: Optional[int] = None, time_limit: Optional[float] = None
    ) -> NaiveResult:
        start = time.perf_counter()
        order = self._edge_order(query)
        count = 0
        truncated = False

        def expired() -> bool:
            return time_limit is not None and (time.perf_counter() - start) > time_limit

        def backtrack(position: int, assignment: Dict[str, int]) -> None:
            nonlocal count, truncated
            if truncated or expired():
                truncated = truncated or expired()
                return
            if position == len(order):
                count += 1
                if output_limit is not None and count >= output_limit:
                    truncated = True
                return
            edge = order[position]
            src_known = edge.src in assignment
            dst_known = edge.dst in assignment
            if src_known and dst_known:
                if self._has_edge_linear(assignment[edge.src], assignment[edge.dst], edge.label):
                    backtrack(position + 1, assignment)
                return
            if src_known:
                src_id = assignment[edge.src]
                for d, l in self._fwd.get(src_id, ()):
                    if edge.label is not None and l != edge.label:
                        continue
                    dst_label = query.vertex_label(edge.dst)
                    if dst_label is not None and self.graph.vertex_label(d) != dst_label:
                        continue
                    assignment[edge.dst] = d
                    backtrack(position + 1, assignment)
                    del assignment[edge.dst]
                    if truncated:
                        return
                return
            if dst_known:
                dst_id = assignment[edge.dst]
                # No backward index: scan every edge (Neo4j would chase
                # incoming relationship pointers; a full scan is our stand-in
                # for the slower access path).
                for s, lists in self._fwd.items():
                    for d, l in lists:
                        if d != dst_id:
                            continue
                        if edge.label is not None and l != edge.label:
                            continue
                        src_label = query.vertex_label(edge.src)
                        if src_label is not None and self.graph.vertex_label(s) != src_label:
                            continue
                        assignment[edge.src] = s
                        backtrack(position + 1, assignment)
                        del assignment[edge.src]
                        if truncated:
                            return
                return
            # Neither endpoint known: scan all edges.
            for s, lists in self._fwd.items():
                for d, l in lists:
                    if edge.label is not None and l != edge.label:
                        continue
                    assignment[edge.src] = s
                    assignment[edge.dst] = d
                    backtrack(position + 1, assignment)
                    del assignment[edge.src]
                    del assignment[edge.dst]
                    if truncated:
                        return

        backtrack(0, {})
        return NaiveResult(
            num_matches=count,
            elapsed_seconds=time.perf_counter() - start,
            truncated=truncated,
            edge_order=tuple((e.src, e.dst) for e in order),
        )
