"""Leapfrog TrieJoin (LFTJ) style worst-case optimal join baseline.

LFTJ [40] is the other widely deployed WCO join algorithm (it powers
LogicBlox).  Like Generic Join it matches queries one attribute (query vertex)
at a time, but instead of materializing each adjacency list and intersecting
them pairwise, it keeps one *sorted iterator* per participating adjacency list
and interleaves ``seek`` operations: the iterators repeatedly leapfrog over
each other until they all point at the same vertex id, which is then emitted.

The paper discusses LFTJ in related work (Section 9) and notes that the only
published guidance for choosing its query-vertex ordering is the
distinct-value heuristic of Chu et al. [11].  This module implements

* :func:`leapfrog_intersect` — the k-way leapfrog intersection over sorted
  arrays (with galloping/exponential search seeks),
* :class:`LeapfrogTrieJoin` — a query-vertex-at-a-time matcher built on it,
  with either a caller-supplied ordering or the distinct-value heuristic,

so the evaluation harness can compare the paper's cost-based orderings against
an LFTJ-style baseline on equal terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidQueryError, PlanError
from repro.graph.graph import Direction, Graph
from repro.planner.descriptors import AdjListDescriptor
from repro.planner.qvo import enumerate_orderings
from repro.query.query_graph import QueryGraph


# --------------------------------------------------------------------------- #
# the leapfrog intersection primitive
# --------------------------------------------------------------------------- #
def _gallop(array: np.ndarray, start: int, target: int) -> int:
    """Smallest index ``>= start`` whose value is ``>= target``.

    Uses exponential (galloping) search from ``start`` followed by a binary
    search, which is the seek primitive LFTJ relies on for its complexity
    guarantees.
    """
    n = len(array)
    if start >= n:
        return n
    if array[start] >= target:
        return start
    step = 1
    low = start
    high = start + step
    while high < n and array[high] < target:
        low = high
        step *= 2
        high = start + step
    high = min(high, n)
    return low + int(np.searchsorted(array[low:high], target, side="left"))


def leapfrog_intersect(lists: Sequence[np.ndarray]) -> List[int]:
    """K-way intersection of sorted, duplicate-free arrays via leapfrogging.

    Returns the (sorted) common values as a Python list.  This is the
    reference LFTJ inner loop; the production executor uses the vectorised
    kernels in :mod:`repro.graph.intersect`, and the two are cross-checked in
    the test suite.
    """
    if not lists:
        return []
    if any(len(lst) == 0 for lst in lists):
        return []
    arrays = sorted((np.asarray(lst) for lst in lists), key=len)
    k = len(arrays)
    if k == 1:
        return [int(x) for x in arrays[0]]
    positions = [0] * k
    output: List[int] = []
    # Start leapfrogging from the largest current key.
    current = max(int(arr[0]) for arr in arrays)
    index = 0
    while True:
        arr = arrays[index]
        pos = _gallop(arr, positions[index], current)
        if pos >= len(arr):
            return output
        positions[index] = pos
        value = int(arr[pos])
        if value == current:
            # This iterator agrees; check whether all of them do by walking
            # the ring once without anyone overshooting.
            if all(
                positions[i] < len(arrays[i]) and int(arrays[i][positions[i]]) == current
                for i in range(k)
            ):
                output.append(current)
                positions[index] += 1
                if positions[index] >= len(arr):
                    return output
                current = int(arr[positions[index]])
            index = (index + 1) % k
        else:
            current = value
            index = (index + 1) % k


# --------------------------------------------------------------------------- #
# the matcher
# --------------------------------------------------------------------------- #
@dataclass
class LeapfrogStatistics:
    """Counters mirroring the executor's profile for comparison purposes."""

    seeks: int = 0
    emitted: int = 0
    intermediate: int = 0
    list_elements_touched: int = 0


@dataclass
class LeapfrogResult:
    query: QueryGraph
    ordering: Tuple[str, ...]
    num_matches: int
    stats: LeapfrogStatistics = field(default_factory=LeapfrogStatistics)

    def __repr__(self) -> str:
        return (
            f"LeapfrogResult(query={self.query.name!r}, matches={self.num_matches}, "
            f"ordering={''.join(self.ordering)})"
        )


class LeapfrogTrieJoin:
    """Query-vertex-at-a-time matcher using leapfrog intersections.

    Parameters
    ----------
    graph:
        The data graph.
    output_limit:
        Optional cap on the number of matches (Appendix C-style limits).
    """

    def __init__(self, graph: Graph, output_limit: Optional[int] = None) -> None:
        self.graph = graph
        self.output_limit = output_limit

    # ------------------------------------------------------------------ #
    # ordering selection
    # ------------------------------------------------------------------ #
    def distinct_value_ordering(self, query: QueryGraph) -> Tuple[str, ...]:
        """The heuristic of Chu et al. [11]: order query vertices by the number
        of distinct data vertices that can bind to them (most selective first),
        restricted to connected-prefix orderings."""
        selectivity: Dict[str, int] = {}
        for vertex in query.vertices:
            label = query.vertex_label(vertex)
            candidates = self.graph.vertices_with_label(label)
            selectivity[vertex] = len(candidates)
        best: Optional[Tuple[str, ...]] = None
        best_key: Optional[Tuple[int, ...]] = None
        for ordering in enumerate_orderings(query):
            key = tuple(selectivity[v] for v in ordering)
            if best_key is None or key < best_key:
                best, best_key = ordering, key
        if best is None:
            raise InvalidQueryError(f"query {query.name} admits no connected ordering")
        return best

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def _descriptors_per_level(
        self, query: QueryGraph, ordering: Sequence[str]
    ) -> List[List[AdjListDescriptor]]:
        per_level: List[List[AdjListDescriptor]] = []
        for k in range(2, len(ordering)):
            target = ordering[k]
            prior = set(ordering[:k])
            descriptors = [
                AdjListDescriptor.for_extension(edge, target)
                for edge in query.edges_touching(target)
                if edge.other(target) in prior
            ]
            if not descriptors:
                raise PlanError(f"ordering {ordering} has a disconnected prefix at {target}")
            per_level.append(descriptors)
        return per_level

    def count(
        self, query: QueryGraph, ordering: Optional[Sequence[str]] = None
    ) -> LeapfrogResult:
        """Count the matches of ``query`` (homomorphism semantics)."""
        if ordering is None:
            ordering = self.distinct_value_ordering(query)
        ordering = tuple(ordering)
        if set(ordering) != set(query.vertices):
            raise InvalidQueryError(
                f"ordering {ordering} is not a permutation of the query vertices"
            )
        stats = LeapfrogStatistics()
        first_edges = query.edges_between(ordering[0], ordering[1])
        if not first_edges:
            raise PlanError(f"the first two vertices of {ordering} share no query edge")
        per_level = self._descriptors_per_level(query, ordering)
        index_of = {v: i for i, v in enumerate(ordering)}
        count = 0

        scan_edge = first_edges[0]
        reversed_scan = scan_edge.src != ordering[0]
        extra_first_edges = [e for e in first_edges if e is not scan_edge]

        def extend(level: int, binding: List[int]) -> int:
            nonlocal count
            if level == len(per_level):
                return 1
            descriptors = per_level[level]
            target_label = query.vertex_label(ordering[level + 2])
            lists = []
            for descriptor in descriptors:
                source = binding[index_of[descriptor.from_vertex]]
                adjacency = self.graph.neighbors(
                    source, descriptor.direction, descriptor.edge_label, target_label
                )
                stats.list_elements_touched += len(adjacency)
                lists.append(adjacency)
            stats.seeks += len(lists)
            extensions = leapfrog_intersect(lists)
            stats.intermediate += len(extensions)
            produced = 0
            for vertex in extensions:
                binding.append(vertex)
                produced += extend(level + 1, binding)
                binding.pop()
                if self.output_limit is not None and count + produced >= self.output_limit:
                    break
            return produced

        src_label = query.vertex_label(scan_edge.src)
        dst_label = query.vertex_label(scan_edge.dst)
        sources, destinations = self.graph.edges(
            edge_label=scan_edge.label, src_label=src_label, dst_label=dst_label
        )
        for u, v in zip(sources, destinations):
            u, v = int(u), int(v)
            ok = True
            for extra in extra_first_edges:
                s, d = (u, v) if extra.src == scan_edge.src else (v, u)
                if not self.graph.has_edge(s, d, extra.label):
                    ok = False
                    break
            if not ok:
                continue
            binding = [v, u] if reversed_scan else [u, v]
            count += extend(0, binding)
            if self.output_limit is not None and count >= self.output_limit:
                count = min(count, self.output_limit)
                break
        stats.emitted = count
        return LeapfrogResult(
            query=query, ordering=ordering, num_matches=count, stats=stats
        )


__all__ = ["LeapfrogTrieJoin", "LeapfrogResult", "LeapfrogStatistics", "leapfrog_intersect"]
