"""Generalized hypertree decompositions (GHDs) and fractional edge covers.

EmptyHeaded's plan for a query is a minimum-width GHD: a join tree whose nodes
("bags") are sub-queries evaluated with Generic Join and whose results are
combined with binary joins.  The width of a GHD is the maximum, over its bags,
of the bag's minimum fractional edge cover (the exponent of its AGM bound).

We enumerate decompositions with one or two bags, which covers every query in
the paper's workload (Q8 = two triangles, Q10 = diamond + triangle, ...); the
general (arbitrary-bag-count) construction is not needed for the evaluation
and is documented as a limitation in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.query.query_graph import QueryGraph


def fractional_edge_cover(query: QueryGraph) -> float:
    """Minimum fractional edge cover number (the AGM exponent) of the query.

    Solved as a small linear program: minimise the sum of edge weights subject
    to every query vertex being covered by total weight at least 1.
    """
    vertices = list(query.vertices)
    edges = list(query.edges)
    if not edges:
        return 0.0
    # Constraint matrix: -sum of weights of edges touching v <= -1.
    a_ub = np.zeros((len(vertices), len(edges)))
    for j, e in enumerate(edges):
        for i, v in enumerate(vertices):
            if e.touches(v):
                a_ub[i, j] = -1.0
    b_ub = -np.ones(len(vertices))
    c = np.ones(len(edges))
    result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=[(0, None)] * len(edges), method="highs")
    if not result.success:  # pragma: no cover - defensive
        return float(len(vertices)) / 2.0
    return float(result.fun)


@dataclass
class GHDBag:
    """One bag (sub-query) of a decomposition."""

    vertices: Tuple[str, ...]
    sub_query: QueryGraph
    width: float


@dataclass
class GHD:
    """A (one- or two-bag) generalized hypertree decomposition."""

    query: QueryGraph
    bags: List[GHDBag] = field(default_factory=list)

    @property
    def width(self) -> float:
        return max(bag.width for bag in self.bags)

    @property
    def num_bags(self) -> int:
        return len(self.bags)

    def shared_vertices(self) -> Tuple[str, ...]:
        if len(self.bags) < 2:
            return ()
        return tuple(sorted(set(self.bags[0].vertices) & set(self.bags[1].vertices)))

    def describe(self) -> str:
        parts = [
            f"bag{i}({','.join(bag.vertices)}, width={bag.width:.2f})"
            for i, bag in enumerate(self.bags)
        ]
        return f"GHD[width={self.width:.2f}]: " + " JOIN ".join(parts)


def _bag(query: QueryGraph, vertices: Tuple[str, ...]) -> Optional[GHDBag]:
    if not query.connected_projection_exists(vertices):
        return None
    sub = query.project(vertices)
    return GHDBag(vertices=tuple(vertices), sub_query=sub, width=fractional_edge_cover(sub))


def enumerate_ghds(query: QueryGraph, max_bags: int = 2) -> List[GHD]:
    """All 1- and 2-bag decompositions whose bags cover every query edge and
    that satisfy the connectedness (running-intersection) requirement."""
    decompositions: List[GHD] = []
    all_vertices = tuple(query.vertices)
    whole = _bag(query, all_vertices)
    if whole is not None:
        decompositions.append(GHD(query=query, bags=[whole]))
    if max_bags < 2 or query.num_vertices < 4:
        return decompositions

    query_edges = {(e.src, e.dst, e.label) for e in query.edges}
    seen: set = set()
    for size_a in range(3, query.num_vertices):
        for vset_a in combinations(all_vertices, size_a):
            bag_a = _bag(query, vset_a)
            if bag_a is None:
                continue
            edges_a = {(e.src, e.dst, e.label) for e in bag_a.sub_query.edges}
            for size_b in range(3, query.num_vertices):
                for vset_b in combinations(all_vertices, size_b):
                    if set(vset_a) | set(vset_b) != set(all_vertices):
                        continue
                    if not (set(vset_a) & set(vset_b)):
                        continue
                    key = frozenset((frozenset(vset_a), frozenset(vset_b)))
                    if key in seen:
                        continue
                    seen.add(key)
                    bag_b = _bag(query, vset_b)
                    if bag_b is None:
                        continue
                    edges_b = {(e.src, e.dst, e.label) for e in bag_b.sub_query.edges}
                    if edges_a | edges_b != query_edges:
                        continue
                    decompositions.append(GHD(query=query, bags=[bag_a, bag_b]))
    return decompositions


def minimum_width_ghds(query: QueryGraph, max_bags: int = 2, tolerance: float = 1e-6) -> List[GHD]:
    """All decompositions whose width equals the minimum width."""
    ghds = enumerate_ghds(query, max_bags=max_bags)
    if not ghds:
        return []
    best = min(g.width for g in ghds)
    return [g for g in ghds if g.width <= best + tolerance]
