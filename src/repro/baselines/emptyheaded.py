"""EmptyHeaded-style planner (Section 1.1 and 8.4).

EmptyHeaded (EH) evaluates a query by picking a minimum-width GHD, running
Generic Join inside every bag, and joining the bag results with binary joins.
Its two shortcomings relative to the paper's optimizer are reproduced
faithfully:

* the query-vertex ordering used inside a bag is *not* optimized — it is the
  lexicographic order of the variable names the user wrote (so rewriting the
  query with different variable names changes EH's plan, which is how the
  paper constructs the EH-good / EH-bad comparison), and
* the width cost metric depends only on the query, never on the data graph.

The planner emits plans in this repository's plan representation so that they
run on the same executor as Graphflow plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.baselines.ghd import GHD, minimum_width_ghds
from repro.errors import OptimizerError
from repro.planner.plan import Plan, PlanNode, make_hash_join, wco_plan_from_order
from repro.planner.qvo import enumerate_orderings, lexicographic_ordering
from repro.query.query_graph import QueryGraph


@dataclass
class EmptyHeadedPlan:
    """An EH plan: a GHD plus one query-vertex ordering per bag."""

    ghd: GHD
    bag_orderings: Tuple[Tuple[str, ...], ...]
    plan: Plan

    def describe(self) -> str:
        orders = " | ".join("".join(o) for o in self.bag_orderings)
        return f"{self.ghd.describe()} with orderings {orders}"


class EmptyHeadedPlanner:
    """Builds EH plans: minimum-width GHD + per-bag WCO sub-plans + hash joins."""

    def __init__(self, max_bags: int = 2) -> None:
        self.max_bags = max_bags

    # ------------------------------------------------------------------ #
    def _bag_ordering(
        self, bag_query: QueryGraph, preferred: Optional[Sequence[str]], join_vertices: Sequence[str]
    ) -> Tuple[str, ...]:
        """EH's ordering heuristic: lexicographic, except that the orderings of
        joined bags start with the join vertices when possible."""
        if preferred is not None:
            order = [v for v in preferred if bag_query.has_vertex(v)]
            if len(order) == bag_query.num_vertices:
                candidates = enumerate_orderings(bag_query)
                if tuple(order) in candidates:
                    return tuple(order)
        join_first = [v for v in sorted(join_vertices) if bag_query.has_vertex(v)]
        for ordering in enumerate_orderings(bag_query):
            if list(ordering[: len(join_first)]) == join_first:
                return ordering
        orderings = enumerate_orderings(bag_query)
        if not orderings:
            raise OptimizerError(f"no valid ordering for bag {bag_query.name}")
        lex = lexicographic_ordering(bag_query)
        return lex if lex in orderings else orderings[0]

    def _assemble(self, query: QueryGraph, ghd: GHD, orderings: Sequence[Tuple[str, ...]]) -> Plan:
        bag_roots: List[PlanNode] = []
        for bag, ordering in zip(ghd.bags, orderings):
            sub_plan = wco_plan_from_order(bag.sub_query, ordering)
            bag_roots.append(sub_plan.root)
        if len(bag_roots) == 1:
            root = bag_roots[0]
        else:
            root = make_hash_join(query, bag_roots[0], bag_roots[1])
        return Plan(query=query, root=root, label="emptyheaded")

    # ------------------------------------------------------------------ #
    def plan(
        self,
        query: QueryGraph,
        orderings: Optional[Sequence[Sequence[str]]] = None,
    ) -> EmptyHeadedPlan:
        """EH's chosen plan for the query.

        ``orderings`` overrides the per-bag query-vertex orderings (one
        sequence per bag); without it EH uses its lexicographic default — this
        is the EH-bad configuration unless the user happened to write good
        variable names.
        """
        ghds = minimum_width_ghds(query, max_bags=self.max_bags)
        if not ghds:
            raise OptimizerError(f"no GHD found for {query.name}")
        # EH arbitrarily picks one minimum-width GHD; we take the first, which
        # for multi-bag ties prefers the decomposition enumerated first.
        ghd = ghds[0]
        join_vertices = ghd.shared_vertices()
        chosen: List[Tuple[str, ...]] = []
        for i, bag in enumerate(ghd.bags):
            preferred = None
            if orderings is not None and i < len(orderings):
                preferred = list(orderings[i])
            chosen.append(self._bag_ordering(bag.sub_query, preferred, join_vertices))
        plan = self._assemble(query, ghd, chosen)
        return EmptyHeadedPlan(ghd=ghd, bag_orderings=tuple(chosen), plan=plan)

    def plan_with_good_orderings(self, query: QueryGraph, cost_model) -> EmptyHeadedPlan:
        """EH-good: force EH's bags to use the orderings a cost-based
        optimizer (ours) would pick for each bag."""
        from repro.planner.dp_optimizer import DynamicProgrammingOptimizer

        ghds = minimum_width_ghds(query, max_bags=self.max_bags)
        if not ghds:
            raise OptimizerError(f"no GHD found for {query.name}")
        ghd = ghds[0]
        orderings: List[Tuple[str, ...]] = []
        for bag in ghd.bags:
            optimizer = DynamicProgrammingOptimizer(cost_model, enable_binary_joins=False)
            bag_plan = optimizer.optimize(bag.sub_query)
            qvo = bag_plan.qvo()
            if qvo is None:
                qvo = enumerate_orderings(bag.sub_query, limit=1)[0]
            orderings.append(qvo)
        plan = self._assemble(query, ghd, orderings)
        return EmptyHeadedPlan(ghd=ghd, bag_orderings=tuple(orderings), plan=plan)

    # ------------------------------------------------------------------ #
    def plan_spectrum(self, query: QueryGraph, max_plans: int = 200) -> List[EmptyHeadedPlan]:
        """Every EH plan obtainable by rewriting the query with different
        variable names: for each minimum-width GHD, every combination of valid
        per-bag orderings (Section 8.4.1)."""
        plans: List[EmptyHeadedPlan] = []
        for ghd in minimum_width_ghds(query, max_bags=self.max_bags):
            per_bag = [enumerate_orderings(bag.sub_query) for bag in ghd.bags]
            if len(ghd.bags) == 1:
                combos = [(o,) for o in per_bag[0]]
            else:
                combos = [(a, b) for a in per_bag[0] for b in per_bag[1]]
            for combo in combos:
                if len(plans) >= max_plans:
                    return plans
                try:
                    plan = self._assemble(query, ghd, combo)
                except Exception:
                    continue
                plans.append(EmptyHeadedPlan(ghd=ghd, bag_orderings=tuple(combo), plan=plan))
        return plans
