"""A simplified CFL-style subgraph matcher (Appendix C baseline).

CFL ("Core-Forest-Leaf", Bi et al., SIGMOD 2016) matches labeled subgraph
queries by

1. decomposing the query into a dense *core* (the 2-core of its undirected
   shape) and a *forest* of trees hanging off the core,
2. building a *compact path index* (CPI): per query vertex, the candidate data
   vertices that satisfy label and degree filters, refined along a BFS tree of
   the query,
3. matching the core first (fewer matches, more constraints), then the forest,
   postponing Cartesian products between independent subtrees.

This implementation keeps those three ideas but simplifies the CPI refinement
to one forward/backward pruning pass; it evaluates *subgraph isomorphism*
semantics (injective mappings), as CFL does, and supports the output-size
limits used in the paper's Appendix C experiments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graph.graph import Direction, Graph
from repro.graph.intersect import contains_sorted, intersect_multiway
from repro.query.query_graph import QueryGraph


@dataclass
class CFLResult:
    """Outcome of one CFL run."""

    num_matches: int
    elapsed_seconds: float
    truncated: bool
    core_vertices: Tuple[str, ...]
    forest_vertices: Tuple[str, ...]
    candidate_sizes: Dict[str, int] = field(default_factory=dict)


def _two_core(query: QueryGraph) -> List[str]:
    """Vertices of the 2-core of the query's undirected shape."""
    degree = {v: len(query.neighbors(v)) for v in query.vertices}
    removed: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for v in query.vertices:
            if v in removed:
                continue
            live_degree = sum(1 for u in query.neighbors(v) if u not in removed)
            if live_degree < 2:
                removed.add(v)
                changed = True
    return [v for v in query.vertices if v not in removed]


class CFLMatcher:
    """Simplified CFL matcher."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph

    # ------------------------------------------------------------------ #
    # candidate computation (CPI construction, simplified)
    # ------------------------------------------------------------------ #
    def _initial_candidates(self, query: QueryGraph) -> Dict[str, np.ndarray]:
        """Label- and degree-filtered candidate sets (the CPI's vertex sets)."""
        candidates: Dict[str, np.ndarray] = {}
        out_deg = self.graph.degree_array(Direction.FORWARD)
        in_deg = self.graph.degree_array(Direction.BACKWARD)
        for v in query.vertices:
            label = query.vertex_label(v)
            base = self.graph.vertices_with_label(label)
            required_out = sum(1 for e in query.edges if e.src == v)
            required_in = sum(1 for e in query.edges if e.dst == v)
            mask = (out_deg[base] >= required_out) & (in_deg[base] >= required_in)
            candidates[v] = base[mask]
        return candidates

    def _refine_candidates(
        self, query: QueryGraph, candidates: Dict[str, np.ndarray], passes: int = 2
    ) -> Dict[str, np.ndarray]:
        """Prune candidates that have no neighbour among a query-neighbour's
        candidates (one simplified CPI refinement pass in each direction)."""
        for _ in range(passes):
            for v in query.vertices:
                keep: List[int] = []
                v_candidates = candidates[v]
                for u in v_candidates:
                    ok = True
                    for e in query.edges_touching(v):
                        other = e.other(v)
                        other_candidates = candidates[other]
                        if len(other_candidates) == 0:
                            ok = False
                            break
                        direction = Direction.FORWARD if e.src == v else Direction.BACKWARD
                        nbrs = self.graph.neighbors(
                            int(u), direction, e.label, query.vertex_label(other)
                        )
                        if len(intersect_multiway([nbrs, other_candidates])) == 0:
                            ok = False
                            break
                    if ok:
                        keep.append(int(u))
                candidates[v] = np.asarray(keep, dtype=np.int64)
        return candidates

    # ------------------------------------------------------------------ #
    # matching
    # ------------------------------------------------------------------ #
    def _matching_order(self, query: QueryGraph, candidates: Dict[str, np.ndarray]) -> List[str]:
        """Core vertices first (fewest candidates first), then forest vertices
        in BFS order from the core."""
        core = _two_core(query)
        core_sorted = sorted(core, key=lambda v: (len(candidates[v]), v))
        order: List[str] = []
        for v in core_sorted:
            if v not in order and (not order or any(u in order for u in query.neighbors(v))):
                order.append(v)
        # Some core vertices may not be reachable yet (multiple components of
        # the core are bridged through forest vertices); append them greedily.
        for v in core_sorted:
            if v not in order:
                order.append(v)
        remaining = [v for v in query.vertices if v not in order]
        while remaining:
            progressed = False
            for v in list(remaining):
                if not order or any(u in order for u in query.neighbors(v)):
                    order.append(v)
                    remaining.remove(v)
                    progressed = True
            if not progressed:
                order.extend(remaining)
                break
        return order

    def count_matches(
        self, query: QueryGraph, output_limit: Optional[int] = None
    ) -> CFLResult:
        """Count injective matches of ``query`` (up to ``output_limit``)."""
        start = time.perf_counter()
        candidates = self._refine_candidates(query, self._initial_candidates(query))
        order = self._matching_order(query, candidates)
        core = set(_two_core(query))
        count = 0
        truncated = False

        edge_index: Dict[Tuple[str, str], List] = {}
        for e in query.edges:
            edge_index.setdefault((e.src, e.dst), []).append(e)

        def candidates_for(v: str, assignment: Dict[str, int]) -> Sequence[int]:
            """Extension set for v given the current partial assignment."""
            lists: List[np.ndarray] = []
            for e in query.edges_touching(v):
                other = e.other(v)
                if other not in assignment:
                    continue
                direction = Direction.FORWARD if e.dst == v else Direction.BACKWARD
                lists.append(
                    self.graph.neighbors(
                        assignment[other], direction, e.label, query.vertex_label(v)
                    )
                )
            if not lists:
                return [int(x) for x in candidates[v]]
            lists.append(candidates[v])
            return [int(x) for x in intersect_multiway(lists)]

        def backtrack(position: int, assignment: Dict[str, int]) -> None:
            nonlocal count, truncated
            if truncated:
                return
            if position == len(order):
                count += 1
                if output_limit is not None and count >= output_limit:
                    truncated = True
                return
            v = order[position]
            used = set(assignment.values())
            for candidate in candidates_for(v, assignment):
                if candidate in used:
                    continue
                assignment[v] = candidate
                backtrack(position + 1, assignment)
                del assignment[v]
                if truncated:
                    return

        backtrack(0, {})
        elapsed = time.perf_counter() - start
        return CFLResult(
            num_matches=count,
            elapsed_seconds=elapsed,
            truncated=truncated,
            core_vertices=tuple(v for v in order if v in core),
            forest_vertices=tuple(v for v in order if v not in core),
            candidate_sizes={v: int(len(c)) for v, c in candidates.items()},
        )
