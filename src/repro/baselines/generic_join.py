"""Generic Join with non-cost-based query-vertex orderings.

The paper's Table 1 contrasts Graphflow with prior WCOJ systems:

* **BiGJoin** picks query-vertex orderings arbitrarily,
* **LogicBlox** uses heuristics (or sampling-based costs in a later variant).

These helpers produce the corresponding WCO plans so that they can be compared
against the cost-based optimizer on the same executor.
"""

from __future__ import annotations

from typing import Optional

from repro.planner.plan import Plan, wco_plan_from_order
from repro.planner.qvo import degree_heuristic_ordering, enumerate_orderings, lexicographic_ordering
from repro.query.query_graph import QueryGraph


def arbitrary_ordering_plan(query: QueryGraph, seed: Optional[int] = None) -> Plan:
    """BiGJoin-style: an arbitrary (lexicographic, or seeded random) valid QVO."""
    orderings = enumerate_orderings(query)
    if seed is None:
        lex = lexicographic_ordering(query)
        ordering = lex if lex in orderings else orderings[0]
    else:
        import numpy as np

        rng = np.random.default_rng(seed)
        ordering = orderings[int(rng.integers(0, len(orderings)))]
    plan = wco_plan_from_order(query, ordering)
    plan.label = "bigjoin-arbitrary"
    return plan


def heuristic_ordering_plan(query: QueryGraph) -> Plan:
    """LogicBlox-style heuristic: greedily order query vertices by how many
    query edges connect them to the already-ordered prefix (a proxy for the
    selectivity heuristics described in the LogicBlox papers)."""
    ordering = degree_heuristic_ordering(query)
    orderings = enumerate_orderings(query)
    if ordering not in orderings:
        ordering = orderings[0]
    plan = wco_plan_from_order(query, ordering)
    plan.label = "logicblox-heuristic"
    return plan
