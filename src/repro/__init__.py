"""Reproduction of "Optimizing Subgraph Queries by Combining Binary and
Worst-Case Optimal Joins" (Mhedhbi & Salihoglu, VLDB 2019).

The package implements the Graphflow-style optimizer and runtime described in
the paper: worst-case optimal (WCO) plans built from multiway intersections,
binary-join plans, hybrid plans mixing the two, a cost-based dynamic
programming optimizer driven by the i-cost metric and a sampled subgraph
catalogue, adaptive query-vertex-ordering selection, and the baselines used in
the paper's evaluation (EmptyHeaded-style GHD plans, binary-join-only planners,
a simplified CFL matcher, and a naive backtracking engine).

The most convenient entry point is :class:`repro.api.GraphflowDB`:

    >>> from repro import GraphflowDB, datasets, queries
    >>> db = GraphflowDB(datasets.load("amazon"))
    >>> db.build_catalogue()
    >>> result = db.execute(queries.triangle())
    >>> result.num_matches  # doctest: +SKIP
    217
"""

from repro.api import GraphflowDB, QueryResult, UpdateResult
from repro.graph.graph import Graph, Direction
from repro.graph.builder import GraphBuilder
from repro.query.query_graph import QueryGraph, QueryEdge
from repro.persistence import DurableGraphStore
from repro.query import catalog_queries as queries
from repro.server import PlanCache, PreparedQuery, QueryService, ServiceResult
from repro.storage import CompactionManager, DynamicGraph, GraphSnapshot
from repro import datasets

__version__ = "1.1.0"

__all__ = [
    "GraphflowDB",
    "QueryResult",
    "UpdateResult",
    "Graph",
    "GraphBuilder",
    "Direction",
    "CompactionManager",
    "DurableGraphStore",
    "DynamicGraph",
    "GraphSnapshot",
    "QueryGraph",
    "QueryEdge",
    "queries",
    "datasets",
    "PlanCache",
    "PreparedQuery",
    "QueryService",
    "ServiceResult",
    "__version__",
]
