"""Dataset registry.

``load(name, scale=..., edge_labels=...)`` returns the synthetic stand-in for
one of the paper's datasets (Table 8), optionally with random edge labels (the
``QJi`` labeling protocol of Section 8.1.3).  Loaded graphs are cached per
(name, scale) so repeated experiment runs share the same data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.datasets import synthetic
from repro.graph.graph import Graph
from repro.graph.labeling import with_random_edge_labels


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata describing one dataset archetype."""

    name: str
    domain: str
    paper_vertices: str
    paper_edges: str
    generator: Callable[..., Graph]
    description: str


DATASETS: Dict[str, DatasetSpec] = {
    "amazon": DatasetSpec(
        name="amazon",
        domain="product co-purchasing",
        paper_vertices="403K",
        paper_edges="3.5M",
        generator=synthetic.amazon_like,
        description="moderate clustering, mild degree skew",
    ),
    "epinions": DatasetSpec(
        name="epinions",
        domain="social",
        paper_vertices="76K",
        paper_edges="509K",
        generator=synthetic.epinions_like,
        description="trust network: heavy skew, high clustering",
    ),
    "google": DatasetSpec(
        name="google",
        domain="web",
        paper_vertices="876K",
        paper_edges="5.1M",
        generator=synthetic.google_like,
        description="web graph: in-degree hubs, intra-site cliques",
    ),
    "berkstan": DatasetSpec(
        name="berkstan",
        domain="web",
        paper_vertices="685K",
        paper_edges="7.6M",
        generator=synthetic.berkstan_like,
        description="web graph: strong forward/backward asymmetry",
    ),
    "livejournal": DatasetSpec(
        name="livejournal",
        domain="social",
        paper_vertices="4.8M",
        paper_edges="69M",
        generator=synthetic.livejournal_like,
        description="large social network archetype",
    ),
    "twitter": DatasetSpec(
        name="twitter",
        domain="social",
        paper_vertices="41.6M",
        paper_edges="1.46B",
        generator=synthetic.twitter_like,
        description="follower network: extreme in-degree skew",
    ),
    "human": DatasetSpec(
        name="human",
        domain="protein interaction (CFL baseline)",
        paper_vertices="4.7K",
        paper_edges="86K",
        generator=synthetic.human_like,
        description="small, dense, heavily vertex-labeled",
    ),
}

_CACHE: Dict[Tuple[str, float], Graph] = {}


def available() -> List[str]:
    """Names of the registered dataset archetypes."""
    return sorted(DATASETS)


def load(
    name: str,
    scale: float = 1.0,
    edge_labels: int = 1,
    seed: Optional[int] = None,
    use_cache: bool = True,
) -> Graph:
    """Load (generate) a dataset archetype.

    Parameters
    ----------
    name:
        One of :func:`available`.
    scale:
        Linear size multiplier; 1.0 is the default experiment size.
    edge_labels:
        When > 1, edges are labeled uniformly at random from that many labels
        (the paper's ``QJi`` protocol).
    """
    key = name.lower()
    if key not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; available: {available()}")
    cache_key = (key, scale)
    if use_cache and cache_key in _CACHE:
        graph = _CACHE[cache_key]
    else:
        kwargs = {} if seed is None else {"seed": seed}
        graph = DATASETS[key].generator(scale=scale, **kwargs)
        if use_cache:
            _CACHE[cache_key] = graph
    if edge_labels > 1:
        graph = with_random_edge_labels(graph, edge_labels, seed=0 if seed is None else seed)
        graph.name = f"{key}-{edge_labels}labels"
    return graph


def clear_cache() -> None:
    """Drop all cached graphs (used by tests)."""
    _CACHE.clear()
