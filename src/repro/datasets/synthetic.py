"""Generators for the dataset archetypes used by the experiments.

The paper evaluates on six SNAP graphs (Table 8).  They are not available in
the offline reproduction environment and are far too large for a pure-Python
runtime, so each is replaced with a scaled-down synthetic graph sharing the
structural properties that drive the paper's conclusions (degree skew,
clustering/cyclicity, and forward/backward asymmetry).  DESIGN.md documents
the substitution.
"""

from __future__ import annotations

from typing import Optional

from repro.graph import generators
from repro.graph.graph import Graph


def amazon_like(scale: float = 1.0, seed: int = 7) -> Graph:
    """Product co-purchasing archetype: moderate clustering, mild skew."""
    n = max(200, int(2000 * scale))
    g = generators.clustered_social(
        num_vertices=n, avg_degree=8, clustering=0.35, reciprocity=0.5, seed=seed, name="amazon"
    )
    return g


def epinions_like(scale: float = 1.0, seed: int = 11) -> Graph:
    """Who-trusts-whom social network: heavy skew, high clustering."""
    n = max(150, int(1200 * scale))
    g = generators.clustered_social(
        num_vertices=n, avg_degree=12, clustering=0.5, reciprocity=0.35, seed=seed, name="epinions"
    )
    return g


def google_like(scale: float = 1.0, seed: int = 13) -> Graph:
    """Web graph archetype: strong in-degree hubs, intra-site cliques."""
    n = max(250, int(2500 * scale))
    g = generators.web_graph(num_vertices=n, avg_degree=7, hub_fraction=0.02, seed=seed, name="google")
    return g


def berkstan_like(scale: float = 1.0, seed: int = 17) -> Graph:
    """Web graph archetype with even stronger forward/backward asymmetry."""
    n = max(250, int(2200 * scale))
    g = generators.web_graph(num_vertices=n, avg_degree=10, hub_fraction=0.01, seed=seed, name="berkstan")
    return g


def livejournal_like(scale: float = 1.0, seed: int = 19) -> Graph:
    """Large social network archetype (bigger, skewed, clustered)."""
    n = max(400, int(4000 * scale))
    g = generators.clustered_social(
        num_vertices=n, avg_degree=14, clustering=0.3, reciprocity=0.6, seed=seed, name="livejournal"
    )
    return g


def twitter_like(scale: float = 1.0, seed: int = 23) -> Graph:
    """Follower-network archetype: extreme in-degree skew, low reciprocity."""
    n = max(500, int(5000 * scale))
    g = generators.power_law(
        num_vertices=n,
        num_edges=int(n * 10),
        out_exponent=2.3,
        in_exponent=1.9,
        seed=seed,
        name="twitter",
    )
    return g


def human_like(scale: float = 1.0, seed: int = 29) -> Graph:
    """Stand-in for the CFL paper's 'human' protein-interaction graph: small,
    dense, and heavily labeled (44 vertex labels in the original)."""
    from repro.graph.labeling import with_random_labels

    n = max(150, int(1000 * scale))
    g = generators.clustered_social(
        num_vertices=n, avg_degree=18, clustering=0.45, reciprocity=0.7, seed=seed, name="human"
    )
    return with_random_labels(g, num_edge_labels=1, num_vertex_labels=20, seed=seed)
