"""Scaled-down synthetic stand-ins for the paper's datasets."""

from repro.datasets.registry import DATASETS, DatasetSpec, load, available

__all__ = ["DATASETS", "DatasetSpec", "load", "available"]
