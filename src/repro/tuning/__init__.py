"""The self-tuning optimizer loop (sense → decide → act → guard).

PR 5/6 built the *sense* half — :attr:`~repro.catalogue.SubgraphCatalogue.
stale_fraction` tracks how far the sampled statistics have drifted and
:meth:`~repro.obs.feedback.CardinalityFeedback.drifting_plans` lists cached
plans whose actual-vs-estimated q-error has degraded.  This package consumes
both signals:

* :class:`CatalogueRefresher` — a background thread (modeled on the
  compaction manager) that re-samples the catalogue off the write path when
  staleness crosses a threshold and installs it with an epoch CAS,
* :class:`Reoptimizer` — a maintenance pass that re-plans drifting cached
  plans against current statistics, evicting only when the new plan is
  cheaper by a margin,
* :class:`PlanRegressionSuite` — the guard: a canned workload over
  deterministic graphs whose chosen plan signatures are pinned in a
  committed baseline (``tests/baselines/plan_regression.json``), so tuning
  changes cannot silently regress plan quality.
"""

from repro.tuning.refresher import CatalogueRefresher
from repro.tuning.regression import (
    DEFAULT_BASELINE_PATH,
    PlanDiff,
    PlanRegressionSuite,
    format_diffs,
    plan_signature,
)
from repro.tuning.reoptimize import ReoptimizationReport, Reoptimizer

__all__ = [
    "CatalogueRefresher",
    "Reoptimizer",
    "ReoptimizationReport",
    "PlanRegressionSuite",
    "PlanDiff",
    "plan_signature",
    "format_diffs",
    "DEFAULT_BASELINE_PATH",
]
