"""Background catalogue refresh: the *act* half of the self-tuning loop.

The catalogue's exact per-label edge counts are maintained incrementally by
``apply_edge_delta``, but the sampled ``mu`` / ``|A|`` entries decay as the
graph churns — :attr:`~repro.catalogue.SubgraphCatalogue.stale_fraction`
measures that decay.  The :class:`CatalogueRefresher` watches it from a
daemon thread (modeled on the compaction manager) and, past a threshold,
re-samples every entry against a pinned snapshot *off the write path*, then
installs the result through the database's epoch compare-and-swap
(:meth:`~repro.api.GraphflowDB.install_refreshed_catalogue`): if writes (or
a competing rebuild) raced the re-sample, the install is discarded and
retried against newer state; after ``max_install_retries`` losses it falls
back to re-sampling under the write lock, which cannot lose.

Each cycle optionally runs a :class:`~repro.tuning.reoptimize.Reoptimizer`
pass afterwards, so one thread drives the whole sense → decide → act loop.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.catalogue.construction import resample_catalogue


class CatalogueRefresher:
    """Re-samples a database's catalogue in the background once stale.

    Parameters
    ----------
    db:
        The :class:`~repro.api.GraphflowDB` whose catalogue to maintain.
    stale_threshold:
        Refresh once ``db.catalogue_stale_fraction`` reaches this.
    poll_interval_seconds:
        Cadence of the staleness check.
    min_interval_seconds:
        Floor between installed refreshes, so a hot write stream cannot make
        the refresher spin on re-sampling.
    max_install_retries:
        Lock-free install attempts per refresh before falling back to
        re-sampling under the write lock.
    z:
        Sample count for re-measurement (defaults to the catalogue's own).
    event_sink:
        Optional ``(event_type, **fields)`` callable
        (:meth:`~repro.obs.Observability.emit_event` matches); receives a
        ``catalogue_refresh`` event per installed refresh.
    reoptimizer:
        Optional :class:`~repro.tuning.reoptimize.Reoptimizer` run at the
        end of every poll cycle.
    """

    def __init__(
        self,
        db,
        stale_threshold: float = 0.25,
        poll_interval_seconds: float = 0.05,
        min_interval_seconds: float = 0.0,
        max_install_retries: int = 3,
        z: Optional[int] = None,
        seed: int = 0,
        event_sink: Optional[Callable] = None,
        reoptimizer=None,
    ) -> None:
        if stale_threshold <= 0:
            raise ValueError("stale_threshold must be positive")
        if poll_interval_seconds <= 0:
            raise ValueError("poll_interval_seconds must be positive")
        self.db = db
        self.stale_threshold = stale_threshold
        self.poll_interval_seconds = poll_interval_seconds
        self.min_interval_seconds = min_interval_seconds
        self.max_install_retries = max_install_retries
        self.z = z
        self.seed = seed
        self.event_sink = event_sink if event_sink is not None else db.obs.emit_event
        self.reoptimizer = reoptimizer

        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._stats_lock = threading.Lock()
        self.refreshes = 0
        self.cas_retries = 0
        self.locked_fallbacks = 0
        self.paced_skips = 0
        self.last_refresh_seconds = 0.0
        self._last_install_monotonic: Optional[float] = None
        self._refresh_seed = seed

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="catalogue-refresher", daemon=True
        )
        self._thread.start()

    def stop(self, wait: bool = True) -> None:
        self._stop.set()
        thread = self._thread
        if wait and thread is not None:
            thread.join()
        self._thread = None

    def __enter__(self) -> "CatalogueRefresher":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        while not self._stop.is_set():
            self._stop.wait(timeout=self.poll_interval_seconds)
            if self._stop.is_set():
                break
            if self.should_refresh():
                if self._paced_out():
                    with self._stats_lock:
                        self.paced_skips += 1
                else:
                    self.refresh_now()
            reoptimizer = self.reoptimizer
            if reoptimizer is not None:
                reoptimizer.run_once()

    def should_refresh(self) -> bool:
        if self.db.catalogue is None:
            return False
        return self.db.catalogue_stale_fraction >= self.stale_threshold

    def _paced_out(self) -> bool:
        if self.min_interval_seconds <= 0 or self._last_install_monotonic is None:
            return False
        return (time.monotonic() - self._last_install_monotonic) < self.min_interval_seconds

    # ------------------------------------------------------------------ #
    def refresh_now(self) -> bool:
        """Re-sample and install once; safe to call without the thread.

        Returns whether a refreshed catalogue was installed (False only when
        no catalogue is built yet).
        """
        start = time.perf_counter()
        installed = False
        retries = 0
        locked = False
        for _ in range(max(1, self.max_install_retries)):
            old = self.db.catalogue
            if old is None:
                return False
            token_epoch, token_drift = old.epoch, old.drift_edges
            fresh = resample_catalogue(
                old, self.db._read_graph(), z=self.z, seed=self._next_seed()
            )
            if self.db.install_refreshed_catalogue(
                fresh, expected_epoch=token_epoch, expected_drift_edges=token_drift
            ):
                installed = True
                break
            retries += 1
        if not installed:
            # Writes keep winning the race; re-sample under the write lock,
            # which blocks writers for one bounded rebuild but cannot lose.
            with self.db._write_lock:
                old = self.db.catalogue
                if old is None:
                    return False
                fresh = resample_catalogue(
                    old, self.db._read_graph(), z=self.z, seed=self._next_seed()
                )
                self.db.install_refreshed_catalogue(
                    fresh, expected_epoch=old.epoch, expected_drift_edges=old.drift_edges
                )
            locked = True
            installed = True
        seconds = time.perf_counter() - start
        with self._stats_lock:
            self.refreshes += 1
            self.cas_retries += retries
            if locked:
                self.locked_fallbacks += 1
            self.last_refresh_seconds = seconds
            self._last_install_monotonic = time.monotonic()
            refreshes = self.refreshes
        obs = getattr(self.db, "obs", None)
        if obs is not None:
            obs.tuning_catalogue_refreshes_total.labels().inc()
            obs.tuning_refresh_seconds.labels().observe(seconds)
        if self.event_sink is not None:
            try:
                self.event_sink(
                    "catalogue_refresh",
                    seconds=round(seconds, 6),
                    epoch=self.db.catalogue.epoch if self.db.catalogue is not None else 0,
                    entries=fresh.num_entries,
                    cas_retries=retries,
                    locked_fallback=locked,
                    refreshes=refreshes,
                )
            except Exception:
                pass
        return True

    def _next_seed(self) -> int:
        # A fresh seed per re-sample, deterministic from the base seed, so
        # repeated refreshes draw new samples instead of replaying the old
        # estimate (the point of refreshing is new measurements).
        self._refresh_seed += 1
        return self._refresh_seed

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        with self._stats_lock:
            return {
                "running": self.running,
                "stale_threshold": self.stale_threshold,
                "stale_fraction": self.db.catalogue_stale_fraction,
                "catalogue_epoch": (
                    self.db.catalogue.epoch if self.db.catalogue is not None else 0
                ),
                "refreshes": self.refreshes,
                "cas_retries": self.cas_retries,
                "locked_fallbacks": self.locked_fallbacks,
                "paced_skips": self.paced_skips,
                "last_refresh_seconds": self.last_refresh_seconds,
            }
