"""The plan-regression guard suite.

The optimizer's choices depend on the cost constants, the catalogue
sampling, and the DP itself — all of which the self-tuning loop now touches.
This module pins the optimizer's decisions for a canned workload (the repo's
benchmark query shapes over deterministic generated graphs) in a committed
baseline file, so any change that silently flips a join order, swaps an
operator, or shifts an estimated cost by an order of magnitude fails a test
with a readable diff instead of shipping.

A plan's *signature* is deliberately coarser than full structural equality:

* ``join_order`` — the output vertex order of the root operator (the QVO for
  WCO plans; probe-side-then-build-side order for hash-join plans),
* ``operators`` — the post-order operator kinds with their inputs
  (``scan``, ``extend[2->c]``, ``hashjoin[b,c]``),
* ``plan_type`` — ``wco`` / ``bj`` / ``hybrid``,
* ``cost_bucket`` — ``floor(log2(estimated_cost))``, so only order-of-
  magnitude cost-model shifts (a mis-weighted constant, a broken estimator)
  trip the guard, not sampling jitter.

Workload graphs come from the deterministic generators (seeded), catalogue
sampling is seeded, and the DP tie-breaks deterministically, so the suite is
reproducible across machines; ``repro plans --rebaseline`` records
intentional changes.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.planner.plan import ExtendNode, HashJoinNode, Plan, ScanNode

BASELINE_VERSION = 1

#: Where the committed baseline lives, relative to the repo root (the CLI and
#: CI run from there; tests resolve it from their own location instead).
DEFAULT_BASELINE_PATH = os.path.join("tests", "baselines", "plan_regression.json")

#: Query shapes under guard: a spread of the paper's benchmark shapes —
#: cyclic (triangle, 4-cycle, 6-cycle), dense (4-clique), hybrid-prone
#: (diamond-X, bowtie, diamond+triangle), and acyclic (Q11) — so WCO-only,
#: binary-join, and hybrid plan spaces are all pinned.
DEFAULT_QUERIES: Tuple[str, ...] = ("Q1", "Q2", "Q3", "Q5", "Q8", "Q10", "Q11", "Q12")

DEFAULT_MODES: Tuple[str, ...] = ("iterator", "vectorized")


def _default_graphs() -> "Dict[str, Callable[[], object]]":
    from repro.graph.generators import clustered_social, erdos_renyi

    return {
        "er-150": lambda: erdos_renyi(150, 1200, seed=7, name="er-150"),
        "social-200": lambda: clustered_social(
            200, avg_degree=7, clustering=0.35, seed=11, name="social-200"
        ),
    }


# --------------------------------------------------------------------------- #
# signatures
# --------------------------------------------------------------------------- #
def _operator_codes(plan: Plan) -> List[str]:
    codes: List[str] = []
    for node in plan.root.iter_nodes():
        if isinstance(node, ScanNode):
            codes.append(f"scan[{node.edge.src}->{node.edge.dst}]")
        elif isinstance(node, ExtendNode):
            codes.append(f"extend[{len(node.descriptors)}->{node.to_vertex}]")
        elif isinstance(node, HashJoinNode):
            codes.append(f"hashjoin[{','.join(sorted(node.join_vertices))}]")
        else:
            codes.append(type(node).__name__.lower())
    return codes


def cost_bucket(cost: float) -> Optional[int]:
    """Log2 bucket of an estimated cost; None for NaN/non-positive costs."""
    if cost != cost or cost <= 0.0:
        return None
    return int(math.floor(math.log2(max(cost, 1.0))))


def plan_signature(plan: Plan) -> dict:
    """The baseline-comparable signature of one optimizer decision."""
    return {
        "join_order": list(plan.root.out_vertices),
        "operators": _operator_codes(plan),
        "plan_type": plan.plan_type,
        "cost_bucket": cost_bucket(plan.estimated_cost),
    }


# --------------------------------------------------------------------------- #
# diffs
# --------------------------------------------------------------------------- #
@dataclass
class PlanDiff:
    """One divergence between the live planner and the baseline."""

    case_id: str
    kind: str  # "changed" | "missing_baseline" | "missing_live"
    field: Optional[str] = None
    expected: Optional[object] = None
    actual: Optional[object] = None

    def render(self) -> str:
        if self.kind == "missing_baseline":
            return (
                f"{self.case_id}: not in baseline (new case?); run "
                f"`repro plans --rebaseline` to record it"
            )
        if self.kind == "missing_live":
            return f"{self.case_id}: in baseline but not produced by the live suite"
        return (
            f"{self.case_id}: {self.field} changed\n"
            f"    baseline: {self.expected!r}\n"
            f"    live:     {self.actual!r}"
        )


def format_diffs(diffs: Sequence[PlanDiff]) -> str:
    if not diffs:
        return "plan regression: no differences"
    lines = [f"plan regression: {len(diffs)} difference(s) against baseline"]
    lines += ["  " + d.render().replace("\n", "\n  ") for d in diffs]
    lines.append(
        "If these plan changes are intentional, refresh the baseline with "
        "`repro plans --rebaseline` and commit the result."
    )
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# the suite
# --------------------------------------------------------------------------- #
class PlanRegressionSuite:
    """Plans the canned workload and diffs the signatures against a baseline."""

    def __init__(
        self,
        queries: Sequence[str] = DEFAULT_QUERIES,
        modes: Sequence[str] = DEFAULT_MODES,
        graphs: Optional[Dict[str, Callable[[], object]]] = None,
        h: int = 3,
        z: int = 150,
        seed: int = 7,
    ) -> None:
        self.queries = tuple(queries)
        self.modes = tuple(modes)
        self.graph_factories = graphs if graphs is not None else _default_graphs()
        self.h = h
        self.z = z
        self.seed = seed

    def case_ids(self) -> List[str]:
        return [
            f"{graph}/{query}/{mode}"
            for graph in self.graph_factories
            for query in self.queries
            for mode in self.modes
        ]

    def run(self) -> Dict[str, dict]:
        """Plan every case and return ``{case_id: signature}``."""
        from repro.api import GraphflowDB
        from repro.query.catalog_queries import get as get_query

        query_graphs = [get_query(name) for name in self.queries]
        signatures: Dict[str, dict] = {}
        for graph_name, factory in self.graph_factories.items():
            db = GraphflowDB(factory())
            db.build_catalogue(h=self.h, z=self.z, seed=self.seed, queries=query_graphs)
            for query_name, query in zip(self.queries, query_graphs):
                for mode in self.modes:
                    plan = db.plan(query, vectorized=(mode == "vectorized"))
                    signatures[f"{graph_name}/{query_name}/{mode}"] = plan_signature(plan)
        return signatures

    # ------------------------------------------------------------------ #
    def check(self, baseline: Dict[str, dict]) -> List[PlanDiff]:
        """Diff live signatures against a loaded baseline's ``entries``."""
        live = self.run()
        diffs: List[PlanDiff] = []
        for case_id, signature in live.items():
            expected = baseline.get(case_id)
            if expected is None:
                diffs.append(PlanDiff(case_id=case_id, kind="missing_baseline"))
                continue
            for field in ("join_order", "operators", "plan_type", "cost_bucket"):
                if signature.get(field) != expected.get(field):
                    diffs.append(
                        PlanDiff(
                            case_id=case_id,
                            kind="changed",
                            field=field,
                            expected=expected.get(field),
                            actual=signature.get(field),
                        )
                    )
        for case_id in baseline:
            if case_id not in live:
                diffs.append(PlanDiff(case_id=case_id, kind="missing_live"))
        return diffs

    def check_path(self, path: str) -> List[PlanDiff]:
        return self.check(self.load_baseline(path))

    # ------------------------------------------------------------------ #
    @staticmethod
    def load_baseline(path: str) -> Dict[str, dict]:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        version = data.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(f"unsupported plan-regression baseline version: {version!r}")
        return data["entries"]

    def rebaseline(self, path: str) -> Dict[str, dict]:
        """Write the live signatures as the new baseline and return them."""
        entries = self.run()
        payload = {
            "version": BASELINE_VERSION,
            "generator": "repro plans --rebaseline",
            "h": self.h,
            "z": self.z,
            "seed": self.seed,
            "entries": {case_id: entries[case_id] for case_id in sorted(entries)},
        }
        parent = os.path.dirname(os.path.abspath(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        return entries
