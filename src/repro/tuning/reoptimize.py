"""Feedback-driven re-optimization: the *decide* half of the tuning loop.

:class:`~repro.obs.feedback.CardinalityFeedback` aggregates per-cached-plan
q-errors; :meth:`drifting_plans` lists the plans whose latest worst-operator
q-error crossed a threshold.  The :class:`Reoptimizer` walks that list and,
for each drifting plan still in the cache, runs the optimizer again against
*current* statistics.  The old plan is evicted only when the new plan's
estimated cost beats the old plan's cost — both priced by the current cost
model, so the comparison is apples-to-apples — by a configurable margin;
otherwise the cached plan stands (its estimates were wrong but its shape is
still the cheapest known) and only its estimates are refreshed by virtue of
the re-annotation on the next natural re-plan.

Feedback keys for default planning are exactly the plan-cache keys
``(canonical_key, full_enumeration, enable_binary_joins, vectorized)``;
pre-built plans are keyed ``("plan", signature)`` and are skipped — there is
nothing cached to evict for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class ReoptimizationReport:
    """What one maintenance pass did."""

    considered: int = 0
    replanned: int = 0
    plan_changes: int = 0
    skipped_uncached: int = 0
    skipped_unkeyed: int = 0
    details: List[dict] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "considered": self.considered,
            "replanned": self.replanned,
            "plan_changes": self.plan_changes,
            "skipped_uncached": self.skipped_uncached,
            "skipped_unkeyed": self.skipped_unkeyed,
        }


class Reoptimizer:
    """Re-plans drifting cached plans against current statistics.

    Parameters
    ----------
    db:
        The :class:`~repro.api.GraphflowDB` to maintain.
    qerror_threshold:
        Feedback drift threshold handed to ``drifting_plans``.
    cost_margin:
        Install the new plan only when ``new_cost < cost_margin * old_cost``
        (both priced by the current cost model).  Below 1.0 adds hysteresis:
        a marginally cheaper plan is not worth churning the cache for.
    event_sink:
        Optional ``(event_type, **fields)`` callable; receives one
        ``plan_replan`` event per re-planned key.
    """

    def __init__(
        self,
        db,
        qerror_threshold: float = 2.0,
        cost_margin: float = 0.9,
        event_sink=None,
    ) -> None:
        if qerror_threshold < 1.0:
            raise ValueError("qerror_threshold below 1.0 would re-plan everything")
        if not 0.0 < cost_margin <= 1.0:
            raise ValueError("cost_margin must be in (0, 1]")
        self.db = db
        self.qerror_threshold = qerror_threshold
        self.cost_margin = cost_margin
        self.event_sink = event_sink if event_sink is not None else db.obs.emit_event
        # Aggregate counters across passes (stats()); per-pass numbers come
        # back in the report.
        self.replans = 0
        self.plan_changes = 0
        # Keys re-planned whose next full execution should be scored into the
        # tuning_qerror_after histogram (closing the before/after loop).
        self._awaiting_after: dict = {}

    # ------------------------------------------------------------------ #
    def run_once(self) -> ReoptimizationReport:
        """One maintenance pass over the currently drifting plans."""
        db = self.db
        report = ReoptimizationReport()
        self._score_after_observations()
        cache = db.plan_cache
        if cache is None:
            return report
        for key, entry in db.obs.feedback.drifting_plans(self.qerror_threshold):
            report.considered += 1
            if not self._is_plan_cache_key(key):
                report.skipped_unkeyed += 1
                continue
            old_plan = cache.peek(key)
            if old_plan is None:
                # Already invalidated (writes or a catalogue refresh flushed
                # it); the next execution re-plans naturally.  Consume the
                # stale signal so it does not resurface every pass.
                db.obs.feedback.discard(key)
                report.skipped_uncached += 1
                continue
            _, full_enumeration, enable_binary_joins, vectorized = key
            generation = cache.generation
            cost_model = db.cost_model_for(vectorized)
            old_cost = cost_model.plan_cost(old_plan)
            new_plan = db._plan_uncached(
                old_plan.query,
                full_enumeration=full_enumeration,
                enable_binary_joins=enable_binary_joins,
                vectorized=vectorized,
            )
            new_cost = new_plan.estimated_cost
            changed = (
                new_cost == new_cost  # not NaN
                and new_cost < self.cost_margin * old_cost
                and new_plan.signature() != old_plan.signature()
            )
            if changed:
                # Refuse to install if an invalidation raced the re-plan: the
                # new plan was costed against statistics that may be gone.
                changed = cache.put_if_generation(key, new_plan, generation)
            report.replanned += 1
            if changed:
                report.plan_changes += 1
            report.details.append(
                {
                    "query": entry.query_name,
                    "last_q_error": entry.last_q_error,
                    "old_cost": old_cost,
                    "new_cost": new_cost,
                    "changed": changed,
                }
            )
            self.replans += 1
            if changed:
                self.plan_changes += 1
            obs = db.obs
            obs.tuning_replans_total.labels().inc()
            if changed:
                obs.tuning_plan_changes_total.labels().inc()
            if entry.last_q_error > 0:
                obs.tuning_qerror_before.labels().observe(entry.last_q_error)
            self._awaiting_after[key] = entry.executions
            # Consume the drift signal; later executions rebuild it against
            # whatever plan is now cached.
            db.obs.feedback.discard(key)
            if self.event_sink is not None:
                try:
                    self.event_sink(
                        "plan_replan",
                        query=entry.query_name,
                        last_q_error=round(entry.last_q_error, 4),
                        old_cost=round(old_cost, 2),
                        new_cost=round(new_cost, 2) if new_cost == new_cost else None,
                        changed=changed,
                    )
                except Exception:
                    pass
        return report

    # ------------------------------------------------------------------ #
    def _score_after_observations(self) -> None:
        """Fold post-replan executions into the q-error "after" histogram.

        A re-plan's effect is only measurable once the (possibly new) plan
        has executed fully again; the first such execution per re-planned
        key scores one ``tuning_qerror_after`` observation.
        """
        if not self._awaiting_after:
            return
        feedback = self.db.obs.feedback
        scored = []
        for key in list(self._awaiting_after):
            entry = feedback.get(key)
            if entry is not None and entry.executions > 0 and entry.last_q_error > 0:
                self.db.obs.tuning_qerror_after.labels().observe(entry.last_q_error)
                scored.append(key)
        for key in scored:
            self._awaiting_after.pop(key, None)

    @staticmethod
    def _is_plan_cache_key(key) -> bool:
        return (
            isinstance(key, tuple)
            and len(key) == 4
            and isinstance(key[1], bool)
            and isinstance(key[2], bool)
            and isinstance(key[3], bool)
        )

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        return {
            "qerror_threshold": self.qerror_threshold,
            "cost_margin": self.cost_margin,
            "replans": self.replans,
            "plan_changes": self.plan_changes,
            "awaiting_after": len(self._awaiting_after),
        }
