"""Experiment harness: plan spectrums and runners for every table and figure
in the paper's evaluation (Section 8 and Appendices B-D)."""

from repro.experiments.harness import ExperimentRow, format_table
from repro.experiments import spectrum, tables

__all__ = ["ExperimentRow", "format_table", "spectrum", "tables"]
