"""Small utilities shared by the experiment runners: timing, row containers,
and plain-text table rendering matching the layout of the paper's tables."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence


@dataclass
class ExperimentRow:
    """One row of an experiment report."""

    values: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.values[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.values.get(key, default)


@contextmanager
def timed() -> Iterator[Dict[str, float]]:
    """Context manager collecting wall-clock time into ``result['seconds']``."""
    result: Dict[str, float] = {}
    start = time.perf_counter()
    try:
        yield result
    finally:
        result["seconds"] = time.perf_counter() - start


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}" if value < 10 else f"{value:.1f}"
    return str(value)


def format_table(
    rows: Sequence[ExperimentRow] | Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render rows as an aligned plain-text table."""
    dict_rows: List[Dict[str, Any]] = [
        r.values if isinstance(r, ExperimentRow) else dict(r) for r in rows
    ]
    if not dict_rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = []
        for row in dict_rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    widths = {
        c: max(len(str(c)), *(len(_format_value(row.get(c, ""))) for row in dict_rows))
        for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for row in dict_rows:
        lines.append(
            " | ".join(_format_value(row.get(c, "")).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def speedup(baseline_seconds: float, candidate_seconds: float) -> float:
    """How many times faster the candidate is than the baseline."""
    if candidate_seconds <= 0:
        return float("inf")
    return baseline_seconds / candidate_seconds
