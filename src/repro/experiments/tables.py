"""Runners that regenerate every table and figure of the paper's evaluation.

Each function returns a list of row dictionaries (one per table row / figure
point); the benchmarks print them with
:func:`repro.experiments.harness.format_table`.  The structural *shape* of the
paper's results is what these runners reproduce: the datasets are the
scaled-down archetypes of :mod:`repro.datasets` (see DESIGN.md for the
substitution notes), so absolute numbers differ from the paper's.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.cfl import CFLMatcher
from repro.baselines.emptyheaded import EmptyHeadedPlanner
from repro.baselines.naive_matcher import NaiveMatcher
from repro.baselines.postgres_estimator import IndependenceEstimator
from repro.catalogue.construction import build_catalogue
from repro.catalogue.estimation import estimate_cardinality
from repro.catalogue.qerror import q_error, qerror_distribution
from repro.executor.adaptive import execute_adaptive
from repro.executor.operators import ExecutionConfig
from repro.executor.parallel import execute_parallel
from repro.executor.pipeline import execute_plan
from repro.graph.graph import Graph
from repro.planner.cost_model import CostModel
from repro.planner.dp_optimizer import DynamicProgrammingOptimizer
from repro.planner.plan import Plan, wco_plan_from_order
from repro.planner.qvo import enumerate_orderings, enumerate_wco_plans
from repro.query import catalog_queries
from repro.query.generator import all_small_queries, random_query_set
from repro.query.query_graph import QueryGraph


# --------------------------------------------------------------------------- #
# Section 3 demonstration tables
# --------------------------------------------------------------------------- #
def table3_intersection_cache(graph: Graph, query: Optional[QueryGraph] = None) -> List[Dict]:
    """Table 3: runtime of every WCO plan of the diamond-X query with the
    intersection cache enabled vs disabled."""
    query = query or catalog_queries.diamond_x()
    rows: List[Dict] = []
    for plan in enumerate_wco_plans(query):
        ordering = "".join(plan.qvo() or ())
        with_cache = execute_plan(plan, graph, ExecutionConfig(enable_intersection_cache=True))
        without_cache = execute_plan(plan, graph, ExecutionConfig(enable_intersection_cache=False))
        rows.append(
            {
                "qvo": ordering,
                "cache_on_s": with_cache.profile.elapsed_seconds,
                "cache_off_s": without_cache.profile.elapsed_seconds,
                "cache_hits": with_cache.profile.cache_hits,
                "speedup": (
                    without_cache.profile.elapsed_seconds
                    / max(with_cache.profile.elapsed_seconds, 1e-9)
                ),
                "matches": with_cache.num_matches,
            }
        )
    rows.sort(key=lambda r: r["cache_on_s"])
    return rows


def _qvo_rows(query: QueryGraph, graphs: Dict[str, Graph], cache: bool = True) -> List[Dict]:
    rows: List[Dict] = []
    config = ExecutionConfig(enable_intersection_cache=cache)
    for graph_name, graph in graphs.items():
        for plan in enumerate_wco_plans(query):
            result = execute_plan(plan, graph, config)
            rows.append(
                {
                    "graph": graph_name,
                    "qvo": "".join(plan.qvo() or ()),
                    "time_s": result.profile.elapsed_seconds,
                    "partial_matches": result.profile.intermediate_matches,
                    "i_cost": result.profile.intersection_cost,
                    "matches": result.num_matches,
                }
            )
    rows.sort(key=lambda r: (r["graph"], r["time_s"]))
    return rows


def table4_asymmetric_triangle(graphs: Dict[str, Graph]) -> List[Dict]:
    """Table 4: runtime / intermediate matches / i-cost of the three
    asymmetric-triangle QVOs (list-direction effects)."""
    return _qvo_rows(catalog_queries.asymmetric_triangle(), graphs)


def table5_tailed_triangle(graphs: Dict[str, Graph]) -> List[Dict]:
    """Table 5: EDGE-TRIANGLE vs EDGE-2PATH orderings of the tailed triangle
    (intermediate-result effects); caching disabled as in the paper."""
    return _qvo_rows(catalog_queries.tailed_triangle(), graphs, cache=False)


def table6_symmetric_diamond_x(graphs: Dict[str, Graph]) -> List[Dict]:
    """Table 6: cache-utilising vs cache-oblivious orderings of the symmetric
    diamond-X query."""
    return _qvo_rows(catalog_queries.symmetric_diamond_x(), graphs)


# --------------------------------------------------------------------------- #
# Table 9: Graphflow vs EmptyHeaded
# --------------------------------------------------------------------------- #
def table9_emptyheaded_comparison(
    graphs: Dict[str, Graph],
    query_names: Sequence[str] = ("Q1", "Q3", "Q5", "Q8"),
    edge_label_counts: Sequence[int] = (1, 2),
    catalogue_z: int = 200,
    time_limit: float = 120.0,
) -> List[Dict]:
    """Table 9: Graphflow's plan vs EmptyHeaded with bad (lexicographic) and
    good (Graphflow-chosen) per-bag orderings."""
    rows: List[Dict] = []
    eh = EmptyHeadedPlanner()
    for graph_name, graph in graphs.items():
        catalogue = build_catalogue(graph, z=catalogue_z)
        cost_model = CostModel(graph, catalogue)
        optimizer = DynamicProgrammingOptimizer(cost_model)
        for qname in query_names:
            base_query = catalog_queries.get(qname)
            for labels in edge_label_counts:
                query = (
                    base_query
                    if labels <= 1
                    else base_query.with_random_edge_labels(labels, seed=1)
                )
                run_graph = graph
                if labels > 1:
                    from repro.graph.labeling import with_random_edge_labels

                    run_graph = with_random_edge_labels(graph, labels, seed=1)
                row: Dict = {
                    "graph": graph_name,
                    "query": query.name,
                }
                gf_plan = optimizer.optimize(query)
                gf = execute_plan(gf_plan, run_graph)
                row["graphflow_s"] = gf.profile.elapsed_seconds
                row["matches"] = gf.num_matches
                try:
                    eh_bad = eh.plan(query)
                    bad = execute_plan(eh_bad.plan, run_graph)
                    row["eh_bad_s"] = bad.profile.elapsed_seconds
                except Exception as exc:  # GHD may not exist (paper: TL / Mem)
                    row["eh_bad_s"] = float("nan")
                    row["eh_note"] = type(exc).__name__
                try:
                    eh_good = eh.plan_with_good_orderings(query, cost_model)
                    good = execute_plan(eh_good.plan, run_graph)
                    row["eh_good_s"] = good.profile.elapsed_seconds
                except Exception as exc:
                    row["eh_good_s"] = float("nan")
                    row["eh_note"] = type(exc).__name__
                rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Appendix B: catalogue accuracy (Tables 10 and 11)
# --------------------------------------------------------------------------- #
def _true_cardinalities(
    graph: Graph, queries: Sequence[QueryGraph]
) -> List[Tuple[QueryGraph, int]]:
    results = []
    for query in queries:
        orderings = enumerate_orderings(query, limit=1)
        if not orderings:
            continue
        plan = wco_plan_from_order(query, orderings[0])
        results.append((query, execute_plan(plan, graph).num_matches))
    return results


def table10_catalogue_sample_size(
    graph: Graph,
    z_values: Sequence[int] = (100, 500, 1000),
    h: int = 3,
    num_queries: int = 24,
    query_vertices: int = 5,
    num_edge_labels: int = 1,
    seed: int = 0,
) -> List[Dict]:
    """Table 10: catalogue construction time and q-error distribution as the
    sampling size z grows."""
    queries = all_small_queries(
        query_vertices, max_queries=num_queries, seed=seed, num_edge_labels=num_edge_labels
    )
    truths = _true_cardinalities(graph, queries)
    rows: List[Dict] = []
    for z in z_values:
        catalogue = build_catalogue(graph, h=h, z=z, seed=seed, queries=[q for q, _ in truths])
        pairs = [
            (estimate_cardinality(catalogue, query, graph), truth) for query, truth in truths
        ]
        distribution = qerror_distribution(pairs)
        row = {"z": z, "build_s": catalogue.construction_seconds}
        row.update(distribution)
        rows.append(row)
    return rows


def table11_catalogue_h(
    graph: Graph,
    h_values: Sequence[int] = (2, 3, 4),
    z: int = 500,
    num_queries: int = 24,
    query_vertices: int = 5,
    num_edge_labels: int = 1,
    seed: int = 0,
) -> List[Dict]:
    """Table 11: q-error distribution and catalogue size as h grows, with the
    independence-assumption (PostgreSQL-style) estimator as a baseline."""
    queries = all_small_queries(
        query_vertices, max_queries=num_queries, seed=seed, num_edge_labels=num_edge_labels
    )
    truths = _true_cardinalities(graph, queries)
    rows: List[Dict] = []
    for h in h_values:
        catalogue = build_catalogue(graph, h=h, z=z, seed=seed, queries=[q for q, _ in truths])
        pairs = [
            (estimate_cardinality(catalogue, query, graph), truth) for query, truth in truths
        ]
        row = {"estimator": f"catalogue h={h}", "entries": catalogue.num_entries}
        row.update(qerror_distribution(pairs))
        rows.append(row)
    postgres = IndependenceEstimator(graph)
    pairs = [(postgres.estimate(query), truth) for query, truth in truths]
    row = {"estimator": "independence (PostgreSQL-style)", "entries": 0}
    row.update(qerror_distribution(pairs))
    rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Appendix C: CFL comparison (Table 12)
# --------------------------------------------------------------------------- #
def table12_cfl_comparison(
    graph: Graph,
    query_vertex_counts: Sequence[int] = (6, 8, 10),
    queries_per_set: int = 5,
    output_limit: int = 10_000,
    num_vertex_labels: int = 20,
    seed: int = 0,
    catalogue_z: int = 200,
) -> List[Dict]:
    """Table 12: Graphflow vs (simplified) CFL on random sparse and dense
    labeled query sets, with an output-size limit.

    The paper uses 10/15/20-vertex queries with 10^5 and 10^8 output limits on
    the CFL 'human' dataset; the reproduction defaults scale those down so the
    pure-Python runtime stays in seconds, but the parameters are exposed.
    """
    catalogue = build_catalogue(graph, z=catalogue_z)
    cost_model = CostModel(graph, catalogue)
    optimizer = DynamicProgrammingOptimizer(cost_model, large_query_threshold=8)
    cfl = CFLMatcher(graph)
    config = ExecutionConfig(isomorphism=True, output_limit=output_limit)
    rows: List[Dict] = []
    for dense in (False, True):
        for num_vertices in query_vertex_counts:
            queries = random_query_set(
                queries_per_set,
                num_vertices,
                dense=dense,
                seed=seed,
                num_vertex_labels=num_vertex_labels,
            )
            gf_times, cfl_times = [], []
            for query in queries:
                try:
                    plan = optimizer.optimize(query)
                except Exception:
                    plan = wco_plan_from_order(query, enumerate_orderings(query, limit=1)[0])
                gf = execute_plan(plan, graph, config)
                gf_times.append(gf.profile.elapsed_seconds)
                cfl_result = cfl.count_matches(query, output_limit=output_limit)
                cfl_times.append(cfl_result.elapsed_seconds)
            rows.append(
                {
                    "query_set": f"Q{num_vertices}{'d' if dense else 's'}",
                    "output_limit": output_limit,
                    "graphflow_avg_s": float(np.mean(gf_times)),
                    "cfl_avg_s": float(np.mean(cfl_times)),
                    "ratio": float(np.mean(cfl_times) / max(np.mean(gf_times), 1e-9)),
                }
            )
    return rows


# --------------------------------------------------------------------------- #
# Appendix D: Neo4j comparison (Table 13)
# --------------------------------------------------------------------------- #
def table13_neo4j_comparison(
    graphs: Dict[str, Graph],
    query_names: Sequence[str] = ("Q1", "Q2", "Q4"),
    catalogue_z: int = 200,
    time_limit: float = 60.0,
) -> List[Dict]:
    """Table 13: Graphflow vs the naive binary-join engine (Neo4j stand-in)."""
    rows: List[Dict] = []
    for graph_name, graph in graphs.items():
        catalogue = build_catalogue(graph, z=catalogue_z)
        cost_model = CostModel(graph, catalogue)
        optimizer = DynamicProgrammingOptimizer(cost_model)
        naive = NaiveMatcher(graph)
        for qname in query_names:
            query = catalog_queries.get(qname)
            plan = optimizer.optimize(query)
            gf = execute_plan(plan, graph)
            naive_result = naive.count_matches(query, time_limit=time_limit)
            rows.append(
                {
                    "graph": graph_name,
                    "query": qname,
                    "graphflow_s": gf.profile.elapsed_seconds,
                    "neo4j_stand_in_s": naive_result.elapsed_seconds,
                    "ratio": naive_result.elapsed_seconds
                    / max(gf.profile.elapsed_seconds, 1e-9),
                    "timed_out": naive_result.truncated,
                }
            )
    return rows


# --------------------------------------------------------------------------- #
# Figure 11: scalability
# --------------------------------------------------------------------------- #
def figure11_scalability(
    graph: Graph,
    query: Optional[QueryGraph] = None,
    worker_counts: Sequence[int] = (1, 2, 4, 8),
    catalogue_z: int = 200,
) -> List[Dict]:
    """Figure 11: runtime vs number of workers for one query.

    Reports both measured wall-clock (bounded by the GIL for Python-level
    work) and the work-based speed-up implied by the morsel partition, which
    corresponds to the near-linear scaling the paper measures on the JVM.
    """
    query = query or catalog_queries.triangle()
    catalogue = build_catalogue(graph, z=catalogue_z)
    cost_model = CostModel(graph, catalogue)
    plan = DynamicProgrammingOptimizer(cost_model, enable_binary_joins=False).optimize(query)
    rows: List[Dict] = []
    baseline: Optional[float] = None
    for workers in worker_counts:
        result = execute_parallel(plan, graph, num_workers=workers)
        if baseline is None:
            baseline = result.elapsed_seconds
        rows.append(
            {
                "workers": workers,
                "elapsed_s": result.elapsed_seconds,
                "measured_speedup": baseline / max(result.elapsed_seconds, 1e-9),
                "work_based_speedup": result.work_based_speedup,
                "matches": result.num_matches,
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Figure 8 helper: adaptive vs fixed comparison rows
# --------------------------------------------------------------------------- #
def figure8_adaptive_rows(
    graph: Graph,
    query: QueryGraph,
    catalogue_z: int = 200,
    max_plans: int = 24,
) -> List[Dict]:
    """Fixed vs adaptive runtime for every WCO plan of a query (Figure 8)."""
    catalogue = build_catalogue(graph, z=catalogue_z)
    rows: List[Dict] = []
    plans = enumerate_wco_plans(query)[:max_plans]
    for plan in plans:
        fixed = execute_plan(plan, graph)
        adaptive = execute_adaptive(plan, graph, catalogue=catalogue)
        rows.append(
            {
                "qvo": "".join(plan.qvo() or ()),
                "fixed_s": fixed.profile.elapsed_seconds,
                "adaptive_s": adaptive.profile.elapsed_seconds,
                "improvement": fixed.profile.elapsed_seconds
                / max(adaptive.profile.elapsed_seconds, 1e-9),
                "matches_fixed": fixed.num_matches,
                "matches_adaptive": adaptive.num_matches,
            }
        )
    return rows
