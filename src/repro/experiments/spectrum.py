"""Plan-spectrum generation (Figures 7, 8, and 9).

A *plan spectrum* runs every plan of a query (WCO plans = one per QVO, plus
the BJ and hybrid plans the full plan space contains) and records their
runtimes, so that the plan the optimizer picks can be placed inside the
distribution.  Figure 8 repeats the exercise with adaptive ordering selection,
and Figure 9 does it for the EmptyHeaded plan space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.catalogue.catalogue import SubgraphCatalogue
from repro.executor.adaptive import execute_adaptive
from repro.executor.operators import ExecutionConfig
from repro.executor.pipeline import execute_plan
from repro.graph.graph import Graph
from repro.planner.full_enumeration import PlanSpaceEnumerator
from repro.planner.plan import Plan
from repro.planner.qvo import enumerate_wco_plans
from repro.query.query_graph import QueryGraph


@dataclass
class SpectrumPoint:
    """One executed plan inside a spectrum."""

    plan: Plan
    plan_type: str
    seconds: float
    num_matches: int
    i_cost: int
    intermediate_matches: int
    is_optimizer_choice: bool = False
    adaptive: bool = False


@dataclass
class Spectrum:
    """All executed plans of one query on one graph."""

    query_name: str
    graph_name: str
    points: List[SpectrumPoint] = field(default_factory=list)

    def by_type(self) -> Dict[str, List[SpectrumPoint]]:
        grouped: Dict[str, List[SpectrumPoint]] = {}
        for p in self.points:
            grouped.setdefault(p.plan_type, []).append(p)
        return grouped

    @property
    def best(self) -> SpectrumPoint:
        return min(self.points, key=lambda p: p.seconds)

    @property
    def worst(self) -> SpectrumPoint:
        return max(self.points, key=lambda p: p.seconds)

    @property
    def optimizer_choice(self) -> Optional[SpectrumPoint]:
        for p in self.points:
            if p.is_optimizer_choice:
                return p
        return None

    def optimality_ratio(self) -> float:
        """How far the optimizer's plan is from the fastest plan (1.0 = optimal)."""
        chosen = self.optimizer_choice
        if chosen is None or self.best.seconds <= 0:
            return float("nan")
        return chosen.seconds / self.best.seconds

    def summary(self) -> str:
        counts = {k: len(v) for k, v in self.by_type().items()}
        ratio = self.optimality_ratio()
        return (
            f"{self.query_name} on {self.graph_name}: {counts}, "
            f"best={self.best.seconds:.3f}s worst={self.worst.seconds:.3f}s "
            f"optimizer-within={ratio:.2f}x"
        )


def _plan_matches_signature(plan: Plan, chosen: Optional[Plan]) -> bool:
    return chosen is not None and plan.signature() == chosen.signature()


def generate_spectrum(
    query: QueryGraph,
    graph: Graph,
    catalogue: Optional[SubgraphCatalogue] = None,
    chosen_plan: Optional[Plan] = None,
    include_hybrid: bool = True,
    max_plans: int = 120,
    config: Optional[ExecutionConfig] = None,
    adaptive: bool = False,
) -> Spectrum:
    """Run (up to ``max_plans``) plans of ``query`` on ``graph``.

    ``chosen_plan`` marks the optimizer's pick inside the spectrum.  With
    ``adaptive=True`` each plan is executed with adaptive ordering selection
    (the Figure 8 variant).
    """
    config = config or ExecutionConfig()
    plans: List[Plan] = list(enumerate_wco_plans(query))
    if include_hybrid:
        enumerator = PlanSpaceEnumerator(query, enable_binary_joins=True)
        seen = {p.signature() for p in plans}
        for plan in enumerator.all_plans():
            if plan.signature() not in seen:
                seen.add(plan.signature())
                plans.append(plan)
    if len(plans) > max_plans:
        # Truncate while preserving plan-type diversity: round-robin across
        # WCO / hybrid / BJ plans, so the hybrid plans of larger queries (the
        # best plans for e.g. Q8) are not pushed out by the many WCO orderings.
        buckets: Dict[str, List[Plan]] = {}
        for p in plans:
            buckets.setdefault(p.plan_type, []).append(p)
        ordered_buckets = [buckets[t] for t in ("wco", "hybrid", "bj") if t in buckets]
        selected: List[Plan] = []
        depth = 0
        while len(selected) < max_plans and any(depth < len(b) for b in ordered_buckets):
            for bucket in ordered_buckets:
                if depth < len(bucket) and len(selected) < max_plans:
                    selected.append(bucket[depth])
            depth += 1
        plans = selected
    if chosen_plan is not None and all(
        p.signature() != chosen_plan.signature() for p in plans
    ):
        # Always include (and therefore mark) the optimizer's pick, even when
        # the enumerated spectrum was truncated.
        plans.append(chosen_plan)

    spectrum = Spectrum(query_name=query.name, graph_name=graph.name)
    for plan in plans:
        if adaptive:
            result = execute_adaptive(plan, graph, catalogue=catalogue, config=config)
        else:
            result = execute_plan(plan, graph, config=config)
        spectrum.points.append(
            SpectrumPoint(
                plan=plan,
                plan_type=plan.plan_type,
                seconds=result.profile.elapsed_seconds,
                num_matches=result.num_matches,
                i_cost=result.profile.intersection_cost,
                intermediate_matches=result.profile.intermediate_matches,
                is_optimizer_choice=_plan_matches_signature(plan, chosen_plan),
                adaptive=adaptive,
            )
        )
    return spectrum


def generate_emptyheaded_spectrum(
    query: QueryGraph,
    graph: Graph,
    max_plans: int = 60,
    config: Optional[ExecutionConfig] = None,
) -> Spectrum:
    """Figure 9: the runtimes of every EmptyHeaded plan (all minimum-width
    GHDs x all per-bag orderings)."""
    from repro.baselines.emptyheaded import EmptyHeadedPlanner

    config = config or ExecutionConfig()
    planner = EmptyHeadedPlanner()
    spectrum = Spectrum(query_name=query.name, graph_name=graph.name)
    for eh_plan in planner.plan_spectrum(query, max_plans=max_plans):
        result = execute_plan(eh_plan.plan, graph, config=config)
        spectrum.points.append(
            SpectrumPoint(
                plan=eh_plan.plan,
                plan_type="emptyheaded",
                seconds=result.profile.elapsed_seconds,
                num_matches=result.num_matches,
                i_cost=result.profile.intersection_cost,
                intermediate_matches=result.profile.intermediate_matches,
            )
        )
    return spectrum
