"""Continuous (incremental) evaluation of subgraph queries.

Graphflow, the system the paper's optimizer is built into, is an *active*
graph database [18]: applications register subgraph queries once and are told
how the set of matches changes as edges are inserted into or deleted from the
graph (e.g. "alert when a new transaction closes a fraud cycle").  The paper
itself evaluates one-time queries only; this subpackage implements the
incremental side so the reproduction covers the substrate system's headline
capability.

The implementation uses the standard delta-rule for multiway joins, evaluated
with the same query-vertex-at-a-time intersections as the one-time engine; see
:mod:`repro.continuous.engine`.
"""

from repro.continuous.engine import ContinuousQueryEngine, DeltaResult

__all__ = ["ContinuousQueryEngine", "DeltaResult"]
