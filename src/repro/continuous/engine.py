"""Incremental maintenance of subgraph-query match counts.

A registered query ``Q`` with query edges ``qe_1, ..., qe_n`` is a multiway
self-join over the edge relation ``E``.  When a batch of edges ``ΔE`` is
inserted, the change in the match set is given by the classic delta rule:

    ΔQ = Σ_j  Q(E_new, ..., E_new, ΔE, E_old, ..., E_old)
                ( positions < j )   (j)  ( positions > j )

i.e. one term per query edge position ``j``, in which query edges before ``j``
read the *post-update* edge set, position ``j`` reads only the inserted edges,
and positions after ``j`` read the *pre-update* edge set.  Every new match is
produced by exactly one term (the term of its first query-edge position bound
to an inserted edge), so the terms can simply be summed.  Deletions use the
same rule evaluated against the pre-/post-deletion graphs with a negative
sign.

Each term is evaluated query-vertex-at-a-time: the delta edge seeds the two
endpoints of ``qe_j``, and the remaining query vertices are matched by
intersecting adjacency lists — the same computation the one-time WCO plans
perform, except that each adjacency list is read from the old or the new graph
depending on the position of the query edge it represents.

This is the algorithmic core of Graphflow's active queries [18] (and of
BiGJoin's incremental dataflows [6]).  The storage substrate is the
delta-CSR :class:`~repro.storage.dynamic.DynamicGraph`: applying a batch
appends sorted per-vertex deltas and bumps the version — no adjacency-index
rebuild — and the pre-/post-update states the delta rule reads are O(1) MVCC
:meth:`~repro.storage.dynamic.DynamicGraph.snapshot` views, so the cost of an
update batch is proportional to the matches it touches, not to the graph.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import GraphConstructionError, InvalidQueryError, ReproError
from repro.executor.pipeline import execute_plan
from repro.graph.graph import Direction, Graph
from repro.graph.intersect import intersect_multiway
from repro.planner.plan import wco_plan_from_order
from repro.planner.qvo import enumerate_orderings
from repro.query.query_graph import QueryEdge, QueryGraph
from repro.storage.dynamic import DynamicGraph, normalize_edges
from repro.storage.snapshot import GraphSnapshot

Edge = Tuple[int, int, int]

#: Anything the delta terms can read adjacency from.
GraphView = Union[Graph, GraphSnapshot]


class ContinuousQueryError(ReproError):
    """Raised for invalid updates or unregistered queries."""


# --------------------------------------------------------------------------- #
# results
# --------------------------------------------------------------------------- #
@dataclass
class DeltaResult:
    """Change report for one registered query after one update batch."""

    query_name: str
    delta: int
    total: int
    inserted_edges: int = 0
    deleted_edges: int = 0
    elapsed_seconds: float = 0.0

    def __repr__(self) -> str:
        sign = "+" if self.delta >= 0 else ""
        return (
            f"DeltaResult({self.query_name!r}, delta={sign}{self.delta}, "
            f"total={self.total})"
        )


@dataclass
class _RegisteredQuery:
    query: QueryGraph
    total: int
    orderings: Dict[Tuple[str, str], Tuple[str, ...]] = field(default_factory=dict)


# --------------------------------------------------------------------------- #
# the engine
# --------------------------------------------------------------------------- #
class ContinuousQueryEngine:
    """Maintains match counts of registered queries under edge updates.

    Example
    -------
    >>> from repro.graph.builder import GraphBuilder
    >>> from repro.query import catalog_queries
    >>> g = GraphBuilder().add_edge(0, 1).add_edge(1, 2).build()
    >>> engine = ContinuousQueryEngine(g)
    >>> engine.register("triangles", catalog_queries.q1())
    0
    >>> engine.insert_edges([(0, 2)])[0].delta
    1
    """

    def __init__(self, graph: Union[Graph, DynamicGraph]) -> None:
        self._dynamic = graph if isinstance(graph, DynamicGraph) else DynamicGraph(graph)
        self._queries: Dict[str, _RegisteredQuery] = {}

    @property
    def graph(self) -> DynamicGraph:
        """The engine's mutable graph (shared when one was passed in)."""
        return self._dynamic

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(self, name: str, query: QueryGraph) -> int:
        """Register ``query`` under ``name`` and return its current match count."""
        if name in self._queries:
            raise ContinuousQueryError(f"a query named {name!r} is already registered")
        if not query.is_connected():
            raise InvalidQueryError(f"query {query.name} must be connected")
        total = self._full_count(query)
        self._queries[name] = _RegisteredQuery(query=query, total=total)
        return total

    def deregister(self, name: str) -> None:
        if name not in self._queries:
            raise ContinuousQueryError(f"no query named {name!r} is registered")
        del self._queries[name]

    @property
    def registered_queries(self) -> Dict[str, QueryGraph]:
        return {name: entry.query for name, entry in self._queries.items()}

    def current_count(self, name: str) -> int:
        if name not in self._queries:
            raise ContinuousQueryError(f"no query named {name!r} is registered")
        return self._queries[name].total

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def insert_edges(self, edges: Iterable[Tuple[int, ...]]) -> List[DeltaResult]:
        """Insert a batch of edges and return one :class:`DeltaResult` per query.

        Edges already present (same source, destination, and label) are
        ignored.  New vertices referenced by the batch are created with
        label 0.
        """
        batch = self._normalize(edges)
        old = self._dynamic.snapshot()
        applied = self._dynamic.add_edges(batch)
        if not applied:
            return self._unchanged_results()
        new = self._dynamic.snapshot()
        results = []
        for name, entry in self._queries.items():
            start = time.perf_counter()
            delta = self._delta_count(entry, old=old, new=new, delta_edges=applied)
            entry.total += delta
            results.append(
                DeltaResult(
                    query_name=name,
                    delta=delta,
                    total=entry.total,
                    inserted_edges=len(applied),
                    elapsed_seconds=time.perf_counter() - start,
                )
            )
        return results

    def delete_edges(self, edges: Iterable[Tuple[int, ...]]) -> List[DeltaResult]:
        """Delete a batch of edges and return one :class:`DeltaResult` per query.

        Edges not present are ignored.
        """
        batch = self._normalize(edges)
        before = self._dynamic.snapshot()
        applied = self._dynamic.delete_edges(batch)
        if not applied:
            return self._unchanged_results()
        after = self._dynamic.snapshot()
        results = []
        for name, entry in self._queries.items():
            start = time.perf_counter()
            # Matches lost are exactly the matches gained when re-inserting the
            # batch into the post-deletion graph.
            delta = self._delta_count(entry, old=after, new=before, delta_edges=applied)
            entry.total -= delta
            results.append(
                DeltaResult(
                    query_name=name,
                    delta=-delta,
                    total=entry.total,
                    deleted_edges=len(applied),
                    elapsed_seconds=time.perf_counter() - start,
                )
            )
        return results

    # ------------------------------------------------------------------ #
    # internals: edge batches
    # ------------------------------------------------------------------ #
    @staticmethod
    def _normalize(edges: Iterable[Tuple[int, ...]]) -> List[Edge]:
        """Shared storage-layer normalization, re-raised under this module's
        error type for API stability."""
        try:
            return normalize_edges(edges)
        except GraphConstructionError as exc:
            raise ContinuousQueryError(str(exc)) from exc

    # ------------------------------------------------------------------ #
    # internals: counting
    # ------------------------------------------------------------------ #
    def _full_count(self, query: QueryGraph) -> int:
        snapshot = self._dynamic.snapshot()
        if snapshot.num_edges == 0:
            return 0
        for ordering in enumerate_orderings(query):
            try:
                plan = wco_plan_from_order(query, ordering)
            except Exception:
                continue
            return execute_plan(plan, snapshot).num_matches
        raise InvalidQueryError(f"query {query.name} admits no connected ordering")

    def _ordering_for(
        self, entry: _RegisteredQuery, seed_edge: QueryEdge
    ) -> Tuple[str, ...]:
        """A connected ordering of the query starting with ``seed_edge``'s
        endpoints (cached per registered query)."""
        key = (seed_edge.src, seed_edge.dst)
        cached = entry.orderings.get(key)
        if cached is not None:
            return cached
        orderings = enumerate_orderings(entry.query, prefix=[seed_edge.src, seed_edge.dst], limit=1)
        if not orderings:
            raise InvalidQueryError(
                f"query {entry.query.name} has no connected ordering starting at "
                f"{seed_edge.src}, {seed_edge.dst}"
            )
        entry.orderings[key] = orderings[0]
        return orderings[0]

    def _delta_count(
        self,
        entry: _RegisteredQuery,
        old: GraphView,
        new: GraphView,
        delta_edges: Sequence[Edge],
    ) -> int:
        """Matches present in ``new`` but not in ``old`` (``old ⊆ new``)."""
        query = entry.query
        query_edges = list(query.edges)
        total = 0
        for position, seed_edge in enumerate(query_edges):
            ordering = self._ordering_for(entry, seed_edge)
            for src, dst, label in delta_edges:
                if seed_edge.label is not None and seed_edge.label != label:
                    continue
                if not self._vertex_label_ok(new, src, query.vertex_label(seed_edge.src)):
                    continue
                if not self._vertex_label_ok(new, dst, query.vertex_label(seed_edge.dst)):
                    continue
                total += self._count_with_seed(
                    query, query_edges, position, ordering, (src, dst), old, new
                )
        return total

    @staticmethod
    def _vertex_label_ok(graph: GraphView, vertex: int, label: Optional[int]) -> bool:
        if label is None:
            return True
        if vertex >= graph.num_vertices:
            return False
        return graph.vertex_label(vertex) == label

    def _graph_for_position(
        self, position: int, seed_position: int, old: GraphView, new: GraphView
    ) -> GraphView:
        """Delta-rule role of a query edge: before the seed position read the
        new graph, after it read the old graph (the seed edge itself is bound
        to the delta edge)."""
        return new if position < seed_position else old

    def _count_with_seed(
        self,
        query: QueryGraph,
        query_edges: List[QueryEdge],
        seed_position: int,
        ordering: Tuple[str, ...],
        seed_binding: Tuple[int, int],
        old: GraphView,
        new: GraphView,
    ) -> int:
        """Count matches with the seed query edge bound to ``seed_binding``,
        other query edges reading old/new according to the delta rule."""
        seed_edge = query_edges[seed_position]
        binding: Dict[str, int] = {
            seed_edge.src: seed_binding[0],
            seed_edge.dst: seed_binding[1],
        }
        position_of = {
            (e.src, e.dst, e.label): i for i, e in enumerate(query_edges)
        }

        def edge_graph(edge: QueryEdge) -> GraphView:
            position = position_of[(edge.src, edge.dst, edge.label)]
            return self._graph_for_position(position, seed_position, old, new)

        # Verify query edges already fully bound by the seed (parallel edges or
        # the reciprocal edge of the seed pair).
        for edge in query_edges:
            if edge is seed_edge:
                continue
            if edge.src in binding and edge.dst in binding:
                graph = edge_graph(edge)
                if not self._has_edge(graph, binding[edge.src], binding[edge.dst], edge.label):
                    return 0

        order = [v for v in ordering if v not in binding]

        def extend(index: int) -> int:
            if index == len(order):
                return 1
            target = order[index]
            target_label = query.vertex_label(target)
            lists = []
            for edge in query.edges_touching(target):
                other = edge.other(target)
                if other not in binding:
                    continue
                graph = edge_graph(edge)
                source_vertex = binding[other]
                if source_vertex >= graph.num_vertices:
                    # The bound vertex was created by this batch, so it has no
                    # adjacency in the pre-update graph: the intersection is empty.
                    return 0
                direction = Direction.FORWARD if edge.src == other else Direction.BACKWARD
                adjacency = graph.neighbors(
                    source_vertex, direction, edge.label, target_label
                )
                lists.append(adjacency)
            if not lists:
                # Should not happen for connected orderings, but guard anyway.
                return 0
            extensions = lists[0] if len(lists) == 1 else intersect_multiway(lists)
            produced = 0
            for vertex in extensions:
                binding[target] = int(vertex)
                produced += extend(index + 1)
                del binding[target]
            return produced

        count = extend(0)
        return count

    @staticmethod
    def _has_edge(graph: GraphView, src: int, dst: int, label: Optional[int]) -> bool:
        if src >= graph.num_vertices or dst >= graph.num_vertices:
            return False
        return graph.has_edge(src, dst, label)

    # ------------------------------------------------------------------ #
    def _unchanged_results(self) -> List[DeltaResult]:
        return [
            DeltaResult(query_name=name, delta=0, total=entry.total)
            for name, entry in self._queries.items()
        ]

    def __repr__(self) -> str:
        return (
            f"ContinuousQueryEngine(graph={self.graph.name!r}, "
            f"edges={self.graph.num_edges}, queries={list(self._queries)})"
        )


__all__ = ["ContinuousQueryEngine", "DeltaResult", "ContinuousQueryError"]
