"""Incremental maintenance of subgraph-query match counts.

A registered query ``Q`` with query edges ``qe_1, ..., qe_n`` is a multiway
self-join over the edge relation ``E``.  When a batch of edges ``ΔE`` is
inserted, the change in the match set is given by the classic delta rule:

    ΔQ = Σ_j  Q(E_new, ..., E_new, ΔE, E_old, ..., E_old)
                ( positions < j )   (j)  ( positions > j )

i.e. one term per query edge position ``j``, in which query edges before ``j``
read the *post-update* edge set, position ``j`` reads only the inserted edges,
and positions after ``j`` read the *pre-update* edge set.  Every new match is
produced by exactly one term (the term of its first query-edge position bound
to an inserted edge), so the terms can simply be summed.  Deletions use the
same rule evaluated against the pre-/post-deletion graphs with a negative
sign.

Each term is evaluated query-vertex-at-a-time: the delta edge seeds the two
endpoints of ``qe_j``, and the remaining query vertices are matched by
intersecting adjacency lists — the same computation the one-time WCO plans
perform, except that each adjacency list is read from the old or the new graph
depending on the position of the query edge it represents.

This is the algorithmic core of Graphflow's active queries [18] (and of
BiGJoin's incremental dataflows [6]).  The storage substrate here is the
immutable :class:`~repro.graph.graph.Graph`, so applying a batch rebuilds the
adjacency index; the delta *computation* itself only touches the matches that
involve inserted or deleted edges.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidQueryError, ReproError
from repro.executor.pipeline import execute_plan
from repro.graph.graph import Direction, Graph
from repro.graph.intersect import intersect_multiway
from repro.planner.plan import wco_plan_from_order
from repro.planner.qvo import enumerate_orderings
from repro.query.query_graph import QueryEdge, QueryGraph

Edge = Tuple[int, int, int]


class ContinuousQueryError(ReproError):
    """Raised for invalid updates or unregistered queries."""


# --------------------------------------------------------------------------- #
# results
# --------------------------------------------------------------------------- #
@dataclass
class DeltaResult:
    """Change report for one registered query after one update batch."""

    query_name: str
    delta: int
    total: int
    inserted_edges: int = 0
    deleted_edges: int = 0
    elapsed_seconds: float = 0.0

    def __repr__(self) -> str:
        sign = "+" if self.delta >= 0 else ""
        return (
            f"DeltaResult({self.query_name!r}, delta={sign}{self.delta}, "
            f"total={self.total})"
        )


@dataclass
class _RegisteredQuery:
    query: QueryGraph
    total: int
    orderings: Dict[Tuple[str, str], Tuple[str, ...]] = field(default_factory=dict)


# --------------------------------------------------------------------------- #
# the engine
# --------------------------------------------------------------------------- #
class ContinuousQueryEngine:
    """Maintains match counts of registered queries under edge updates.

    Example
    -------
    >>> from repro.graph.builder import GraphBuilder
    >>> from repro.query import catalog_queries
    >>> g = GraphBuilder().add_edge(0, 1).add_edge(1, 2).build()
    >>> engine = ContinuousQueryEngine(g)
    >>> engine.register("triangles", catalog_queries.q1())
    0
    >>> engine.insert_edges([(0, 2)])[0].delta
    1
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self._queries: Dict[str, _RegisteredQuery] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(self, name: str, query: QueryGraph) -> int:
        """Register ``query`` under ``name`` and return its current match count."""
        if name in self._queries:
            raise ContinuousQueryError(f"a query named {name!r} is already registered")
        if not query.is_connected():
            raise InvalidQueryError(f"query {query.name} must be connected")
        total = self._full_count(query)
        self._queries[name] = _RegisteredQuery(query=query, total=total)
        return total

    def deregister(self, name: str) -> None:
        if name not in self._queries:
            raise ContinuousQueryError(f"no query named {name!r} is registered")
        del self._queries[name]

    @property
    def registered_queries(self) -> Dict[str, QueryGraph]:
        return {name: entry.query for name, entry in self._queries.items()}

    def current_count(self, name: str) -> int:
        if name not in self._queries:
            raise ContinuousQueryError(f"no query named {name!r} is registered")
        return self._queries[name].total

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def insert_edges(self, edges: Iterable[Tuple[int, ...]]) -> List[DeltaResult]:
        """Insert a batch of edges and return one :class:`DeltaResult` per query.

        Edges already present (same source, destination, and label) are
        ignored.  New vertices referenced by the batch are created with
        label 0.
        """
        batch = self._normalize(edges)
        batch = [e for e in batch if not self._edge_exists(self.graph, e)]
        if not batch:
            return self._unchanged_results()
        new_graph = self._graph_with(self.graph, added=batch)
        results = []
        for name, entry in self._queries.items():
            start = time.perf_counter()
            delta = self._delta_count(entry, old=self.graph, new=new_graph, delta_edges=batch)
            entry.total += delta
            results.append(
                DeltaResult(
                    query_name=name,
                    delta=delta,
                    total=entry.total,
                    inserted_edges=len(batch),
                    elapsed_seconds=time.perf_counter() - start,
                )
            )
        self.graph = new_graph
        return results

    def delete_edges(self, edges: Iterable[Tuple[int, ...]]) -> List[DeltaResult]:
        """Delete a batch of edges and return one :class:`DeltaResult` per query.

        Edges not present are ignored.
        """
        batch = self._normalize(edges)
        batch = [e for e in batch if self._edge_exists(self.graph, e)]
        if not batch:
            return self._unchanged_results()
        new_graph = self._graph_with(self.graph, removed=batch)
        results = []
        for name, entry in self._queries.items():
            start = time.perf_counter()
            # Matches lost are exactly the matches gained when re-inserting the
            # batch into the post-deletion graph.
            delta = self._delta_count(entry, old=new_graph, new=self.graph, delta_edges=batch)
            entry.total -= delta
            results.append(
                DeltaResult(
                    query_name=name,
                    delta=-delta,
                    total=entry.total,
                    deleted_edges=len(batch),
                    elapsed_seconds=time.perf_counter() - start,
                )
            )
        self.graph = new_graph
        return results

    # ------------------------------------------------------------------ #
    # internals: graph manipulation
    # ------------------------------------------------------------------ #
    @staticmethod
    def _normalize(edges: Iterable[Tuple[int, ...]]) -> List[Edge]:
        batch: List[Edge] = []
        seen = set()
        for edge in edges:
            if len(edge) == 2:
                src, dst, label = int(edge[0]), int(edge[1]), 0
            elif len(edge) == 3:
                src, dst, label = int(edge[0]), int(edge[1]), int(edge[2])
            else:
                raise ContinuousQueryError(f"cannot interpret edge tuple {edge!r}")
            if src == dst:
                raise ContinuousQueryError("self-loops are not supported")
            key = (src, dst, label)
            if key not in seen:
                seen.add(key)
                batch.append(key)
        return batch

    @staticmethod
    def _edge_exists(graph: Graph, edge: Edge) -> bool:
        src, dst, label = edge
        if src >= graph.num_vertices or dst >= graph.num_vertices:
            return False
        mask = (graph.edge_src == src) & (graph.edge_dst == dst) & (graph.edge_labels == label)
        return bool(mask.any())

    @staticmethod
    def _graph_with(
        graph: Graph,
        added: Sequence[Edge] = (),
        removed: Sequence[Edge] = (),
    ) -> Graph:
        src = graph.edge_src.tolist()
        dst = graph.edge_dst.tolist()
        labels = graph.edge_labels.tolist()
        if removed:
            remove_set = set(removed)
            kept = [
                i
                for i in range(len(src))
                if (src[i], dst[i], labels[i]) not in remove_set
            ]
            src = [src[i] for i in kept]
            dst = [dst[i] for i in kept]
            labels = [labels[i] for i in kept]
        for s, d, l in added:
            src.append(s)
            dst.append(d)
            labels.append(l)
        max_vertex = max([graph.num_vertices - 1] + [max(s, d) for s, d, _ in added]) if added else graph.num_vertices - 1
        vertex_labels = graph.vertex_labels
        if max_vertex >= graph.num_vertices:
            extension = np.zeros(max_vertex + 1 - graph.num_vertices, dtype=np.int64)
            vertex_labels = np.concatenate([vertex_labels, extension])
        return Graph(
            vertex_labels=vertex_labels,
            edge_src=np.asarray(src, dtype=np.int64),
            edge_dst=np.asarray(dst, dtype=np.int64),
            edge_labels=np.asarray(labels, dtype=np.int64),
            name=graph.name,
        )

    # ------------------------------------------------------------------ #
    # internals: counting
    # ------------------------------------------------------------------ #
    def _full_count(self, query: QueryGraph) -> int:
        if self.graph.num_edges == 0:
            return 0
        for ordering in enumerate_orderings(query):
            try:
                plan = wco_plan_from_order(query, ordering)
            except Exception:
                continue
            return execute_plan(plan, self.graph).num_matches
        raise InvalidQueryError(f"query {query.name} admits no connected ordering")

    def _ordering_for(
        self, entry: _RegisteredQuery, seed_edge: QueryEdge
    ) -> Tuple[str, ...]:
        """A connected ordering of the query starting with ``seed_edge``'s
        endpoints (cached per registered query)."""
        key = (seed_edge.src, seed_edge.dst)
        cached = entry.orderings.get(key)
        if cached is not None:
            return cached
        orderings = enumerate_orderings(entry.query, prefix=[seed_edge.src, seed_edge.dst], limit=1)
        if not orderings:
            raise InvalidQueryError(
                f"query {entry.query.name} has no connected ordering starting at "
                f"{seed_edge.src}, {seed_edge.dst}"
            )
        entry.orderings[key] = orderings[0]
        return orderings[0]

    def _delta_count(
        self,
        entry: _RegisteredQuery,
        old: Graph,
        new: Graph,
        delta_edges: Sequence[Edge],
    ) -> int:
        """Matches present in ``new`` but not in ``old`` (``old ⊆ new``)."""
        query = entry.query
        query_edges = list(query.edges)
        total = 0
        for position, seed_edge in enumerate(query_edges):
            ordering = self._ordering_for(entry, seed_edge)
            for src, dst, label in delta_edges:
                if seed_edge.label is not None and seed_edge.label != label:
                    continue
                if not self._vertex_label_ok(new, src, query.vertex_label(seed_edge.src)):
                    continue
                if not self._vertex_label_ok(new, dst, query.vertex_label(seed_edge.dst)):
                    continue
                total += self._count_with_seed(
                    query, query_edges, position, ordering, (src, dst), old, new
                )
        return total

    @staticmethod
    def _vertex_label_ok(graph: Graph, vertex: int, label: Optional[int]) -> bool:
        if label is None:
            return True
        if vertex >= graph.num_vertices:
            return False
        return graph.vertex_label(vertex) == label

    def _graph_for_position(
        self, position: int, seed_position: int, old: Graph, new: Graph
    ) -> Graph:
        """Delta-rule role of a query edge: before the seed position read the
        new graph, after it read the old graph (the seed edge itself is bound
        to the delta edge)."""
        return new if position < seed_position else old

    def _count_with_seed(
        self,
        query: QueryGraph,
        query_edges: List[QueryEdge],
        seed_position: int,
        ordering: Tuple[str, ...],
        seed_binding: Tuple[int, int],
        old: Graph,
        new: Graph,
    ) -> int:
        """Count matches with the seed query edge bound to ``seed_binding``,
        other query edges reading old/new according to the delta rule."""
        seed_edge = query_edges[seed_position]
        binding: Dict[str, int] = {
            seed_edge.src: seed_binding[0],
            seed_edge.dst: seed_binding[1],
        }
        position_of = {
            (e.src, e.dst, e.label): i for i, e in enumerate(query_edges)
        }

        def edge_graph(edge: QueryEdge) -> Graph:
            position = position_of[(edge.src, edge.dst, edge.label)]
            return self._graph_for_position(position, seed_position, old, new)

        # Verify query edges already fully bound by the seed (parallel edges or
        # the reciprocal edge of the seed pair).
        for edge in query_edges:
            if edge is seed_edge:
                continue
            if edge.src in binding and edge.dst in binding:
                graph = edge_graph(edge)
                if not self._has_edge(graph, binding[edge.src], binding[edge.dst], edge.label):
                    return 0

        order = [v for v in ordering if v not in binding]

        def extend(index: int) -> int:
            if index == len(order):
                return 1
            target = order[index]
            target_label = query.vertex_label(target)
            lists = []
            for edge in query.edges_touching(target):
                other = edge.other(target)
                if other not in binding:
                    continue
                graph = edge_graph(edge)
                source_vertex = binding[other]
                if source_vertex >= graph.num_vertices:
                    # The bound vertex was created by this batch, so it has no
                    # adjacency in the pre-update graph: the intersection is empty.
                    return 0
                direction = Direction.FORWARD if edge.src == other else Direction.BACKWARD
                adjacency = graph.neighbors(
                    source_vertex, direction, edge.label, target_label
                )
                lists.append(adjacency)
            if not lists:
                # Should not happen for connected orderings, but guard anyway.
                return 0
            extensions = lists[0] if len(lists) == 1 else intersect_multiway(lists)
            produced = 0
            for vertex in extensions:
                binding[target] = int(vertex)
                produced += extend(index + 1)
                del binding[target]
            return produced

        count = extend(0)
        return count

    @staticmethod
    def _has_edge(graph: Graph, src: int, dst: int, label: Optional[int]) -> bool:
        if src >= graph.num_vertices or dst >= graph.num_vertices:
            return False
        return graph.has_edge(src, dst, label)

    # ------------------------------------------------------------------ #
    def _unchanged_results(self) -> List[DeltaResult]:
        return [
            DeltaResult(query_name=name, delta=0, total=entry.total)
            for name, entry in self._queries.items()
        ]

    def __repr__(self) -> str:
        return (
            f"ContinuousQueryEngine(graph={self.graph.name!r}, "
            f"edges={self.graph.num_edges}, queries={list(self._queries)})"
        )


__all__ = ["ContinuousQueryEngine", "DeltaResult", "ContinuousQueryError"]
