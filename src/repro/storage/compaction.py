"""Background compaction: the CSR rebuild moved off both the write and the
query path.

Historically the delta-CSR store compacted in two places, both synchronous
with user-visible work: writers crossing the overlay threshold paid the full
base + delta merge inside ``add_edges`` / ``delete_edges``, and the
vectorized engine forced ``snapshot(materialize=True)`` — a compaction — onto
every query against a dirty graph.  With delta-aware vectorized execution the
query side no longer needs a flat base at all; :class:`CompactionManager`
removes the write side too.

A manager owns one daemon thread watching one
:class:`~repro.storage.dynamic.DynamicGraph`.  Writes stay O(batch): the
graph's write listener merely sets an event, and the manager thread — not the
writer — checks the overlay threshold and runs the merge via
:meth:`DynamicGraph.try_compact`, which materializes the new base **without
the write lock** and installs it with a compare-and-swap on the epoch
counter.  A write racing the materialization makes the install fail cleanly;
the manager retries against the newer state, and after
``max_install_retries`` consecutive losses falls back to one locked
:meth:`DynamicGraph.compact` so progress is guaranteed even under a
pathological write storm.

Compaction never changes logical content or the version, so pinned snapshots
keep serving the old ``(base, delta)`` pair until their readers release them,
plan caches and catalogues stay valid, and in-flight queries are never
disturbed — the concurrency tests assert a compaction landing mid-query
changes no result in either executor mode.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.storage.dynamic import DynamicGraph, compaction_threshold


class CompactionManager:
    """Threshold-triggered background compaction for one ``DynamicGraph``.

    Parameters
    ----------
    graph:
        The dynamic graph to watch.  Constructing a manager *attaches* it:
        the graph's synchronous threshold compaction is disabled from that
        moment (writes notify instead of compacting), so construct-and-start
        together unless a test deliberately wants writes observed without
        any compaction.  :meth:`stop` detaches (restoring the graph's own
        behaviour); :meth:`start` re-attaches if needed, so a
        stop-then-start cycle resumes background compaction cleanly.
    compact_ratio / min_delta_edges:
        Overlay threshold: compact when ``delta_edges`` exceeds
        ``max(min_delta_edges, compact_ratio * base_edges)``.  ``None``
        inherits the graph's own ``compact_ratio`` / ``compact_min_edges``.
    poll_interval_seconds:
        Fallback wake-up period; write notifications wake the thread
        immediately, so this only bounds how stale a missed wake-up can get.
    max_install_retries:
        Consecutive CAS-install failures tolerated per trigger before
        falling back to a locked compaction.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        compact_ratio: Optional[float] = None,
        min_delta_edges: Optional[int] = None,
        poll_interval_seconds: float = 0.05,
        max_install_retries: int = 3,
    ) -> None:
        self.graph = graph
        self.compact_ratio = compact_ratio if compact_ratio is not None else graph.compact_ratio
        self.min_delta_edges = (
            min_delta_edges if min_delta_edges is not None else graph.compact_min_edges
        )
        self.poll_interval_seconds = poll_interval_seconds
        self.max_install_retries = max_install_retries
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._stats_lock = threading.Lock()
        self.compactions = 0
        self.install_retries = 0
        self.fallback_compactions = 0
        self.total_compaction_seconds = 0.0
        self.last_compaction_seconds = 0.0
        self._attached = False
        self._attach()

    # ------------------------------------------------------------------ #
    # graph attachment
    # ------------------------------------------------------------------ #
    def _attach(self) -> None:
        if self._attached:
            return
        self._saved_auto_compact = self.graph.auto_compact
        self.graph.auto_compact = False
        self.graph.set_write_listener(self._wake.set)
        self._attached = True

    def _detach(self) -> None:
        if not self._attached:
            return
        self.graph.set_write_listener(None)
        self.graph.auto_compact = self._saved_auto_compact
        self._attached = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "CompactionManager":
        if self._thread is not None:
            return self
        self._attach()  # no-op unless a prior stop() detached us
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="compaction-manager", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, wait: bool = True) -> None:
        """Detach from the graph and stop the thread (restoring the graph's
        own synchronous auto-compaction behaviour)."""
        self._stop.set()
        self._wake.set()
        if self._thread is not None and wait:
            self._thread.join()
        self._thread = None
        self._detach()

    def __enter__(self) -> "CompactionManager":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # the compaction loop
    # ------------------------------------------------------------------ #
    def _threshold(self) -> int:
        return compaction_threshold(
            self.graph.base.num_edges, self.compact_ratio, self.min_delta_edges
        )

    def should_compact(self) -> bool:
        return self.graph.delta_edges > self._threshold()

    def _run(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(timeout=self.poll_interval_seconds)
            self._wake.clear()
            if self._stop.is_set():
                return
            if self.should_compact():
                self.compact_now()

    def compact_now(self) -> bool:
        """One compaction pass (also callable synchronously, e.g. in tests).

        Returns ``True`` if a compaction was actually installed, ``False``
        when there was nothing to compact (the overlay was — or emptied —
        clean), judged by the graph's own compaction counter so the stats
        here never over-report.
        """
        start = time.perf_counter()
        graph_compactions_before = self.graph.compactions
        for _ in range(max(1, self.max_install_retries)):
            if self.graph.try_compact():
                break
            with self._stats_lock:
                self.install_retries += 1
        else:
            # A writer won every race; take the lock once so the overlay
            # cannot grow without bound.
            self.graph.compact()
            with self._stats_lock:
                self.fallback_compactions += 1
        installed = self.graph.compactions > graph_compactions_before
        if installed:
            elapsed = time.perf_counter() - start
            with self._stats_lock:
                self.compactions += 1
                self.last_compaction_seconds = elapsed
                self.total_compaction_seconds += elapsed
        return installed

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        with self._stats_lock:
            return {
                "running": self.running,
                "compactions": self.compactions,
                "install_retries": self.install_retries,
                "fallback_compactions": self.fallback_compactions,
                "delta_edges": self.graph.delta_edges,
                "threshold": self._threshold(),
                "last_compaction_seconds": self.last_compaction_seconds,
                "total_compaction_seconds": self.total_compaction_seconds,
            }

    def __repr__(self) -> str:
        return (
            f"CompactionManager(graph={self.graph.name!r}, running={self.running}, "
            f"compactions={self.compactions}, delta_edges={self.graph.delta_edges})"
        )


__all__ = ["CompactionManager"]
