"""Background compaction: the CSR rebuild moved off both the write and the
query path.

Historically the delta-CSR store compacted in two places, both synchronous
with user-visible work: writers crossing the overlay threshold paid the full
base + delta merge inside ``add_edges`` / ``delete_edges``, and the
vectorized engine forced ``snapshot(materialize=True)`` — a compaction — onto
every query against a dirty graph.  With delta-aware vectorized execution the
query side no longer needs a flat base at all; :class:`CompactionManager`
removes the write side too.

A manager owns one daemon thread watching one
:class:`~repro.storage.dynamic.DynamicGraph`.  Writes stay O(batch): the
graph's write listener merely sets an event, and the manager thread — not the
writer — checks the overlay threshold and runs the merge via
:meth:`DynamicGraph.try_compact`, which materializes the new base **without
the write lock** and installs it with a compare-and-swap on the epoch
counter.  A write racing the materialization makes the install fail cleanly;
the manager retries against the newer state, and after
``max_install_retries`` consecutive losses falls back to one locked
:meth:`DynamicGraph.compact` so progress is guaranteed even under a
pathological write storm.

Compaction never changes logical content or the version, so pinned snapshots
keep serving the old ``(base, delta)`` pair until their readers release them,
plan caches and catalogues stay valid, and in-flight queries are never
disturbed — the concurrency tests assert a compaction landing mid-query
changes no result in either executor mode.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.obs.registry import Histogram
from repro.storage.dynamic import DynamicGraph, compaction_threshold


class CompactionManager:
    """Threshold-triggered background compaction for one ``DynamicGraph``.

    Parameters
    ----------
    graph:
        The dynamic graph to watch.  Constructing a manager *attaches* it:
        the graph's synchronous threshold compaction is disabled from that
        moment (writes notify instead of compacting), so construct-and-start
        together unless a test deliberately wants writes observed without
        any compaction.  :meth:`stop` detaches (restoring the graph's own
        behaviour); :meth:`start` re-attaches if needed, so a
        stop-then-start cycle resumes background compaction cleanly.
    compact_ratio / min_delta_edges:
        Overlay threshold: compact when ``delta_edges`` exceeds
        ``max(min_delta_edges, compact_ratio * base_edges)``.  ``None``
        inherits the graph's own ``compact_ratio`` / ``compact_min_edges``.
    poll_interval_seconds:
        Fallback wake-up period; write notifications wake the thread
        immediately, so this only bounds how stale a missed wake-up can get.
    max_install_retries:
        Consecutive CAS-install failures tolerated per trigger before
        falling back to a locked compaction.
    min_interval_seconds:
        Pacing floor: after an installed compaction, threshold triggers are
        ignored until this much time has passed (``0`` disables pacing).
        Under sustained write load this bounds CSR-rebuild churn — and, when
        a checkpoint listener is attached, snapshot-file churn — at the cost
        of a temporarily larger overlay.  Explicit :meth:`compact_now` calls
        bypass pacing.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        compact_ratio: Optional[float] = None,
        min_delta_edges: Optional[int] = None,
        poll_interval_seconds: float = 0.05,
        max_install_retries: int = 3,
        min_interval_seconds: float = 0.0,
    ) -> None:
        self.graph = graph
        self.compact_ratio = compact_ratio if compact_ratio is not None else graph.compact_ratio
        self.min_delta_edges = (
            min_delta_edges if min_delta_edges is not None else graph.compact_min_edges
        )
        self.poll_interval_seconds = poll_interval_seconds
        self.max_install_retries = max_install_retries
        self.min_interval_seconds = min_interval_seconds
        # Monotonic timestamp of the last *installed* compaction (pacing
        # clock); None until the first install so a fresh manager never
        # delays its first compaction.
        self._last_install_monotonic: Optional[float] = None
        # Called (on the compaction thread, no locks held) after every
        # installed compaction; the durable store registers its
        # checkpoint here so a fresh base becomes a snapshot + WAL truncate.
        self._compaction_listener: Optional[callable] = None
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._stats_lock = threading.Lock()
        self.compactions = 0
        self.install_retries = 0
        self.fallback_compactions = 0
        self.paced_skips = 0
        self.checkpoints_triggered = 0
        self.listener_failures = 0
        self.total_compaction_seconds = 0.0
        self.last_compaction_seconds = 0.0
        # Duration distribution of installed compactions (standalone
        # histogram; surfaced through stats() quantiles and the database
        # registry's compaction collector).
        self.compaction_seconds = Histogram()
        # Optional structured-event callback (Observability.emit_event
        # signature), wired by the database; must never raise.
        self.event_sink = None
        self._attached = False
        self._attach()

    # ------------------------------------------------------------------ #
    # graph attachment
    # ------------------------------------------------------------------ #
    def _attach(self) -> None:
        if self._attached:
            return
        self._saved_auto_compact = self.graph.auto_compact
        self.graph.auto_compact = False
        self.graph.set_write_listener(self._wake.set)
        self._attached = True

    def _detach(self) -> None:
        if not self._attached:
            return
        self.graph.set_write_listener(None)
        self.graph.auto_compact = self._saved_auto_compact
        self._attached = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "CompactionManager":
        if self._thread is not None:
            return self
        self._attach()  # no-op unless a prior stop() detached us
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="compaction-manager", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, wait: bool = True) -> None:
        """Detach from the graph and stop the thread (restoring the graph's
        own synchronous auto-compaction behaviour)."""
        self._stop.set()
        self._wake.set()
        if self._thread is not None and wait:
            self._thread.join()
        self._thread = None
        self._detach()

    def __enter__(self) -> "CompactionManager":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # the compaction loop
    # ------------------------------------------------------------------ #
    def _threshold(self) -> int:
        return compaction_threshold(
            self.graph.base.num_edges, self.compact_ratio, self.min_delta_edges
        )

    def should_compact(self) -> bool:
        return self.graph.delta_edges > self._threshold()

    def _paced_out(self) -> bool:
        """True while the pacing window since the last install is open."""
        if self.min_interval_seconds <= 0 or self._last_install_monotonic is None:
            return False
        return time.monotonic() - self._last_install_monotonic < self.min_interval_seconds

    def set_compaction_listener(self, listener) -> None:
        """Register (or clear, with ``None``) a callback invoked after every
        installed compaction, on the compaction thread with no locks held —
        the durable store's checkpoint hook."""
        self._compaction_listener = listener

    def _run(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(timeout=self.poll_interval_seconds)
            self._wake.clear()
            if self._stop.is_set():
                return
            if self.should_compact():
                if self._paced_out():
                    with self._stats_lock:
                        self.paced_skips += 1
                    continue
                self.compact_now()

    def compact_now(self) -> bool:
        """One compaction pass (also callable synchronously, e.g. in tests).

        Returns ``True`` if a compaction was actually installed, ``False``
        when there was nothing to compact (the overlay was — or emptied —
        clean), judged by the graph's own compaction counter so the stats
        here never over-report.
        """
        start = time.perf_counter()
        graph_compactions_before = self.graph.compactions
        for _ in range(max(1, self.max_install_retries)):
            if self.graph.try_compact():
                break
            with self._stats_lock:
                self.install_retries += 1
        else:
            # A writer won every race; take the lock once so the overlay
            # cannot grow without bound.
            self.graph.compact()
            with self._stats_lock:
                self.fallback_compactions += 1
        installed = self.graph.compactions > graph_compactions_before
        if installed:
            elapsed = time.perf_counter() - start
            self._last_install_monotonic = time.monotonic()
            with self._stats_lock:
                self.compactions += 1
                self.last_compaction_seconds = elapsed
                self.total_compaction_seconds += elapsed
                self.compaction_seconds.observe(elapsed)
            sink = self.event_sink
            if sink is not None:
                sink(
                    "compaction_install",
                    seconds=round(elapsed, 6),
                    delta_edges=self.graph.delta_edges,
                    compactions=self.compactions,
                )
            listener = self._compaction_listener
            if listener is not None:
                # A listener failure (e.g. the durable store's checkpoint
                # hitting a transient disk error) must not kill the
                # compaction thread — the overlay and WAL would then grow
                # unbounded with no visible signal.  Count it and carry on;
                # the next install retries the checkpoint.
                try:
                    listener()
                except Exception:
                    with self._stats_lock:
                        self.listener_failures += 1
                else:
                    with self._stats_lock:
                        self.checkpoints_triggered += 1
        return installed

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        with self._stats_lock:
            return {
                "running": self.running,
                "compactions": self.compactions,
                "install_retries": self.install_retries,
                "fallback_compactions": self.fallback_compactions,
                "paced_skips": self.paced_skips,
                "checkpoints_triggered": self.checkpoints_triggered,
                "listener_failures": self.listener_failures,
                "delta_edges": self.graph.delta_edges,
                "threshold": self._threshold(),
                "last_compaction_seconds": self.last_compaction_seconds,
                "total_compaction_seconds": self.total_compaction_seconds,
                "compaction_p99_seconds": self.compaction_seconds.quantile(0.99),
            }

    def __repr__(self) -> str:
        return (
            f"CompactionManager(graph={self.graph.name!r}, running={self.running}, "
            f"compactions={self.compactions}, delta_edges={self.graph.delta_edges})"
        )


__all__ = ["CompactionManager"]
