"""Dynamic graph storage: delta-CSR overlays, MVCC snapshots, compaction.

The subsystem layers mutability on top of the immutable
:class:`repro.graph.graph.Graph`:

- :class:`DeltaStore` — immutable per-vertex sorted insert/delete deltas,
  forward and backward, partitioned by ``(edge label, neighbour label)``
  exactly like the base CSR;
- :class:`GraphSnapshot` — an O(1) versioned view merging base + delta behind
  the full ``Graph`` read API (both executors run on it unchanged);
- :class:`DynamicGraph` — the mutable front end with ``add_edges`` /
  ``delete_edges`` / ``add_vertices``, an epoch version counter, and
  threshold- or explicitly-triggered compaction into a fresh CSR base;
- :class:`CompactionManager` — threshold-triggered compaction on a background
  thread (CAS-installed under the epoch scheme), so neither writers nor
  queries ever pay the CSR rebuild.
"""

from repro.storage.compaction import CompactionManager
from repro.storage.delta import DeltaStore
from repro.storage.dynamic import DynamicGraph, normalize_edges
from repro.storage.snapshot import GraphSnapshot

__all__ = [
    "CompactionManager",
    "DeltaStore",
    "DynamicGraph",
    "GraphSnapshot",
    "normalize_edges",
]
