"""Delta storage for the dynamic graph (the write side of the delta-CSR).

A :class:`DeltaStore` records the edges inserted into and deleted from an
immutable base :class:`~repro.graph.graph.Graph` since the last compaction.
Mirroring the base layout, inserted and deleted adjacency is kept **per
direction**, partitioned by ``(edge label, neighbour label)``, as per-vertex
sorted ``int64`` arrays — so merging a base adjacency list with its delta is a
merge of two sorted runs, and the partition filters of
:meth:`Graph.neighbors` apply to deltas exactly as they do to the base CSR.

Delta stores are **immutable**: every update batch produces a *new* store
that structurally shares all untouched per-vertex arrays with its
predecessor.  A snapshot therefore pins consistent state simply by holding a
``(base, delta)`` pair; writers never mutate anything a reader can see.

Invariants maintained by the mutators (the *delta-merge invariants* every
reader — :class:`~repro.storage.snapshot.GraphSnapshot` merges, the
continuous engine's delta terms, and the vectorized executor's merged-CSR
views — relies on):

* an edge appears in at most one of ``insert_*`` / ``deleted_keys``;
* ``deleted_keys`` only ever names *base* edges (deleting an edge that was
  inserted after the last compaction removes it from the insert side), so a
  merge is always ``(base − deletions) ∪ insertions`` with the two operand
  sets disjoint;
* per-vertex arrays are sorted and duplicate-free, so merging a base
  adjacency run with its delta is a merge of two sorted runs and binary
  search stays valid on the result;
* deletions are recorded within their own ``(edge label, neighbour label)``
  partition: the wildcard-merged base list keeps one entry per *edge* (a
  neighbour reached through two edge labels appears twice) and deleting one
  of those edges must drop exactly one entry;
* ``touched_fwd`` / ``touched_bwd`` over-approximate the vertices with any
  delta adjacency per direction — a vertex outside them may always be read
  straight from the base CSR, and partitions no delta touches
  (:meth:`DeltaStore.touches_partition`) may be served as the base's own
  arrays without copying.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.graph import ANY_LABEL, Direction

Edge = Tuple[int, int, int]
# (edge_label, neighbour_label) -> vertex -> sorted neighbour ids.
PartitionMap = Dict[Tuple[int, int], Dict[int, np.ndarray]]

_EMPTY = np.array([], dtype=np.int64)
_EMPTY.setflags(write=False)


def _insert_sorted(existing: Optional[np.ndarray], values: List[int]) -> np.ndarray:
    """A new sorted array extending ``existing`` with ``values``."""
    if existing is None or len(existing) == 0:
        merged = np.array(sorted(set(values)), dtype=np.int64)
    else:
        merged = np.unique(np.concatenate([existing, np.asarray(values, dtype=np.int64)]))
    merged.setflags(write=False)
    return merged


def _remove_sorted(existing: np.ndarray, values: List[int]) -> np.ndarray:
    drop = np.asarray(values, dtype=np.int64)
    kept = existing[~np.isin(existing, drop)]
    kept.setflags(write=False)
    return kept


class DeltaStore:
    """Immutable insert/delete overlay over a base graph's edge set."""

    __slots__ = (
        "insert_src",
        "insert_dst",
        "insert_labels",
        "insert_keys",
        "deleted_keys",
        "fwd_add",
        "bwd_add",
        "fwd_del",
        "bwd_del",
        "touched_fwd",
        "touched_bwd",
    )

    def __init__(
        self,
        insert_src: np.ndarray,
        insert_dst: np.ndarray,
        insert_labels: np.ndarray,
        insert_keys: FrozenSet[Edge],
        deleted_keys: FrozenSet[Edge],
        fwd_add: PartitionMap,
        bwd_add: PartitionMap,
        fwd_del: PartitionMap,
        bwd_del: PartitionMap,
        touched_fwd: Optional[FrozenSet[int]] = None,
        touched_bwd: Optional[FrozenSet[int]] = None,
    ) -> None:
        self.insert_src = insert_src
        self.insert_dst = insert_dst
        self.insert_labels = insert_labels
        self.insert_keys = insert_keys
        self.deleted_keys = deleted_keys
        self.fwd_add = fwd_add
        self.bwd_add = bwd_add
        self.fwd_del = fwd_del
        self.bwd_del = bwd_del
        # Vertices with *any* delta adjacency per direction; the snapshot's
        # hot path consults these sets to fall through to the base CSR.  The
        # mutators pass them incrementally (old set union the batch's
        # anchors, O(batch) per write); a conservative over-approximation is
        # safe — an untouched vertex in the set merely takes the slow merge
        # path, which still returns the correct (base-only) adjacency.
        self.touched_fwd: FrozenSet[int] = (
            touched_fwd
            if touched_fwd is not None
            else frozenset(
                v for per_vertex in (*fwd_add.values(), *fwd_del.values()) for v in per_vertex
            )
        )
        self.touched_bwd: FrozenSet[int] = (
            touched_bwd
            if touched_bwd is not None
            else frozenset(
                v for per_vertex in (*bwd_add.values(), *bwd_del.values()) for v in per_vertex
            )
        )

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls) -> "DeltaStore":
        return cls(
            insert_src=_EMPTY,
            insert_dst=_EMPTY,
            insert_labels=_EMPTY,
            insert_keys=frozenset(),
            deleted_keys=frozenset(),
            fwd_add={},
            bwd_add={},
            fwd_del={},
            bwd_del={},
        )

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_inserted(self) -> int:
        return int(len(self.insert_src))

    @property
    def num_deleted(self) -> int:
        return len(self.deleted_keys)

    @property
    def num_delta_edges(self) -> int:
        """Total overlay size (drives the compaction threshold)."""
        return self.num_inserted + self.num_deleted

    @property
    def is_empty(self) -> bool:
        return self.num_inserted == 0 and self.num_deleted == 0

    def touched(self, vertex: int, direction: Direction) -> bool:
        sets = self.touched_fwd if direction is Direction.FORWARD else self.touched_bwd
        return vertex in sets

    @staticmethod
    def _partition_matches(
        key: Tuple[int, int], edge_label: Optional[int], neighbor_label: Optional[int]
    ) -> bool:
        el, nl = key
        return (edge_label is ANY_LABEL or el == edge_label) and (
            neighbor_label is ANY_LABEL or nl == neighbor_label
        )

    def touches_partition(
        self,
        direction: Direction,
        edge_label: Optional[int] = ANY_LABEL,
        neighbor_label: Optional[int] = ANY_LABEL,
    ) -> bool:
        """Whether any insert or delete lands in an adjacency partition
        matching the (possibly wildcard) filters.

        A partition the delta never touches can be served directly from the
        base CSR — the snapshot's columnar accessors use this to stay lazy
        per partition instead of per snapshot.
        """
        for partitions in (self._adds(direction), self._dels(direction)):
            for key in partitions:
                if self._partition_matches(key, edge_label, neighbor_label):
                    return True
        return False

    def partition_delta_edges(
        self,
        direction: Direction,
        edge_label: Optional[int] = ANY_LABEL,
        neighbor_label: Optional[int] = ANY_LABEL,
    ) -> int:
        """Number of delta entries (inserted + deleted adjacency slots) in
        the partitions matching the filters — the numerator of the
        per-partition delta ratio the cost model prices dirty scans with."""
        total = 0
        for partitions in (self._adds(direction), self._dels(direction)):
            for key, per_vertex in partitions.items():
                if self._partition_matches(key, edge_label, neighbor_label):
                    total += sum(len(run) for run in per_vertex.values())
        return total

    # ------------------------------------------------------------------ #
    # mutators (return a new store; structural sharing elsewhere)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _partition_with(
        partitions: PartitionMap,
        updates: Dict[Tuple[int, int], Dict[int, List[int]]],
        remove: bool,
    ) -> PartitionMap:
        """Copy-on-write application of per-partition per-vertex changes."""
        if not updates:
            return partitions
        out = dict(partitions)
        for part_key, per_vertex in updates.items():
            current = dict(out.get(part_key, {}))
            for vertex, values in per_vertex.items():
                if remove:
                    kept = _remove_sorted(current.get(vertex, _EMPTY), values)
                    if len(kept):
                        current[vertex] = kept
                    else:
                        current.pop(vertex, None)
                else:
                    current[vertex] = _insert_sorted(current.get(vertex), values)
            if current:
                out[part_key] = current
            else:
                out.pop(part_key, None)
        return out

    @staticmethod
    def _group(
        edges: Sequence[Edge], vertex_labels: np.ndarray, forward: bool
    ) -> Dict[Tuple[int, int], Dict[int, List[int]]]:
        """Group edge triples into ``(edge label, neighbour label)`` partitions
        of per-vertex neighbour lists, forward or backward."""
        grouped: Dict[Tuple[int, int], Dict[int, List[int]]] = {}
        for src, dst, label in edges:
            anchor, neighbor = (src, dst) if forward else (dst, src)
            part_key = (label, int(vertex_labels[neighbor]))
            grouped.setdefault(part_key, {}).setdefault(anchor, []).append(neighbor)
        return grouped

    def with_insertions(
        self, edges: Sequence[Edge], vertex_labels: np.ndarray
    ) -> "DeltaStore":
        """A new store with ``edges`` inserted.

        ``edges`` must be pre-filtered: not present in the base graph, in this
        delta, or in each other (the :class:`DynamicGraph` write path
        guarantees it), except that re-inserting a *deleted base edge* is
        allowed and simply clears the deletion.
        """
        resurrected = [e for e in edges if e in self.deleted_keys]
        fresh = [e for e in edges if e not in self.deleted_keys]
        store = self
        if resurrected:
            store = store._undelete(resurrected, vertex_labels)
        if not fresh:
            return store
        src = np.concatenate([store.insert_src, np.array([e[0] for e in fresh], dtype=np.int64)])
        dst = np.concatenate([store.insert_dst, np.array([e[1] for e in fresh], dtype=np.int64)])
        lab = np.concatenate([store.insert_labels, np.array([e[2] for e in fresh], dtype=np.int64)])
        return DeltaStore(
            insert_src=src,
            insert_dst=dst,
            insert_labels=lab,
            insert_keys=store.insert_keys | frozenset(fresh),
            deleted_keys=store.deleted_keys,
            fwd_add=self._partition_with(
                store.fwd_add, self._group(fresh, vertex_labels, forward=True), remove=False
            ),
            bwd_add=self._partition_with(
                store.bwd_add, self._group(fresh, vertex_labels, forward=False), remove=False
            ),
            fwd_del=store.fwd_del,
            bwd_del=store.bwd_del,
            touched_fwd=store.touched_fwd | frozenset(e[0] for e in fresh),
            touched_bwd=store.touched_bwd | frozenset(e[1] for e in fresh),
        )

    def _undelete(self, edges: Sequence[Edge], vertex_labels: np.ndarray) -> "DeltaStore":
        return DeltaStore(
            insert_src=self.insert_src,
            insert_dst=self.insert_dst,
            insert_labels=self.insert_labels,
            insert_keys=self.insert_keys,
            deleted_keys=self.deleted_keys - frozenset(edges),
            fwd_add=self.fwd_add,
            bwd_add=self.bwd_add,
            fwd_del=self._partition_with(
                self.fwd_del, self._group(edges, vertex_labels, forward=True), remove=True
            ),
            bwd_del=self._partition_with(
                self.bwd_del, self._group(edges, vertex_labels, forward=False), remove=True
            ),
            touched_fwd=self.touched_fwd,
            touched_bwd=self.touched_bwd,
        )

    def with_deletions(
        self,
        base_edges: Sequence[Edge],
        delta_edges: Sequence[Edge],
        vertex_labels: np.ndarray,
    ) -> "DeltaStore":
        """A new store with ``base_edges`` (present in the base graph) marked
        deleted and ``delta_edges`` (present in this delta's insert side)
        removed from the insert side."""
        store = self
        if delta_edges:
            drop = frozenset(delta_edges)
            keep = ~np.array(
                [
                    (int(s), int(d), int(l)) in drop
                    for s, d, l in zip(store.insert_src, store.insert_dst, store.insert_labels)
                ],
                dtype=bool,
            )
            store = DeltaStore(
                insert_src=store.insert_src[keep],
                insert_dst=store.insert_dst[keep],
                insert_labels=store.insert_labels[keep],
                insert_keys=store.insert_keys - drop,
                deleted_keys=store.deleted_keys,
                fwd_add=self._partition_with(
                    store.fwd_add,
                    self._group(delta_edges, vertex_labels, forward=True),
                    remove=True,
                ),
                bwd_add=self._partition_with(
                    store.bwd_add,
                    self._group(delta_edges, vertex_labels, forward=False),
                    remove=True,
                ),
                fwd_del=store.fwd_del,
                bwd_del=store.bwd_del,
                # Deleted-from-delta anchors were already touched when the
                # edges were inserted; keeping them is a safe over-approx.
                touched_fwd=store.touched_fwd,
                touched_bwd=store.touched_bwd,
            )
        if not base_edges:
            return store
        return DeltaStore(
            insert_src=store.insert_src,
            insert_dst=store.insert_dst,
            insert_labels=store.insert_labels,
            insert_keys=store.insert_keys,
            deleted_keys=store.deleted_keys | frozenset(base_edges),
            fwd_add=store.fwd_add,
            bwd_add=store.bwd_add,
            fwd_del=self._partition_with(
                store.fwd_del,
                self._group(base_edges, vertex_labels, forward=True),
                remove=False,
            ),
            bwd_del=self._partition_with(
                store.bwd_del,
                self._group(base_edges, vertex_labels, forward=False),
                remove=False,
            ),
            touched_fwd=store.touched_fwd | frozenset(e[0] for e in base_edges),
            touched_bwd=store.touched_bwd | frozenset(e[1] for e in base_edges),
        )

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    @staticmethod
    def _collect(
        partitions: PartitionMap,
        vertex: int,
        edge_label: Optional[int],
        neighbor_label: Optional[int],
    ) -> np.ndarray:
        """Sorted neighbours of ``vertex`` across partitions matching the
        (possibly wildcard) filters."""
        if edge_label is not ANY_LABEL and neighbor_label is not ANY_LABEL:
            per_vertex = partitions.get((edge_label, neighbor_label))
            if per_vertex is None:
                return _EMPTY
            return per_vertex.get(vertex, _EMPTY)
        runs = [
            per_vertex[vertex]
            for (el, nl), per_vertex in partitions.items()
            if (edge_label is ANY_LABEL or el == edge_label)
            and (neighbor_label is ANY_LABEL or nl == neighbor_label)
            and vertex in per_vertex
        ]
        if not runs:
            return _EMPTY
        if len(runs) == 1:
            return runs[0]
        # Keep one entry per edge across partitions (a neighbour reached
        # through two edge labels appears twice), matching the base graph's
        # merged-partition semantics and GraphSnapshot._neighbors_wildcard.
        merged = np.sort(np.concatenate(runs))
        merged.setflags(write=False)
        return merged

    def _adds(self, direction: Direction) -> PartitionMap:
        return self.fwd_add if direction is Direction.FORWARD else self.bwd_add

    def _dels(self, direction: Direction) -> PartitionMap:
        return self.fwd_del if direction is Direction.FORWARD else self.bwd_del

    def inserted_neighbors(
        self,
        vertex: int,
        direction: Direction,
        edge_label: Optional[int] = ANY_LABEL,
        neighbor_label: Optional[int] = ANY_LABEL,
    ) -> np.ndarray:
        return self._collect(self._adds(direction), vertex, edge_label, neighbor_label)

    def deleted_neighbors(
        self,
        vertex: int,
        direction: Direction,
        edge_label: Optional[int] = ANY_LABEL,
        neighbor_label: Optional[int] = ANY_LABEL,
    ) -> np.ndarray:
        return self._collect(self._dels(direction), vertex, edge_label, neighbor_label)

    def touched_vertices(self, direction: Direction) -> FrozenSet[int]:
        return self.touched_fwd if direction is Direction.FORWARD else self.touched_bwd

    def __repr__(self) -> str:
        return (
            f"DeltaStore(inserted={self.num_inserted}, deleted={self.num_deleted}, "
            f"touched_fwd={len(self.touched_fwd)}, touched_bwd={len(self.touched_bwd)})"
        )


__all__ = ["DeltaStore", "Edge"]
