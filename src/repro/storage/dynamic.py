"""The mutable graph: an immutable CSR base plus a delta overlay.

:class:`DynamicGraph` is the storage subsystem's front end.  Writers call
:meth:`add_edges` / :meth:`delete_edges` / :meth:`add_vertices`; each batch
produces a new immutable :class:`~repro.storage.delta.DeltaStore` (structural
sharing keeps this cheap) and bumps the version counter.  Readers call
:meth:`snapshot` to pin an O(1) consistent view; the whole
:class:`~repro.graph.graph.Graph` read API is also available directly on the
dynamic graph (delegating to the current snapshot), so a ``DynamicGraph`` can
be dropped anywhere a ``Graph`` is consumed.

When the overlay grows past ``compact_ratio`` of the base edge count (or
``compact_min_edges``, whichever is larger), the next write triggers
:meth:`compact`, which merges base + delta into a fresh CSR base.  Compaction
never disturbs concurrent readers: existing snapshots keep their old
``(base, delta)`` references, and the logical content — hence the version —
is unchanged.

With a :class:`~repro.storage.compaction.CompactionManager` attached
(:meth:`set_write_listener`), synchronous threshold compaction is disabled:
writes merely notify the manager and return immediately, and the manager
merges base + delta on its own thread via :meth:`try_compact` — the heavy
materialization runs without the write lock, and the new base is installed
with a compare-and-swap on the epoch counter so a racing write simply makes
the install retry.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, List, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import GraphConstructionError
from repro.graph.graph import ANY_LABEL, Direction, Graph
from repro.storage.delta import DeltaStore, Edge
from repro.storage.snapshot import GraphSnapshot


def normalize_edges(edges: Iterable[Tuple[int, ...]]) -> List[Edge]:
    """Normalize an iterable of ``(src, dst[, label])`` tuples into unique
    ``(src, dst, label)`` triples, rejecting self-loops."""
    batch: List[Edge] = []
    seen = set()
    for edge in edges:
        if len(edge) == 2:
            key = (int(edge[0]), int(edge[1]), 0)
        elif len(edge) == 3:
            key = (int(edge[0]), int(edge[1]), int(edge[2]))
        else:
            raise GraphConstructionError(f"cannot interpret edge tuple {edge!r}")
        if key[0] < 0 or key[1] < 0:
            raise GraphConstructionError("vertex ids must be non-negative")
        if key[0] == key[1]:
            raise GraphConstructionError("self-loops are not supported")
        if key not in seen:
            seen.add(key)
            batch.append(key)
    return batch


def compaction_threshold(base_edges: int, ratio: float, min_edges: int) -> int:
    """Overlay size beyond which compaction should run — the single
    definition shared by the synchronous write path and the background
    :class:`~repro.storage.compaction.CompactionManager`."""
    return max(min_edges, int(ratio * base_edges))


class _State(NamedTuple):
    """One atomically-swapped storage state (everything a snapshot pins)."""

    base: Graph
    delta: DeltaStore
    vertex_labels: np.ndarray
    version: int

    @property
    def is_clean(self) -> bool:
        """Nothing beyond the base: no delta edges, no appended vertices
        (compaction would be a no-op)."""
        return self.delta.is_empty and len(self.vertex_labels) == self.base.num_vertices


class DynamicGraph:
    """A mutable, versioned graph with MVCC snapshot reads.

    Example
    -------
    >>> from repro.graph.builder import graph_from_edges
    >>> g = DynamicGraph(graph_from_edges([(0, 1), (1, 2)]))
    >>> before = g.snapshot()
    >>> g.add_edges([(0, 2)])
    [(0, 2, 0)]
    >>> before.num_edges, g.num_edges
    (2, 3)
    """

    def __init__(
        self,
        base: Graph,
        compact_ratio: float = 0.25,
        compact_min_edges: int = 4096,
        auto_compact: bool = True,
    ) -> None:
        labels = np.asarray(base.vertex_labels, dtype=np.int64)
        self._state = _State(base=base, delta=DeltaStore.empty(), vertex_labels=labels, version=0)
        self._lock = threading.RLock()
        self.compact_ratio = compact_ratio
        self.compact_min_edges = compact_min_edges
        self.auto_compact = auto_compact
        self.compactions = 0
        self._snapshot_cache: Optional[GraphSnapshot] = None
        # Called (with the write lock held) after every version bump; a
        # CompactionManager registers a cheap Event.set here.  When set,
        # threshold compaction is the listener's job — writes never compact.
        self._write_listener: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------ #
    # snapshots
    # ------------------------------------------------------------------ #
    def snapshot(self, materialize: bool = False) -> Union[GraphSnapshot, Graph]:
        """An immutable view of the current state.

        With ``materialize=False`` (default) this is O(1): the snapshot pins
        the current ``(base, delta)`` pair.  With ``materialize=True`` the
        graph is compacted first (if dirty) and the resulting flat
        :class:`Graph` base is returned — the form the vectorized executor
        gets its columnar arrays from at full speed.
        """
        if materialize:
            with self._lock:
                self.compact()
                return self._state.base
        state = self._state
        cached = self._snapshot_cache
        if cached is not None and cached.version == state.version and cached.base is state.base:
            return cached
        snap = GraphSnapshot(
            base=state.base,
            delta=state.delta,
            vertex_labels=state.vertex_labels,
            version=state.version,
        )
        self._snapshot_cache = snap
        return snap

    @property
    def version(self) -> int:
        """Monotonic epoch counter; bumped by every effective write batch."""
        return self._state.version

    @property
    def base(self) -> Graph:
        """The current immutable CSR base (changes only on compaction)."""
        return self._state.base

    @property
    def delta_edges(self) -> int:
        """Current overlay size (inserted + deleted edges since compaction)."""
        return self._state.delta.num_delta_edges

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #
    def add_edges(
        self, edges: Iterable[Tuple[int, ...]], _normalized: bool = False
    ) -> List[Edge]:
        """Insert a batch of ``(src, dst[, label])`` edges.

        Edges already present are ignored; vertices referenced beyond the
        current id range are created with label 0.  Returns the triples
        actually inserted.  ``_normalized`` lets callers that already ran
        :func:`normalize_edges` (the durable write path does, before WAL
        logging) skip the second validation pass.
        """
        batch = list(edges) if _normalized else normalize_edges(edges)
        if not batch:
            return []
        with self._lock:
            state = self._state
            labels = state.vertex_labels
            max_vertex = max(max(s, d) for s, d, _ in batch)
            if max_vertex >= len(labels):
                labels = np.concatenate(
                    [labels, np.zeros(max_vertex + 1 - len(labels), dtype=np.int64)]
                )
            applied = [e for e in batch if not self._present(state, e)]
            if not applied and len(labels) == len(state.vertex_labels):
                return []
            delta = state.delta.with_insertions(applied, labels) if applied else state.delta
            self._state = _State(
                base=state.base,
                delta=delta,
                vertex_labels=labels,
                version=state.version + 1,
            )
            self._maybe_compact()
            return applied

    def delete_edges(
        self, edges: Iterable[Tuple[int, ...]], _normalized: bool = False
    ) -> List[Edge]:
        """Delete a batch of edges; missing edges are ignored.  Returns the
        triples actually removed."""
        batch = list(edges) if _normalized else normalize_edges(edges)
        if not batch:
            return []
        with self._lock:
            state = self._state
            in_delta = [e for e in batch if e in state.delta.insert_keys]
            in_base = [
                e
                for e in batch
                if e not in state.delta.insert_keys
                and e not in state.delta.deleted_keys
                and e[0] < state.base.num_vertices
                and state.base.has_edge(e[0], e[1], e[2])
            ]
            applied = in_delta + in_base
            if not applied:
                return []
            delta = state.delta.with_deletions(in_base, in_delta, state.vertex_labels)
            self._state = _State(
                base=state.base,
                delta=delta,
                vertex_labels=state.vertex_labels,
                version=state.version + 1,
            )
            self._maybe_compact()
            return applied

    def add_vertices(
        self, count: Optional[int] = None, labels: Optional[Sequence[int]] = None
    ) -> List[int]:
        """Append ``count`` label-0 vertices (or one per entry of ``labels``)
        and return their new ids."""
        if (count is None) == (labels is None):
            raise GraphConstructionError("pass exactly one of count= or labels=")
        new_labels = (
            np.zeros(count, dtype=np.int64)
            if labels is None
            else np.asarray(list(labels), dtype=np.int64)
        )
        if len(new_labels) == 0:
            return []
        with self._lock:
            state = self._state
            first = len(state.vertex_labels)
            self._state = _State(
                base=state.base,
                delta=state.delta,
                vertex_labels=np.concatenate([state.vertex_labels, new_labels]),
                version=state.version + 1,
            )
            return list(range(first, first + len(new_labels)))

    @staticmethod
    def _present(state: _State, edge: Edge) -> bool:
        src, dst, label = edge
        if edge in state.delta.insert_keys:
            return True
        if edge in state.delta.deleted_keys:
            return False
        return src < state.base.num_vertices and state.base.has_edge(src, dst, label)

    def has_edge(self, src: int, dst: int, edge_label: Optional[int] = ANY_LABEL) -> bool:
        return self.snapshot().has_edge(src, dst, edge_label)

    # ------------------------------------------------------------------ #
    # compaction
    # ------------------------------------------------------------------ #
    def set_write_listener(self, listener: Optional[Callable[[], None]]) -> None:
        """Register (or clear, with ``None``) the post-write notification.

        The listener runs with the write lock held, so it must be cheap and
        must not take other locks — a ``threading.Event.set`` is the intended
        payload.  While a listener is registered, writes never compact
        synchronously regardless of ``auto_compact``.
        """
        with self._lock:
            self._write_listener = listener

    @property
    def compaction_threshold(self) -> int:
        """Overlay size beyond which compaction should run."""
        return compaction_threshold(
            self._state.base.num_edges, self.compact_ratio, self.compact_min_edges
        )

    def needs_compaction(self) -> bool:
        return self._state.delta.num_delta_edges > self.compaction_threshold

    def _maybe_compact(self) -> None:
        if self._write_listener is not None:
            self._write_listener()
            return
        if not self.auto_compact:
            return
        if self.needs_compaction():
            self.compact()

    def compact(self) -> Graph:
        """Merge the delta overlay into a fresh immutable CSR base.

        Logical content (and therefore the version) is unchanged; existing
        snapshots keep reading their pinned old state.
        """
        with self._lock:
            state = self._state
            if state.is_clean:
                return state.base
            snap = GraphSnapshot(
                base=state.base,
                delta=state.delta,
                vertex_labels=state.vertex_labels,
                version=state.version,
            )
            new_base = snap.materialize(name=state.base.name)
            self._state = _State(
                base=new_base,
                delta=DeltaStore.empty(),
                vertex_labels=new_base.vertex_labels,
                version=state.version,
            )
            self.compactions += 1
            return new_base

    def try_compact(self) -> bool:
        """One off-lock compaction attempt (the background-compaction
        primitive).

        The current state is pinned, base + delta are materialized into a
        fresh CSR **without holding the write lock** (writers proceed
        concurrently), and the new base is installed only if the epoch
        counter still matches the pinned state — logical content and version
        are unchanged by a successful install, exactly like :meth:`compact`.
        Returns ``False`` when a concurrent write raced the materialization
        (nothing is installed; the caller may retry against the newer state).
        """
        state = self._state
        if state.is_clean:
            return True
        snap = GraphSnapshot(
            base=state.base,
            delta=state.delta,
            vertex_labels=state.vertex_labels,
            version=state.version,
        )
        new_base = snap.materialize(name=state.base.name)  # heavy, lock-free
        with self._lock:
            current = self._state
            if current.version != state.version or current.base is not state.base:
                return False
            self._state = _State(
                base=new_base,
                delta=DeltaStore.empty(),
                vertex_labels=new_base.vertex_labels,
                version=current.version,
            )
            self.compactions += 1
            return True

    # ------------------------------------------------------------------ #
    # Graph read API (delegated to the current snapshot)
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return self._state.base.name

    @property
    def num_vertices(self) -> int:
        return int(len(self._state.vertex_labels))

    @property
    def num_edges(self) -> int:
        state = self._state
        return state.base.num_edges - state.delta.num_deleted + state.delta.num_inserted

    @property
    def vertex_labels(self) -> np.ndarray:
        return self._state.vertex_labels

    @property
    def edge_src(self) -> np.ndarray:
        return self.snapshot().edge_src

    @property
    def edge_dst(self) -> np.ndarray:
        return self.snapshot().edge_dst

    @property
    def edge_labels(self) -> np.ndarray:
        return self.snapshot().edge_labels

    @property
    def edge_label_values(self) -> np.ndarray:
        return self.snapshot().edge_label_values

    @property
    def vertex_label_values(self) -> np.ndarray:
        return np.unique(self._state.vertex_labels)

    def vertex_label(self, vertex: int) -> int:
        return int(self._state.vertex_labels[vertex])

    def vertices_with_label(self, label: Optional[int]) -> np.ndarray:
        return self.snapshot().vertices_with_label(label)

    def neighbors(self, *args, **kwargs) -> np.ndarray:
        return self.snapshot().neighbors(*args, **kwargs)

    def degree(self, *args, **kwargs) -> int:
        return self.snapshot().degree(*args, **kwargs)

    def degree_array(self, *args, **kwargs) -> np.ndarray:
        return self.snapshot().degree_array(*args, **kwargs)

    def csr(self, *args, **kwargs):
        return self.snapshot().csr(*args, **kwargs)

    def adjacency_key_array(self, *args, **kwargs) -> np.ndarray:
        return self.snapshot().adjacency_key_array(*args, **kwargs)

    @property
    def delta_ratio(self) -> float:
        return self.snapshot().delta_ratio

    def partition_delta_ratio(self, *args, **kwargs) -> float:
        return self.snapshot().partition_delta_ratio(*args, **kwargs)

    def edges(self, *args, **kwargs) -> Tuple[np.ndarray, np.ndarray]:
        return self.snapshot().edges(*args, **kwargs)

    def count_edges(self, *args, **kwargs) -> int:
        return self.snapshot().count_edges(*args, **kwargs)

    def iter_edges(self):
        return self.snapshot().iter_edges()

    def __repr__(self) -> str:
        state = self._state
        return (
            f"DynamicGraph(name={state.base.name!r}, version={state.version}, "
            f"vertices={self.num_vertices}, edges={self.num_edges}, "
            f"delta=+{state.delta.num_inserted}/-{state.delta.num_deleted}, "
            f"compactions={self.compactions})"
        )


__all__ = ["DynamicGraph", "compaction_threshold", "normalize_edges"]
