"""The mutable graph: an immutable CSR base plus a delta overlay.

:class:`DynamicGraph` is the storage subsystem's front end.  Writers call
:meth:`add_edges` / :meth:`delete_edges` / :meth:`add_vertices`; each batch
produces a new immutable :class:`~repro.storage.delta.DeltaStore` (structural
sharing keeps this cheap) and bumps the version counter.  Readers call
:meth:`snapshot` to pin an O(1) consistent view; the whole
:class:`~repro.graph.graph.Graph` read API is also available directly on the
dynamic graph (delegating to the current snapshot), so a ``DynamicGraph`` can
be dropped anywhere a ``Graph`` is consumed.

When the overlay grows past ``compact_ratio`` of the base edge count (or
``compact_min_edges``, whichever is larger), the next write triggers
:meth:`compact`, which merges base + delta into a fresh CSR base.  Compaction
never disturbs concurrent readers: existing snapshots keep their old
``(base, delta)`` references, and the logical content — hence the version —
is unchanged.
"""

from __future__ import annotations

import threading
from typing import Iterable, List, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import GraphConstructionError
from repro.graph.graph import ANY_LABEL, Direction, Graph
from repro.storage.delta import DeltaStore, Edge
from repro.storage.snapshot import GraphSnapshot


def normalize_edges(edges: Iterable[Tuple[int, ...]]) -> List[Edge]:
    """Normalize an iterable of ``(src, dst[, label])`` tuples into unique
    ``(src, dst, label)`` triples, rejecting self-loops."""
    batch: List[Edge] = []
    seen = set()
    for edge in edges:
        if len(edge) == 2:
            key = (int(edge[0]), int(edge[1]), 0)
        elif len(edge) == 3:
            key = (int(edge[0]), int(edge[1]), int(edge[2]))
        else:
            raise GraphConstructionError(f"cannot interpret edge tuple {edge!r}")
        if key[0] < 0 or key[1] < 0:
            raise GraphConstructionError("vertex ids must be non-negative")
        if key[0] == key[1]:
            raise GraphConstructionError("self-loops are not supported")
        if key not in seen:
            seen.add(key)
            batch.append(key)
    return batch


class _State(NamedTuple):
    """One atomically-swapped storage state (everything a snapshot pins)."""

    base: Graph
    delta: DeltaStore
    vertex_labels: np.ndarray
    version: int


class DynamicGraph:
    """A mutable, versioned graph with MVCC snapshot reads.

    Example
    -------
    >>> from repro.graph.builder import graph_from_edges
    >>> g = DynamicGraph(graph_from_edges([(0, 1), (1, 2)]))
    >>> before = g.snapshot()
    >>> g.add_edges([(0, 2)])
    [(0, 2, 0)]
    >>> before.num_edges, g.num_edges
    (2, 3)
    """

    def __init__(
        self,
        base: Graph,
        compact_ratio: float = 0.25,
        compact_min_edges: int = 4096,
        auto_compact: bool = True,
    ) -> None:
        labels = np.asarray(base.vertex_labels, dtype=np.int64)
        self._state = _State(base=base, delta=DeltaStore.empty(), vertex_labels=labels, version=0)
        self._lock = threading.RLock()
        self.compact_ratio = compact_ratio
        self.compact_min_edges = compact_min_edges
        self.auto_compact = auto_compact
        self.compactions = 0
        self._snapshot_cache: Optional[GraphSnapshot] = None

    # ------------------------------------------------------------------ #
    # snapshots
    # ------------------------------------------------------------------ #
    def snapshot(self, materialize: bool = False) -> Union[GraphSnapshot, Graph]:
        """An immutable view of the current state.

        With ``materialize=False`` (default) this is O(1): the snapshot pins
        the current ``(base, delta)`` pair.  With ``materialize=True`` the
        graph is compacted first (if dirty) and the resulting flat
        :class:`Graph` base is returned — the form the vectorized executor
        gets its columnar arrays from at full speed.
        """
        if materialize:
            with self._lock:
                self.compact()
                return self._state.base
        state = self._state
        cached = self._snapshot_cache
        if cached is not None and cached.version == state.version and cached.base is state.base:
            return cached
        snap = GraphSnapshot(
            base=state.base,
            delta=state.delta,
            vertex_labels=state.vertex_labels,
            version=state.version,
        )
        self._snapshot_cache = snap
        return snap

    @property
    def version(self) -> int:
        """Monotonic epoch counter; bumped by every effective write batch."""
        return self._state.version

    @property
    def base(self) -> Graph:
        """The current immutable CSR base (changes only on compaction)."""
        return self._state.base

    @property
    def delta_edges(self) -> int:
        """Current overlay size (inserted + deleted edges since compaction)."""
        return self._state.delta.num_delta_edges

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #
    def add_edges(self, edges: Iterable[Tuple[int, ...]]) -> List[Edge]:
        """Insert a batch of ``(src, dst[, label])`` edges.

        Edges already present are ignored; vertices referenced beyond the
        current id range are created with label 0.  Returns the triples
        actually inserted.
        """
        batch = normalize_edges(edges)
        if not batch:
            return []
        with self._lock:
            state = self._state
            labels = state.vertex_labels
            max_vertex = max(max(s, d) for s, d, _ in batch)
            if max_vertex >= len(labels):
                labels = np.concatenate(
                    [labels, np.zeros(max_vertex + 1 - len(labels), dtype=np.int64)]
                )
            applied = [e for e in batch if not self._present(state, e)]
            if not applied and len(labels) == len(state.vertex_labels):
                return []
            delta = state.delta.with_insertions(applied, labels) if applied else state.delta
            self._state = _State(
                base=state.base,
                delta=delta,
                vertex_labels=labels,
                version=state.version + 1,
            )
            self._maybe_compact()
            return applied

    def delete_edges(self, edges: Iterable[Tuple[int, ...]]) -> List[Edge]:
        """Delete a batch of edges; missing edges are ignored.  Returns the
        triples actually removed."""
        batch = normalize_edges(edges)
        if not batch:
            return []
        with self._lock:
            state = self._state
            in_delta = [e for e in batch if e in state.delta.insert_keys]
            in_base = [
                e
                for e in batch
                if e not in state.delta.insert_keys
                and e not in state.delta.deleted_keys
                and e[0] < state.base.num_vertices
                and state.base.has_edge(e[0], e[1], e[2])
            ]
            applied = in_delta + in_base
            if not applied:
                return []
            delta = state.delta.with_deletions(in_base, in_delta, state.vertex_labels)
            self._state = _State(
                base=state.base,
                delta=delta,
                vertex_labels=state.vertex_labels,
                version=state.version + 1,
            )
            self._maybe_compact()
            return applied

    def add_vertices(
        self, count: Optional[int] = None, labels: Optional[Sequence[int]] = None
    ) -> List[int]:
        """Append ``count`` label-0 vertices (or one per entry of ``labels``)
        and return their new ids."""
        if (count is None) == (labels is None):
            raise GraphConstructionError("pass exactly one of count= or labels=")
        new_labels = (
            np.zeros(count, dtype=np.int64)
            if labels is None
            else np.asarray(list(labels), dtype=np.int64)
        )
        if len(new_labels) == 0:
            return []
        with self._lock:
            state = self._state
            first = len(state.vertex_labels)
            self._state = _State(
                base=state.base,
                delta=state.delta,
                vertex_labels=np.concatenate([state.vertex_labels, new_labels]),
                version=state.version + 1,
            )
            return list(range(first, first + len(new_labels)))

    @staticmethod
    def _present(state: _State, edge: Edge) -> bool:
        src, dst, label = edge
        if edge in state.delta.insert_keys:
            return True
        if edge in state.delta.deleted_keys:
            return False
        return src < state.base.num_vertices and state.base.has_edge(src, dst, label)

    def has_edge(self, src: int, dst: int, edge_label: Optional[int] = ANY_LABEL) -> bool:
        return self.snapshot().has_edge(src, dst, edge_label)

    # ------------------------------------------------------------------ #
    # compaction
    # ------------------------------------------------------------------ #
    def _maybe_compact(self) -> None:
        if not self.auto_compact:
            return
        state = self._state
        threshold = max(self.compact_min_edges, int(self.compact_ratio * state.base.num_edges))
        if state.delta.num_delta_edges > threshold:
            self.compact()

    def compact(self) -> Graph:
        """Merge the delta overlay into a fresh immutable CSR base.

        Logical content (and therefore the version) is unchanged; existing
        snapshots keep reading their pinned old state.
        """
        with self._lock:
            state = self._state
            if state.delta.is_empty and len(state.vertex_labels) == state.base.num_vertices:
                return state.base
            snap = GraphSnapshot(
                base=state.base,
                delta=state.delta,
                vertex_labels=state.vertex_labels,
                version=state.version,
            )
            new_base = snap.materialize(name=state.base.name)
            self._state = _State(
                base=new_base,
                delta=DeltaStore.empty(),
                vertex_labels=new_base.vertex_labels,
                version=state.version,
            )
            self.compactions += 1
            return new_base

    # ------------------------------------------------------------------ #
    # Graph read API (delegated to the current snapshot)
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return self._state.base.name

    @property
    def num_vertices(self) -> int:
        return int(len(self._state.vertex_labels))

    @property
    def num_edges(self) -> int:
        state = self._state
        return state.base.num_edges - state.delta.num_deleted + state.delta.num_inserted

    @property
    def vertex_labels(self) -> np.ndarray:
        return self._state.vertex_labels

    @property
    def edge_src(self) -> np.ndarray:
        return self.snapshot().edge_src

    @property
    def edge_dst(self) -> np.ndarray:
        return self.snapshot().edge_dst

    @property
    def edge_labels(self) -> np.ndarray:
        return self.snapshot().edge_labels

    @property
    def edge_label_values(self) -> np.ndarray:
        return self.snapshot().edge_label_values

    @property
    def vertex_label_values(self) -> np.ndarray:
        return np.unique(self._state.vertex_labels)

    def vertex_label(self, vertex: int) -> int:
        return int(self._state.vertex_labels[vertex])

    def vertices_with_label(self, label: Optional[int]) -> np.ndarray:
        return self.snapshot().vertices_with_label(label)

    def neighbors(self, *args, **kwargs) -> np.ndarray:
        return self.snapshot().neighbors(*args, **kwargs)

    def degree(self, *args, **kwargs) -> int:
        return self.snapshot().degree(*args, **kwargs)

    def degree_array(self, *args, **kwargs) -> np.ndarray:
        return self.snapshot().degree_array(*args, **kwargs)

    def csr(self, *args, **kwargs):
        return self.snapshot().csr(*args, **kwargs)

    def adjacency_key_array(self, *args, **kwargs) -> np.ndarray:
        return self.snapshot().adjacency_key_array(*args, **kwargs)

    def edges(self, *args, **kwargs) -> Tuple[np.ndarray, np.ndarray]:
        return self.snapshot().edges(*args, **kwargs)

    def count_edges(self, *args, **kwargs) -> int:
        return self.snapshot().count_edges(*args, **kwargs)

    def iter_edges(self):
        return self.snapshot().iter_edges()

    def __repr__(self) -> str:
        state = self._state
        return (
            f"DynamicGraph(name={state.base.name!r}, version={state.version}, "
            f"vertices={self.num_vertices}, edges={self.num_edges}, "
            f"delta=+{state.delta.num_inserted}/-{state.delta.num_deleted}, "
            f"compactions={self.compactions})"
        )


__all__ = ["DynamicGraph", "normalize_edges"]
