"""Immutable versioned views over a base graph plus a delta overlay.

A :class:`GraphSnapshot` is what queries actually execute against: it pins one
``(base Graph, DeltaStore, vertex labels, version)`` quadruple — all immutable
— and serves the *entire* read API of :class:`repro.graph.graph.Graph`
(``neighbors`` / ``csr`` / ``adjacency_key_array`` / ``edges`` / ``degree`` /
``has_edge`` / …) by merging base and delta adjacency on the fly.  Creating a
snapshot is O(1); in-flight queries, the continuous engine's old/new delta
terms, and concurrent writers therefore never block each other.

Reads fall through to the base CSR untouched-vertex-wise: the per-direction
``touched`` sets of the delta make the common case (a vertex with no pending
updates) a single set lookup plus the base's own fast path.

The columnar structures the vectorized executor needs (:meth:`csr` and
:meth:`adjacency_key_array`) are merged **lazily per partition**: a query
plan only pays the merge for the ``(direction, edge label, neighbour label)``
partitions its operators actually touch, a partition the delta never touches
(:meth:`DeltaStore.touches_partition`) is served as the base's own arrays
without copying, and merged views are cached copy-on-write on the snapshot —
the snapshot itself is immutable, so the cache is a pure memo shared by every
reader of the pinned version, never mutated state.  This is what lets the
batch engine run directly on *dirty* snapshots instead of forcing a full CSR
rebuild (compaction) onto the query path.

Merge invariants (see :mod:`repro.storage.delta` for the writer-side
guarantees they rest on): every merged per-vertex run is
``(base − deletions) ∪ insertions`` with disjoint operands, stays sorted and
duplicate-free per partition, and wildcard reads subtract deletions within
their own partition before concatenating partitions, keeping one entry per
edge.  Consequently the merged CSR/adjacency-key arrays satisfy exactly the
ordering contracts (sorted per-vertex runs, globally sorted key arrays) the
vectorized operators' binary searches assume.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.graph.graph import ANY_LABEL, Direction, Graph, _CSR
from repro.storage.delta import DeltaStore

_EMPTY = np.array([], dtype=np.int64)
_EMPTY.setflags(write=False)


def _without(sorted_values: np.ndarray, removed: np.ndarray) -> np.ndarray:
    if len(removed) == 0 or len(sorted_values) == 0:
        return sorted_values
    return sorted_values[~np.isin(sorted_values, removed)]


def _merge_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if len(a) == 0:
        return b
    if len(b) == 0:
        return a
    return np.sort(np.concatenate([a, b]))


class GraphSnapshot:
    """A consistent, immutable view of a :class:`DynamicGraph` at one version."""

    def __init__(
        self,
        base: Graph,
        delta: DeltaStore,
        vertex_labels: np.ndarray,
        version: int,
        name: Optional[str] = None,
    ) -> None:
        self.base = base
        self.delta = delta
        self.vertex_labels = vertex_labels
        self.version = version
        self.name = name if name is not None else base.name
        # Lazy caches (safe to race: idempotent pure computations).
        self._csr_cache: Dict[Tuple[str, Optional[int], Optional[int]], _CSR] = {}
        self._adj_key_cache: Dict[Tuple[str, Optional[int], Optional[int]], np.ndarray] = {}
        self._edge_arrays: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        return int(len(self.vertex_labels))

    @property
    def num_edges(self) -> int:
        return self.base.num_edges - self.delta.num_deleted + self.delta.num_inserted

    @property
    def is_clean(self) -> bool:
        """True when this view adds nothing over its base: no delta edges
        and no appended vertices — the base Graph *is* the state (the
        predicate compaction and checkpointing use to skip materializing)."""
        return self.delta.is_empty and len(self.vertex_labels) == self.base.num_vertices

    @property
    def edge_label_values(self) -> np.ndarray:
        if self.delta.is_empty:
            return self.base.edge_label_values
        if not self.delta.deleted_keys:
            values = [self.base.edge_label_values]
            if self.delta.num_inserted:
                values.append(self.delta.insert_labels)
            return np.unique(np.concatenate(values)) if values else self.base.edge_label_values
        return np.unique(self.edge_labels) if self.num_edges else np.array([], dtype=np.int64)

    @property
    def vertex_label_values(self) -> np.ndarray:
        return np.unique(self.vertex_labels)

    def vertex_label(self, vertex: int) -> int:
        return int(self.vertex_labels[vertex])

    def vertices_with_label(self, label: Optional[int]) -> np.ndarray:
        if label is ANY_LABEL:
            return np.arange(self.num_vertices, dtype=np.int64)
        return np.flatnonzero(self.vertex_labels == label).astype(np.int64)

    # ------------------------------------------------------------------ #
    # adjacency access
    # ------------------------------------------------------------------ #
    def neighbors(
        self,
        vertex: int,
        direction: Direction,
        edge_label: Optional[int] = ANY_LABEL,
        neighbor_label: Optional[int] = ANY_LABEL,
    ) -> np.ndarray:
        base = self.base
        in_base = vertex < base.num_vertices
        if not self.delta.touched(vertex, direction):
            return base.neighbors(vertex, direction, edge_label, neighbor_label) if in_base else _EMPTY
        if edge_label is not ANY_LABEL and neighbor_label is not ANY_LABEL:
            base_run = (
                base.neighbors(vertex, direction, edge_label, neighbor_label) if in_base else _EMPTY
            )
            base_run = _without(
                base_run,
                self.delta.deleted_neighbors(vertex, direction, edge_label, neighbor_label),
            )
            return _merge_sorted(
                base_run,
                self.delta.inserted_neighbors(vertex, direction, edge_label, neighbor_label),
            )
        return self._neighbors_wildcard(vertex, direction, edge_label, neighbor_label)

    def _neighbors_wildcard(
        self,
        vertex: int,
        direction: Direction,
        edge_label: Optional[int],
        neighbor_label: Optional[int],
    ) -> np.ndarray:
        """Per-partition merge for wildcard filters.

        Deletions must be subtracted within their own ``(edge label,
        neighbour label)`` partition: the merged base list keeps one entry per
        *edge* (a neighbour reached through two edge labels appears twice),
        and deleting one of those edges must drop exactly one entry.
        """
        base_map = self.base._partition_map(direction) if vertex < self.base.num_vertices else {}
        adds = self.delta._adds(direction)
        dels = self.delta._dels(direction)

        def matches(key: Tuple[int, int]) -> bool:
            el, nl = key
            return (edge_label is ANY_LABEL or el == edge_label) and (
                neighbor_label is ANY_LABEL or nl == neighbor_label
            )

        runs = []
        keys = {k for k in base_map if matches(k)} | {k for k in adds if matches(k)}
        for key in keys:
            base_part = base_map.get(key)
            run = base_part.neighbors(vertex) if base_part is not None else _EMPTY
            del_part = dels.get(key)
            if del_part is not None and len(run):
                removed = del_part.get(vertex)
                if removed is not None:
                    run = _without(run, removed)
            add_part = adds.get(key)
            if add_part is not None:
                inserted = add_part.get(vertex)
                if inserted is not None:
                    run = np.concatenate([run, inserted]) if len(run) else inserted
            if len(run):
                runs.append(run)
        if not runs:
            return _EMPTY
        if len(runs) == 1:
            return np.sort(runs[0])
        return np.sort(np.concatenate(runs))

    def degree(
        self,
        vertex: int,
        direction: Direction,
        edge_label: Optional[int] = ANY_LABEL,
        neighbor_label: Optional[int] = ANY_LABEL,
    ) -> int:
        if not self.delta.touched(vertex, direction):
            if vertex >= self.base.num_vertices:
                return 0
            return self.base.degree(vertex, direction, edge_label, neighbor_label)
        return int(len(self.neighbors(vertex, direction, edge_label, neighbor_label)))

    def degree_array(
        self,
        direction: Direction,
        edge_label: Optional[int] = ANY_LABEL,
        neighbor_label: Optional[int] = ANY_LABEL,
    ) -> np.ndarray:
        return np.diff(self.csr(direction, edge_label, neighbor_label).indptr)

    def has_edge(
        self, src: int, dst: int, edge_label: Optional[int] = ANY_LABEL
    ) -> bool:
        if src >= self.num_vertices or dst >= self.num_vertices:
            return False
        nbrs = self.neighbors(src, Direction.FORWARD, edge_label, ANY_LABEL)
        pos = np.searchsorted(nbrs, dst)
        return bool(pos < len(nbrs) and nbrs[pos] == dst)

    # ------------------------------------------------------------------ #
    # columnar access (vectorized executor)
    # ------------------------------------------------------------------ #
    def _partition_clean(
        self,
        direction: Direction,
        edge_label: Optional[int],
        neighbor_label: Optional[int],
    ) -> bool:
        """Whether the base's own columnar arrays can serve this partition
        unchanged: no new vertices and no delta entry matching the filters."""
        return self.num_vertices == self.base.num_vertices and not self.delta.touches_partition(
            direction, edge_label, neighbor_label
        )

    def csr(
        self,
        direction: Direction,
        edge_label: Optional[int] = ANY_LABEL,
        neighbor_label: Optional[int] = ANY_LABEL,
    ) -> _CSR:
        if self._partition_clean(direction, edge_label, neighbor_label):
            return self.base.csr(direction, edge_label, neighbor_label)
        key = (direction.value, edge_label, neighbor_label)
        cached = self._csr_cache.get(key)
        if cached is not None:
            return cached
        merged = self._build_csr(direction, edge_label, neighbor_label)
        self._csr_cache[key] = merged
        return merged

    def _build_csr(
        self,
        direction: Direction,
        edge_label: Optional[int],
        neighbor_label: Optional[int],
    ) -> _CSR:
        """Merge the base partition CSR with the delta, keeping untouched
        base segments as bulk copies.

        The merge is fully vectorized and restricted to the vertices the
        delta touches *within the matching partitions* — vertices touched
        only through other partitions keep their base runs verbatim.  For
        the touched vertices, base/delta adjacency is encoded as
        ``vertex * n + neighbour`` keys: deletions are removed one occurrence
        per deleted edge (wildcard-merged base runs keep one entry per edge,
        so a neighbour reached through two edge labels appears twice and
        deleting one edge must drop exactly one), insertions are appended,
        and one ``np.sort`` restores the (vertex, neighbour) order the CSR
        contract requires.
        """
        base_csr = self.base.csr(direction, edge_label, neighbor_label)
        n = self.num_vertices
        nb = self.base.num_vertices
        base_deg = np.diff(base_csr.indptr)
        matches = self.delta._partition_matches
        add_parts = [
            per_vertex
            for key, per_vertex in self.delta._adds(direction).items()
            if matches(key, edge_label, neighbor_label)
        ]
        del_parts = [
            per_vertex
            for key, per_vertex in self.delta._dels(direction).items()
            if matches(key, edge_label, neighbor_label)
        ]
        touched = set()
        for per_vertex in (*add_parts, *del_parts):
            touched.update(per_vertex)
        if not touched:
            if n == nb:
                return base_csr
            indptr = np.concatenate(
                [base_csr.indptr, np.full(n - nb, base_csr.indptr[-1], dtype=np.int64)]
            )
            return _CSR(indptr, base_csr.indices)
        touched_arr = np.fromiter(sorted(touched), dtype=np.int64, count=len(touched))
        stride = np.int64(n)

        # Base adjacency of the touched vertices, as sorted encoded keys
        # (touched ids ascending, per-vertex runs sorted => globally sorted).
        t_in_base = touched_arr[touched_arr < nb]
        t_counts = base_deg[t_in_base]
        total = int(t_counts.sum())
        if total:
            ends = np.cumsum(t_counts)
            positions = np.repeat(base_csr.indptr[t_in_base], t_counts) + (
                np.arange(total, dtype=np.int64) - np.repeat(ends - t_counts, t_counts)
            )
            base_keys = np.repeat(t_in_base, t_counts) * stride + base_csr.indices[positions]
        else:
            base_keys = _EMPTY

        del_runs = [
            v * stride + arr for per_vertex in del_parts for v, arr in per_vertex.items()
        ]
        if del_runs and len(base_keys):
            del_keys = np.sort(np.concatenate(del_runs))
            # Remove exactly one base occurrence per deleted edge: duplicate
            # delete keys (same neighbour through several edge labels) hit
            # consecutive positions of the equal-key run in base_keys.
            boundary = np.empty(len(del_keys), dtype=bool)
            boundary[0] = True
            boundary[1:] = del_keys[1:] != del_keys[:-1]
            first = np.flatnonzero(boundary)
            occurrence = np.arange(len(del_keys)) - first[np.cumsum(boundary) - 1]
            remove = np.searchsorted(base_keys, del_keys) + occurrence
            keep_mask = np.ones(len(base_keys), dtype=bool)
            keep_mask[remove] = False
            base_keys = base_keys[keep_mask]

        add_runs = [
            v * stride + arr for per_vertex in add_parts for v, arr in per_vertex.items()
        ]
        merged_keys = np.concatenate([base_keys, *add_runs]) if add_runs else base_keys
        merged_keys = np.sort(merged_keys)
        touched_vertices = merged_keys // stride
        touched_values = merged_keys % stride

        counts = np.zeros(n, dtype=np.int64)
        counts[:nb] = base_deg
        counts[touched_arr] = np.bincount(touched_vertices, minlength=n)[touched_arr]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])

        # Untouched base segments, bulk-copied.
        keep = np.ones(nb, dtype=bool)
        keep[t_in_base] = False
        kept_positions = np.repeat(keep, base_deg)
        kept_vertices = np.repeat(np.arange(nb, dtype=np.int64), base_deg)[kept_positions]
        kept_values = base_csr.indices[kept_positions]
        vertices = np.concatenate([kept_vertices, touched_vertices])
        values = np.concatenate([kept_values, touched_values])
        # Vertex sets of the two pieces are disjoint and each per-vertex run is
        # already sorted, so a stable sort on the vertex column suffices.
        order = np.argsort(vertices, kind="stable")
        return _CSR(indptr, values[order])

    def adjacency_key_array(
        self,
        direction: Direction,
        edge_label: Optional[int] = ANY_LABEL,
        neighbor_label: Optional[int] = ANY_LABEL,
    ) -> np.ndarray:
        if self._partition_clean(direction, edge_label, neighbor_label):
            return self.base.adjacency_key_array(direction, edge_label, neighbor_label)
        key = (direction.value, edge_label, neighbor_label)
        cached = self._adj_key_cache.get(key)
        if cached is not None:
            return cached
        csr = self.csr(direction, edge_label, neighbor_label)
        degrees = np.diff(csr.indptr)
        keys = (
            np.repeat(np.arange(self.num_vertices, dtype=np.int64), degrees)
            * self.num_vertices
            + csr.indices
        )
        keys.setflags(write=False)
        self._adj_key_cache[key] = keys
        return keys

    # ------------------------------------------------------------------ #
    # delta accounting (cost-model input)
    # ------------------------------------------------------------------ #
    @property
    def delta_ratio(self) -> float:
        """Overall overlay size relative to the base edge count (0 when the
        snapshot is clean)."""
        return self.delta.num_delta_edges / max(1, self.base.num_edges)

    def partition_delta_ratio(
        self,
        direction: Direction,
        edge_label: Optional[int] = ANY_LABEL,
        neighbor_label: Optional[int] = ANY_LABEL,
    ) -> float:
        """Delta entries in the matching partitions relative to the base
        partition size.

        This is what the planner's batch cost constants price dirty-snapshot
        scans with: a partition the delta never touches costs exactly what it
        costs on a flat CSR, a heavily dirty partition pays for its lazy
        merge proportionally.
        """
        delta_edges = self.delta.partition_delta_edges(direction, edge_label, neighbor_label)
        if delta_edges == 0:
            return 0.0
        base_size = len(self.base.csr(direction, edge_label, neighbor_label).indices)
        return delta_edges / max(1, base_size)

    # ------------------------------------------------------------------ #
    # edge scans
    # ------------------------------------------------------------------ #
    def _materialized_edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        cached = self._edge_arrays
        if cached is not None:
            return cached
        base = self.base
        if self.delta.deleted_keys:
            kept = ~self._base_deleted_mask()
            src = base.edge_src[kept]
            dst = base.edge_dst[kept]
            lab = base.edge_labels[kept]
        else:
            src, dst, lab = base.edge_src, base.edge_dst, base.edge_labels
        if self.delta.num_inserted:
            src = np.concatenate([src, self.delta.insert_src])
            dst = np.concatenate([dst, self.delta.insert_dst])
            lab = np.concatenate([lab, self.delta.insert_labels])
        arrays = (src, dst, lab)
        self._edge_arrays = arrays
        return arrays

    def _base_deleted_mask(self) -> np.ndarray:
        """Boolean mask over base edge positions that have been deleted."""
        base = self.base
        deleted = self.delta.deleted_keys
        max_label = int(base.edge_labels.max(initial=0)) + 1
        stride = np.int64(max_label)
        n = np.int64(base.num_vertices)
        codes = (base.edge_src * n + base.edge_dst) * stride + base.edge_labels
        del_codes = np.sort(
            np.array([(s * n + d) * stride + l for s, d, l in deleted], dtype=np.int64)
        )
        pos = np.searchsorted(del_codes, codes)
        pos[pos == len(del_codes)] = len(del_codes) - 1
        return del_codes[pos] == codes

    @property
    def edge_src(self) -> np.ndarray:
        return self._materialized_edges()[0]

    @property
    def edge_dst(self) -> np.ndarray:
        return self._materialized_edges()[1]

    @property
    def edge_labels(self) -> np.ndarray:
        return self._materialized_edges()[2]

    def edges(
        self,
        edge_label: Optional[int] = ANY_LABEL,
        src_label: Optional[int] = ANY_LABEL,
        dst_label: Optional[int] = ANY_LABEL,
    ) -> Tuple[np.ndarray, np.ndarray]:
        if self.delta.is_empty:
            # Same ANY_LABEL short-circuits (and mask reuse) as Graph.edges.
            return self.base.edges(edge_label, src_label, dst_label)
        src, dst, lab = self._materialized_edges()
        if edge_label is ANY_LABEL and src_label is ANY_LABEL and dst_label is ANY_LABEL:
            return src, dst
        mask: Optional[np.ndarray] = None
        if edge_label is not ANY_LABEL:
            mask = lab == edge_label
        if src_label is not ANY_LABEL:
            part = self.vertex_labels[src] == src_label
            mask = part if mask is None else mask & part
        if dst_label is not ANY_LABEL:
            part = self.vertex_labels[dst] == dst_label
            mask = part if mask is None else mask & part
        return src[mask], dst[mask]

    def count_edges(
        self,
        edge_label: Optional[int] = ANY_LABEL,
        src_label: Optional[int] = ANY_LABEL,
        dst_label: Optional[int] = ANY_LABEL,
    ) -> int:
        if edge_label is ANY_LABEL and src_label is ANY_LABEL and dst_label is ANY_LABEL:
            return self.num_edges
        if src_label is ANY_LABEL and dst_label is ANY_LABEL:
            # Graph.edges-style short-circuit on the snapshot path: an
            # edge-label-only count never needs the merged edge arrays —
            # deleted_keys names only base edges and the insert side is
            # disjoint from both, so the three counts compose exactly.
            base_count = self.base.count_edges(edge_label)
            deleted = sum(1 for _, _, label in self.delta.deleted_keys if label == edge_label)
            inserted = int(np.count_nonzero(self.delta.insert_labels == edge_label))
            return base_count - deleted + inserted
        src, _ = self.edges(edge_label, src_label, dst_label)
        return int(len(src))

    def iter_edges(self) -> Iterator[Tuple[int, int, int]]:
        src, dst, lab = self._materialized_edges()
        for s, d, l in zip(src, dst, lab):
            yield int(s), int(d), int(l)

    # ------------------------------------------------------------------ #
    # materialization
    # ------------------------------------------------------------------ #
    def materialize(self, name: Optional[str] = None) -> Graph:
        """Flatten this view into a fresh immutable :class:`Graph` (the
        compaction primitive)."""
        src, dst, lab = self._materialized_edges()
        return Graph(
            vertex_labels=np.array(self.vertex_labels, dtype=np.int64),
            edge_src=np.array(src, dtype=np.int64),
            edge_dst=np.array(dst, dtype=np.int64),
            edge_labels=np.array(lab, dtype=np.int64),
            name=name if name is not None else self.name,
        )

    def __repr__(self) -> str:
        return (
            f"GraphSnapshot(name={self.name!r}, version={self.version}, "
            f"vertices={self.num_vertices}, edges={self.num_edges}, "
            f"delta=+{self.delta.num_inserted}/-{self.delta.num_deleted})"
        )


__all__ = ["GraphSnapshot"]
