"""Graph storage substrate: in-memory directed labeled graphs with sorted,
label-partitioned forward and backward adjacency lists (the Graphflow storage
layout described in Section 7 of the paper)."""

from repro.graph.graph import Graph, Direction
from repro.graph.builder import GraphBuilder
from repro.graph import generators, intersect, labeling, statistics, io

__all__ = [
    "Graph",
    "Direction",
    "GraphBuilder",
    "generators",
    "intersect",
    "labeling",
    "statistics",
    "io",
]
