"""Structural statistics of graphs.

These are the properties the paper identifies as driving plan choice:
forward/backward degree distributions (and their skew), and the clustering
coefficient, "which is a measure of the cyclicity of the graph, specifically
the amount of cliques in it" (Section 8.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.graph import Direction, Graph
from repro.graph.intersect import intersect_sorted


@dataclass(frozen=True)
class DegreeSummary:
    """Summary statistics of a degree distribution."""

    mean: float
    median: float
    maximum: int
    p90: float
    skew: float

    @classmethod
    def from_degrees(cls, degrees: np.ndarray) -> "DegreeSummary":
        degrees = np.asarray(degrees, dtype=np.float64)
        if len(degrees) == 0:
            return cls(0.0, 0.0, 0, 0.0, 0.0)
        mean = float(degrees.mean())
        std = float(degrees.std())
        skew = 0.0
        if std > 0:
            skew = float(((degrees - mean) ** 3).mean() / std**3)
        return cls(
            mean=mean,
            median=float(np.median(degrees)),
            maximum=int(degrees.max()),
            p90=float(np.percentile(degrees, 90)),
            skew=skew,
        )


@dataclass(frozen=True)
class GraphStatistics:
    """Aggregate structural statistics of one graph."""

    num_vertices: int
    num_edges: int
    out_degrees: DegreeSummary
    in_degrees: DegreeSummary
    reciprocity: float
    average_clustering: float
    triangle_estimate: float


def degree_summary(graph: Graph, direction: Direction) -> DegreeSummary:
    return DegreeSummary.from_degrees(graph.degree_array(direction))


def reciprocity(graph: Graph) -> float:
    """Fraction of edges whose reverse edge also exists."""
    if graph.num_edges == 0:
        return 0.0
    reciprocal = sum(
        1 for s, d, _ in graph.iter_edges() if graph.has_edge(d, s)
    )
    return reciprocal / graph.num_edges


def average_clustering(
    graph: Graph, sample_size: int = 500, seed: Optional[int] = 0
) -> float:
    """Average (undirected) local clustering coefficient, sampled.

    Directions and labels are ignored: we measure how often two neighbours of
    a vertex are themselves connected in either direction, which is the
    cyclicity proxy the paper refers to.
    """
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    if n == 0:
        return 0.0
    vertices = (
        np.arange(n) if n <= sample_size else rng.choice(n, size=sample_size, replace=False)
    )
    total = 0.0
    counted = 0
    for v in vertices:
        nbrs = np.union1d(
            graph.neighbors(int(v), Direction.FORWARD),
            graph.neighbors(int(v), Direction.BACKWARD),
        )
        nbrs = nbrs[nbrs != v]
        k = len(nbrs)
        if k < 2:
            continue
        links = 0
        for u in nbrs:
            u_out = graph.neighbors(int(u), Direction.FORWARD)
            links += len(intersect_sorted(u_out, nbrs))
        total += links / (k * (k - 1))
        counted += 1
    return total / counted if counted else 0.0


def count_triangles(graph: Graph, directed_cycle: bool = False) -> int:
    """Exact triangle count.

    With ``directed_cycle=False`` counts "asymmetric" triangles
    ``u -> v, u -> w, v -> w``; with ``True`` counts directed 3-cycles.
    """
    count = 0
    for u in range(graph.num_vertices):
        out_u = graph.neighbors(u, Direction.FORWARD)
        for v in out_u:
            out_v = graph.neighbors(int(v), Direction.FORWARD)
            if directed_cycle:
                # w such that v -> w and w -> u
                back_u = graph.neighbors(u, Direction.BACKWARD)
                count += len(intersect_sorted(out_v, back_u))
            else:
                count += len(intersect_sorted(out_u, out_v))
    return count


def compute_statistics(graph: Graph, clustering_sample: int = 300) -> GraphStatistics:
    """Compute the full statistics bundle for a graph."""
    out_deg = graph.degree_array(Direction.FORWARD)
    in_deg = graph.degree_array(Direction.BACKWARD)
    clustering = average_clustering(graph, sample_size=clustering_sample)
    # Cheap triangle estimate: wedges * clustering.
    wedges = float(np.sum(out_deg.astype(np.float64) * (out_deg - 1)) / 2.0)
    return GraphStatistics(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        out_degrees=DegreeSummary.from_degrees(out_deg),
        in_degrees=DegreeSummary.from_degrees(in_deg),
        reciprocity=reciprocity(graph) if graph.num_edges <= 200_000 else float("nan"),
        average_clustering=clustering,
        triangle_estimate=wedges * clustering,
    )
