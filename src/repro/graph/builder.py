"""Incremental construction of :class:`repro.graph.graph.Graph` objects."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import GraphConstructionError
from repro.graph.graph import Graph


class GraphBuilder:
    """Accumulates vertices and edges, then freezes them into a ``Graph``.

    Vertices may be added explicitly with :meth:`add_vertex` (to assign
    labels) or implicitly by being mentioned in :meth:`add_edge`, in which case
    they receive label ``0``.

    Example
    -------
    >>> b = GraphBuilder()
    >>> b.add_edge(0, 1)
    >>> b.add_edge(1, 2, label=3)
    >>> g = b.build(name="tiny")
    >>> g.num_vertices, g.num_edges
    (3, 2)
    """

    def __init__(self, deduplicate: bool = True) -> None:
        self._vertex_labels: Dict[int, int] = {}
        self._edges: List[Tuple[int, int, int]] = []
        self._edge_set: set = set()
        self._deduplicate = deduplicate

    # ------------------------------------------------------------------ #
    def add_vertex(self, vertex: int, label: int = 0) -> "GraphBuilder":
        if vertex < 0:
            raise GraphConstructionError("vertex ids must be non-negative")
        self._vertex_labels[vertex] = label
        return self

    def add_edge(self, src: int, dst: int, label: int = 0) -> "GraphBuilder":
        """Add the directed edge ``src -> dst``. Self-loops are rejected
        (subgraph queries in the paper are over simple directed graphs)."""
        if src < 0 or dst < 0:
            raise GraphConstructionError("vertex ids must be non-negative")
        if src == dst:
            raise GraphConstructionError("self-loops are not supported")
        key = (src, dst, label)
        if self._deduplicate:
            if key in self._edge_set:
                return self
            self._edge_set.add(key)
        self._edges.append(key)
        self._vertex_labels.setdefault(src, 0)
        self._vertex_labels.setdefault(dst, 0)
        return self

    def add_edges(self, edges: Iterable[Tuple[int, ...]]) -> "GraphBuilder":
        """Add edges from an iterable of ``(src, dst)`` or ``(src, dst, label)``."""
        for edge in edges:
            if len(edge) == 2:
                self.add_edge(edge[0], edge[1])
            elif len(edge) == 3:
                self.add_edge(edge[0], edge[1], edge[2])
            else:
                raise GraphConstructionError(f"cannot interpret edge tuple {edge!r}")
        return self

    @property
    def num_vertices(self) -> int:
        return len(self._vertex_labels)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    # ------------------------------------------------------------------ #
    def build(self, name: str = "graph", num_vertices: Optional[int] = None) -> Graph:
        """Freeze the accumulated vertices and edges into a ``Graph``.

        Vertex ids must be dense (0..n-1); if ``num_vertices`` is given,
        vertices up to that count exist even if isolated.
        """
        max_seen = max(self._vertex_labels) if self._vertex_labels else -1
        n = max_seen + 1 if num_vertices is None else num_vertices
        if num_vertices is not None and max_seen >= num_vertices:
            raise GraphConstructionError(
                f"vertex id {max_seen} exceeds declared num_vertices={num_vertices}"
            )
        vertex_labels = np.zeros(n, dtype=np.int64)
        for v, lab in self._vertex_labels.items():
            vertex_labels[v] = lab
        if self._edges:
            src, dst, lab = map(np.asarray, zip(*self._edges))
        else:
            src = dst = lab = np.array([], dtype=np.int64)
        return Graph(
            vertex_labels=vertex_labels,
            edge_src=src,
            edge_dst=dst,
            edge_labels=lab,
            name=name,
        )


def graph_from_edges(
    edges: Iterable[Tuple[int, ...]],
    vertex_labels: Optional[Dict[int, int]] = None,
    name: str = "graph",
) -> Graph:
    """Convenience helper: build a graph from an edge iterable in one call."""
    builder = GraphBuilder()
    if vertex_labels:
        for v, lab in vertex_labels.items():
            builder.add_vertex(v, lab)
    builder.add_edges(edges)
    return builder.build(name=name)
