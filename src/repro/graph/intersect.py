"""Sorted-array intersection kernels.

WCO plans spend essentially all of their time intersecting adjacency lists.
The paper performs "iterative 2-way in-tandem intersections" over lists that
are sorted by vertex id; we expose the same primitives here, implemented on
NumPy arrays so that the Python reproduction stays tractable on non-trivial
graphs.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

_EMPTY = np.array([], dtype=np.int64)


def intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersect two sorted, duplicate-free int arrays.

    Equivalent to a 2-way in-tandem merge; returns a sorted array.
    """
    if len(a) == 0 or len(b) == 0:
        return _EMPTY
    # np.intersect1d with assume_unique uses sorting/searchsorted internally,
    # which is the vectorised analogue of the in-tandem merge.
    return np.intersect1d(a, b, assume_unique=True)


def intersect_multiway(lists: Sequence[np.ndarray]) -> np.ndarray:
    """Intersect any number of sorted lists via iterative 2-way intersections.

    Lists are processed smallest-first, which mirrors the standard WCOJ
    optimisation of seeding the intersection with the most selective list.
    """
    if not lists:
        return _EMPTY
    ordered: List[np.ndarray] = sorted(lists, key=len)
    result = np.asarray(ordered[0], dtype=np.int64)
    for other in ordered[1:]:
        if len(result) == 0:
            return _EMPTY
        result = intersect_sorted(result, np.asarray(other, dtype=np.int64))
    return result


def intersect_sorted_python(a: Iterable[int], b: Iterable[int]) -> List[int]:
    """Reference pure-Python in-tandem merge used to cross-check the NumPy
    kernels in tests (and to document the textbook algorithm)."""
    a = list(a)
    b = list(b)
    i = j = 0
    out: List[int] = []
    while i < len(a) and j < len(b):
        if a[i] == b[j]:
            out.append(a[i])
            i += 1
            j += 1
        elif a[i] < b[j]:
            i += 1
        else:
            j += 1
    return out


def is_sorted_unique(a: np.ndarray) -> bool:
    """True when ``a`` is strictly increasing (sorted and duplicate free)."""
    a = np.asarray(a)
    return bool(len(a) < 2 or np.all(a[1:] > a[:-1]))


def contains_sorted(a: np.ndarray, value: int) -> bool:
    """Binary-search membership test on a sorted array."""
    pos = np.searchsorted(a, value)
    return bool(pos < len(a) and a[pos] == value)
