"""Sorted-array intersection kernels.

WCO plans spend essentially all of their time intersecting adjacency lists.
The paper performs "iterative 2-way in-tandem intersections" over lists that
are sorted by vertex id; we expose the same primitives here, implemented on
NumPy arrays so that the Python reproduction stays tractable on non-trivial
graphs.

Two kernels are provided and :func:`intersect_sorted` picks between them:

* a merge-style kernel (``np.intersect1d``), linear in the combined length,
  which wins when the two lists have comparable sizes, and
* a galloping kernel (:func:`intersect_sorted_gallop`) that binary-probes the
  larger list once per element of the smaller list, ``O(s log L)``, which wins
  on skewed list pairs — exactly the regime the paper's i-cost model rewards
  (a hub's adjacency list intersected with a low-degree vertex's).

The crossover follows the textbook cost comparison
``s * log2(L) < s + L``.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

import numpy as np

_EMPTY = np.array([], dtype=np.int64)
# The empty singleton is shared by every kernel; freeze it so a caller that
# mutates a returned "empty" result gets a loud ValueError instead of silently
# corrupting every later empty intersection.
_EMPTY.setflags(write=False)


def _as_int64(a) -> np.ndarray:
    """Return ``a`` as an int64 array without copying when it already is one."""
    if isinstance(a, np.ndarray) and a.dtype == np.int64:
        return a
    return np.asarray(a, dtype=np.int64)


def intersect_sorted_gallop(small: np.ndarray, large: np.ndarray) -> np.ndarray:
    """Galloping intersection of two sorted, duplicate-free int arrays.

    Every element of ``small`` is located in ``large`` with a binary probe
    (``np.searchsorted`` vectorises the probes; each is the endpoint of the
    exponential "gallop" an LFTJ-style seek performs).  Cost is
    ``O(len(small) * log2(len(large)))``, so it beats the linear merge when
    ``small`` is much shorter than ``large``.
    """
    if len(small) == 0 or len(large) == 0:
        return _EMPTY
    pos = np.searchsorted(large, small)
    hits = np.zeros(len(small), dtype=bool)
    valid = pos < len(large)
    hits[valid] = large[pos[valid]] == small[valid]
    return small[hits]


def intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersect two sorted, duplicate-free int arrays.

    Selects the galloping kernel when the skew makes binary probes cheaper
    than the in-tandem merge (``s * log2(L) < s + L``); otherwise falls back
    to the merge-style kernel.  Returns a sorted array either way.
    """
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return _EMPTY
    small, large = (a, b) if la <= lb else (b, a)
    if len(small) * math.log2(len(large)) < len(small) + len(large):
        return intersect_sorted_gallop(small, large)
    # np.intersect1d with assume_unique uses sorting/searchsorted internally,
    # which is the vectorised analogue of the in-tandem merge.
    return np.intersect1d(a, b, assume_unique=True)


def intersect_multiway(lists: Sequence[np.ndarray]) -> np.ndarray:
    """Intersect any number of sorted lists via iterative 2-way intersections.

    Lists are processed smallest-first, which mirrors the standard WCOJ
    optimisation of seeding the intersection with the most selective list.
    """
    if not lists:
        return _EMPTY
    ordered: List[np.ndarray] = sorted((_as_int64(l) for l in lists), key=len)
    result = ordered[0]
    for other in ordered[1:]:
        if len(result) == 0:
            return _EMPTY
        result = intersect_sorted(result, other)
    return result


def gallop_search(arr: Sequence[int], value: int, lo: int = 0) -> int:
    """Exponential-then-binary search: the insertion point of ``value`` in the
    sorted ``arr`` at or after ``lo`` (the textbook gallop of LFTJ seeks)."""
    n = len(arr)
    if lo >= n or arr[lo] >= value:
        return lo
    step = 1
    while lo + step < n and arr[lo + step] < value:
        step *= 2
    left, right = lo + step // 2, min(lo + step, n)
    while left < right:
        mid = (left + right) // 2
        if arr[mid] < value:
            left = mid + 1
        else:
            right = mid
    return left


def intersect_sorted_gallop_python(
    small: Iterable[int], large: Iterable[int]
) -> List[int]:
    """Reference pure-Python galloping intersection used to cross-check the
    NumPy kernel in tests (and to document the textbook algorithm)."""
    small = list(small)
    large = list(large)
    out: List[int] = []
    pos = 0
    for value in small:
        pos = gallop_search(large, value, pos)
        if pos == len(large):
            break
        if large[pos] == value:
            out.append(value)
            pos += 1
    return out


def intersect_sorted_python(a: Iterable[int], b: Iterable[int]) -> List[int]:
    """Reference pure-Python in-tandem merge used to cross-check the NumPy
    kernels in tests (and to document the textbook algorithm)."""
    a = list(a)
    b = list(b)
    i = j = 0
    out: List[int] = []
    while i < len(a) and j < len(b):
        if a[i] == b[j]:
            out.append(a[i])
            i += 1
            j += 1
        elif a[i] < b[j]:
            i += 1
        else:
            j += 1
    return out


def is_sorted_unique(a: np.ndarray) -> bool:
    """True when ``a`` is strictly increasing (sorted and duplicate free)."""
    a = np.asarray(a)
    return bool(len(a) < 2 or np.all(a[1:] > a[:-1]))


def contains_sorted(a: np.ndarray, value: int) -> bool:
    """Binary-search membership test on a sorted array."""
    pos = np.searchsorted(a, value)
    return bool(pos < len(a) and a[pos] == value)
