"""Triangle indexes.

Ammar et al. [6] (the BiGJoin line of work) show that WCO plans can be sped up
substantially by *indexing triangles*: for every data edge ``u -> v``,
precompute and store the sorted set of vertices that close a triangle with it.
An EXTEND/INTERSECT operator whose descriptor set is exactly "one list of
``u``, one list of ``v``" then answers from the index with a single lookup
instead of intersecting two adjacency lists.

The paper cites this as a complementary optimization ("Such approaches can be
complementary to our approach", Section 9); this module implements it so that
the benchmark harness can quantify the trade-off (index build time and memory
against intersection work saved) on the reproduction's datasets.

A :class:`TriangleIndex` is built for one or more *direction pairs*.  The pair
``(FORWARD, FORWARD)`` stores, for each edge ``u -> v``, the common
out-neighbours of ``u`` and ``v`` — the extension set used when a query closes
a triangle pointing away from both endpoints (e.g. the asymmetric triangle's
``a3``).  The executor consults the index through
``ExecutionConfig.triangle_index``; extensions the index does not cover fall
back to ordinary adjacency-list intersections, so results never change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.graph.graph import ANY_LABEL, Direction, Graph
from repro.graph.intersect import intersect_sorted

# One direction pair: the directions of the adjacency lists of the edge's
# source and destination endpoints that are intersected.
DirectionPair = Tuple[Direction, Direction]

DEFAULT_PAIRS: Tuple[DirectionPair, ...] = (
    (Direction.FORWARD, Direction.FORWARD),
)

ALL_PAIRS: Tuple[DirectionPair, ...] = (
    (Direction.FORWARD, Direction.FORWARD),
    (Direction.FORWARD, Direction.BACKWARD),
    (Direction.BACKWARD, Direction.FORWARD),
    (Direction.BACKWARD, Direction.BACKWARD),
)


@dataclass
class TriangleIndex:
    """Precomputed triangle-closing extension sets keyed by data edge.

    Attributes
    ----------
    graph:
        The indexed graph.
    pairs:
        The direction pairs the index covers.
    entries:
        ``(src, dst, dir_src, dir_dst) -> sorted vertex-id array``.
    """

    graph: Graph
    pairs: Tuple[DirectionPair, ...]
    entries: Dict[Tuple[int, int, str, str], np.ndarray] = field(default_factory=dict)
    build_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        graph: Graph,
        pairs: Sequence[DirectionPair] = DEFAULT_PAIRS,
        edge_label: Optional[int] = ANY_LABEL,
    ) -> "TriangleIndex":
        """Index every data edge with ``edge_label`` under each direction pair."""
        import time

        start = time.perf_counter()
        index = cls(graph=graph, pairs=tuple(pairs))
        src_array, dst_array = graph.edges(edge_label=edge_label)
        for u, v in zip(src_array, dst_array):
            u, v = int(u), int(v)
            for dir_u, dir_v in index.pairs:
                key = (u, v, dir_u.value, dir_v.value)
                if key in index.entries:
                    continue
                list_u = graph.neighbors(u, dir_u)
                list_v = graph.neighbors(v, dir_v)
                index.entries[key] = intersect_sorted(list_u, list_v)
        index.build_seconds = time.perf_counter() - start
        return index

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def lookup(
        self,
        vertex_a: int,
        vertex_b: int,
        direction_a: Direction,
        direction_b: Direction,
    ) -> Optional[np.ndarray]:
        """The precomputed extension set for intersecting ``vertex_a``'s list in
        ``direction_a`` with ``vertex_b``'s list in ``direction_b``.

        Returns ``None`` when the pair of vertices is not an indexed data edge
        (in either orientation) or the direction pair was not built, in which
        case the caller must fall back to an ordinary intersection.
        """
        entry = self.entries.get((vertex_a, vertex_b, direction_a.value, direction_b.value))
        if entry is not None:
            return entry
        # The same intersection may be stored under the reversed edge.
        return self.entries.get((vertex_b, vertex_a, direction_b.value, direction_a.value))

    def covers(self, direction_a: Direction, direction_b: Direction) -> bool:
        """True when the index was built for this direction pair (in either order)."""
        return (direction_a, direction_b) in self.pairs or (
            direction_b,
            direction_a,
        ) in self.pairs

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    @property
    def num_indexed_edges(self) -> int:
        return len({(u, v) for (u, v, _, _) in self.entries})

    @property
    def num_entries(self) -> int:
        return len(self.entries)

    def total_triangles(self) -> int:
        """Total number of stored extension vertices (triangle closings)."""
        return int(sum(len(extension) for extension in self.entries.values()))

    def memory_estimate_bytes(self) -> int:
        """Rough memory footprint: 8 bytes per stored vertex id plus key overhead."""
        return 8 * self.total_triangles() + 64 * len(self.entries)

    def summary(self) -> str:
        return (
            f"TriangleIndex(edges={self.num_indexed_edges}, entries={self.num_entries}, "
            f"triangles={self.total_triangles()}, built_in={self.build_seconds:.2f}s)"
        )

    def __repr__(self) -> str:
        return self.summary()


__all__ = ["TriangleIndex", "DirectionPair", "DEFAULT_PAIRS", "ALL_PAIRS"]
