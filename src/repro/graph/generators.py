"""Synthetic directed-graph generators.

The paper evaluates on SNAP graphs (Amazon, Epinions, Google, BerkStan,
LiveJournal, Twitter).  Those graphs are neither shipped with this repository
nor downloadable in the offline reproduction environment, so the dataset
registry (:mod:`repro.datasets`) builds scaled-down *structural archetypes*
with these generators.  The experiments in the paper hinge on three structural
properties which all generators expose as parameters:

* degree skew (how uneven forward/backward adjacency list sizes are),
* clustering / cyclicity (how many triangles and cliques the graph contains),
* reciprocity and direction asymmetry (how different forward and backward
  lists of the same vertex are).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def erdos_renyi(
    num_vertices: int, num_edges: int, seed: Optional[int] = 0, name: str = "erdos-renyi"
) -> Graph:
    """Uniform random directed graph with ``num_edges`` distinct edges."""
    rng = _rng(seed)
    builder = GraphBuilder()
    seen = set()
    target = min(num_edges, num_vertices * (num_vertices - 1))
    while len(seen) < target:
        batch = rng.integers(0, num_vertices, size=(max(64, target - len(seen)), 2))
        for s, d in batch:
            if s != d and (s, d) not in seen:
                seen.add((int(s), int(d)))
                builder.add_edge(int(s), int(d))
                if len(seen) >= target:
                    break
    return builder.build(name=name, num_vertices=num_vertices)


def power_law(
    num_vertices: int,
    num_edges: int,
    out_exponent: float = 2.2,
    in_exponent: float = 2.2,
    seed: Optional[int] = 0,
    name: str = "power-law",
) -> Graph:
    """Directed configuration-model-like graph with power-law in/out degrees.

    Source and destination endpoints are drawn independently from Zipfian
    weights with the given exponents; smaller exponents give heavier skew.
    """
    rng = _rng(seed)
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    out_weights = ranks ** (-1.0 / max(out_exponent - 1.0, 0.1))
    in_weights = ranks ** (-1.0 / max(in_exponent - 1.0, 0.1))
    out_weights /= out_weights.sum()
    in_weights /= in_weights.sum()
    out_perm = rng.permutation(num_vertices)
    in_perm = rng.permutation(num_vertices)
    builder = GraphBuilder()
    seen = set()
    attempts = 0
    max_attempts = num_edges * 20
    while len(seen) < num_edges and attempts < max_attempts:
        size = max(256, num_edges - len(seen))
        srcs = out_perm[rng.choice(num_vertices, size=size, p=out_weights)]
        dsts = in_perm[rng.choice(num_vertices, size=size, p=in_weights)]
        for s, d in zip(srcs, dsts):
            attempts += 1
            if s != d and (s, d) not in seen:
                seen.add((int(s), int(d)))
                builder.add_edge(int(s), int(d))
                if len(seen) >= num_edges:
                    break
    return builder.build(name=name, num_vertices=num_vertices)


def preferential_attachment(
    num_vertices: int,
    edges_per_vertex: int = 4,
    reciprocity: float = 0.3,
    seed: Optional[int] = 0,
    name: str = "preferential-attachment",
) -> Graph:
    """Barabási–Albert-style growth producing heavy-tailed degrees and many
    triangles.  ``reciprocity`` controls how often the reverse edge is added,
    which increases the symmetric-triangle (cycle) density."""
    rng = _rng(seed)
    builder = GraphBuilder()
    targets = list(range(min(edges_per_vertex, num_vertices)))
    repeated: list = list(targets)
    for v in range(len(targets), num_vertices):
        chosen = set()
        while len(chosen) < min(edges_per_vertex, len(repeated)):
            chosen.add(int(repeated[rng.integers(0, len(repeated))]))
        for t in chosen:
            if t == v:
                continue
            builder.add_edge(v, t)
            repeated.append(t)
            repeated.append(v)
            if rng.random() < reciprocity:
                builder.add_edge(t, v)
    return builder.build(name=name, num_vertices=num_vertices)


def clustered_social(
    num_vertices: int,
    avg_degree: int = 8,
    clustering: float = 0.4,
    reciprocity: float = 0.4,
    seed: Optional[int] = 0,
    name: str = "clustered-social",
) -> Graph:
    """Social-network archetype: power-law hubs plus triadic closure.

    A fraction ``clustering`` of edges is created by closing open wedges
    (connecting two neighbours of a common vertex), which directly controls the
    graph's clustering coefficient and therefore its triangle/clique density.
    """
    rng = _rng(seed)
    base = preferential_attachment(
        num_vertices,
        edges_per_vertex=max(1, avg_degree // 2),
        reciprocity=reciprocity,
        seed=seed,
        name=name,
    )
    builder = GraphBuilder()
    for s, d, l in base.iter_edges():
        builder.add_edge(s, d, l)
    # Triadic closure: for random vertices, connect two of their neighbours.
    extra = int(clustering * base.num_edges)
    from repro.graph.graph import Direction

    out_deg = base.degree_array(Direction.FORWARD)
    candidates = np.flatnonzero(out_deg >= 2)
    added = 0
    guard = 0
    while added < extra and len(candidates) and guard < extra * 20:
        guard += 1
        v = int(candidates[rng.integers(0, len(candidates))])
        nbrs = base.neighbors(v, Direction.FORWARD)
        if len(nbrs) < 2:
            continue
        a, b = rng.choice(nbrs, size=2, replace=False)
        if a != b:
            builder.add_edge(int(a), int(b))
            added += 1
            if rng.random() < reciprocity:
                builder.add_edge(int(b), int(a))
    return builder.build(name=name, num_vertices=num_vertices)


def web_graph(
    num_vertices: int,
    avg_degree: int = 10,
    hub_fraction: float = 0.02,
    seed: Optional[int] = 0,
    name: str = "web",
) -> Graph:
    """Web-graph archetype (BerkStan/Google-like): strong asymmetry between
    forward and backward list sizes — a few hub pages are pointed to by very
    many pages while out-degrees stay moderate."""
    rng = _rng(seed)
    num_hubs = max(1, int(hub_fraction * num_vertices))
    hubs = rng.choice(num_vertices, size=num_hubs, replace=False)
    builder = GraphBuilder()
    num_edges = num_vertices * avg_degree
    seen = set()
    attempts = 0
    while len(seen) < num_edges and attempts < num_edges * 20:
        attempts += 1
        s = int(rng.integers(0, num_vertices))
        # 60% of links point at hubs, the rest are uniform.
        if rng.random() < 0.6:
            d = int(hubs[rng.integers(0, num_hubs)])
        else:
            d = int(rng.integers(0, num_vertices))
        if s != d and (s, d) not in seen:
            seen.add((s, d))
            builder.add_edge(s, d)
    # Add some intra-site cliques for locality-driven cycles.
    site_size = 6
    for start in range(0, num_vertices - site_size, num_vertices // max(1, num_vertices // 200)):
        members = list(range(start, start + site_size))
        for i in members:
            for j in members:
                if i != j and rng.random() < 0.3 and (i, j) not in seen:
                    seen.add((i, j))
                    builder.add_edge(i, j)
    return builder.build(name=name, num_vertices=num_vertices)


def grid_with_chords(
    side: int, chord_probability: float = 0.05, seed: Optional[int] = 0, name: str = "grid"
) -> Graph:
    """Sparse, low-clustering control graph used in tests."""
    rng = _rng(seed)
    builder = GraphBuilder()
    num_vertices = side * side
    for r in range(side):
        for c in range(side):
            v = r * side + c
            if c + 1 < side:
                builder.add_edge(v, v + 1)
            if r + 1 < side:
                builder.add_edge(v, v + side)
            if rng.random() < chord_probability:
                w = int(rng.integers(0, num_vertices))
                if w != v:
                    builder.add_edge(v, w)
    return builder.build(name=name, num_vertices=num_vertices)


def complete_graph(num_vertices: int, name: str = "complete") -> Graph:
    """Fully connected directed graph (every ordered pair); used to exercise
    clique queries and worst-case intersection paths in tests."""
    builder = GraphBuilder()
    for i in range(num_vertices):
        for j in range(num_vertices):
            if i != j:
                builder.add_edge(i, j)
    return builder.build(name=name, num_vertices=num_vertices)
