"""In-memory directed labeled graph with sorted adjacency lists.

The storage layout mirrors Graphflow's (paper Section 7):

* both forward and backward adjacency lists are indexed,
* adjacency lists are partitioned first by the edge label and then by the
  label of the neighbour vertex,
* the neighbours within each partition are sorted by vertex id, which makes
  multiway intersections (the core of WCO plans) fast merge operations.

Graphs are immutable once built; use :class:`repro.graph.builder.GraphBuilder`
to construct them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.errors import GraphConstructionError

# Wildcard label: "any label". Queries with unlabeled vertices/edges use this.
ANY_LABEL: Optional[int] = None


class Direction(enum.Enum):
    """Direction of an adjacency list access.

    ``FORWARD`` follows edges from source to destination (out-neighbours);
    ``BACKWARD`` follows them from destination to source (in-neighbours).
    """

    FORWARD = "fwd"
    BACKWARD = "bwd"

    def reverse(self) -> "Direction":
        return Direction.BACKWARD if self is Direction.FORWARD else Direction.FORWARD

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Direction.{self.name}"


@dataclass(frozen=True)
class _CSR:
    """A compact sparse-row adjacency structure for one partition."""

    indptr: np.ndarray
    indices: np.ndarray

    def neighbors(self, vertex: int) -> np.ndarray:
        return self.indices[self.indptr[vertex]:self.indptr[vertex + 1]]

    def degree(self, vertex: int) -> int:
        return int(self.indptr[vertex + 1] - self.indptr[vertex])


def _build_csr(
    num_vertices: int, sources: np.ndarray, targets: np.ndarray
) -> _CSR:
    """Build a CSR whose neighbour lists are sorted by vertex id."""
    order = np.lexsort((targets, sources))
    sources = sources[order]
    targets = targets[order]
    counts = np.bincount(sources, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return _CSR(indptr=indptr, indices=targets.astype(np.int64))


@dataclass
class Graph:
    """A directed graph with integer vertex and edge labels.

    Vertices are identified by consecutive integers ``0..num_vertices-1``.
    Labels are small non-negative integers; unlabeled graphs use label ``0``
    everywhere (the paper treats unlabeled queries as labeled queries over a
    graph with a single label).

    Attributes
    ----------
    vertex_labels:
        ``int64`` array of length ``num_vertices``.
    edge_src, edge_dst, edge_labels:
        Parallel ``int64`` arrays of length ``num_edges`` listing every edge.
    """

    vertex_labels: np.ndarray
    edge_src: np.ndarray
    edge_dst: np.ndarray
    edge_labels: np.ndarray
    name: str = "graph"

    # Partitioned adjacency: maps (edge_label, neighbour_label) -> _CSR.
    _fwd_partitions: Dict[Tuple[int, int], _CSR] = field(default_factory=dict, repr=False)
    _bwd_partitions: Dict[Tuple[int, int], _CSR] = field(default_factory=dict, repr=False)
    # Lazily merged wildcard partitions keyed by (edge_label, neighbour_label)
    # where either component may be ANY_LABEL.
    _merged_cache: Dict[Tuple[str, Optional[int], Optional[int]], _CSR] = field(
        default_factory=dict, repr=False
    )
    # Sorted (u * num_vertices + w) key arrays per CSR partition, built lazily
    # for the vectorized executor's batched membership tests.
    _adj_key_cache: Dict[Tuple[str, Optional[int], Optional[int]], np.ndarray] = field(
        default_factory=dict, repr=False
    )

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        self.vertex_labels = np.asarray(self.vertex_labels, dtype=np.int64)
        self.edge_src = np.asarray(self.edge_src, dtype=np.int64)
        self.edge_dst = np.asarray(self.edge_dst, dtype=np.int64)
        self.edge_labels = np.asarray(self.edge_labels, dtype=np.int64)
        if not (len(self.edge_src) == len(self.edge_dst) == len(self.edge_labels)):
            raise GraphConstructionError("edge arrays must have equal length")
        if len(self.edge_src) and (
            self.edge_src.max(initial=0) >= self.num_vertices
            or self.edge_dst.max(initial=0) >= self.num_vertices
        ):
            raise GraphConstructionError("edge endpoint out of range")
        if len(self.edge_src) and (self.edge_src.min(initial=0) < 0 or self.edge_dst.min(initial=0) < 0):
            raise GraphConstructionError("edge endpoint out of range")
        self._build_partitions()

    def _build_partitions(self) -> None:
        n = self.num_vertices
        src, dst, lab = self.edge_src, self.edge_dst, self.edge_labels
        dst_vlabels = self.vertex_labels[dst] if len(dst) else dst
        src_vlabels = self.vertex_labels[src] if len(src) else src
        edge_label_values = np.unique(lab) if len(lab) else np.array([], dtype=np.int64)
        vertex_label_values = np.unique(self.vertex_labels)
        self._fwd_partitions = {}
        self._bwd_partitions = {}
        for el in edge_label_values:
            el_mask = lab == el
            for vl in vertex_label_values:
                fwd_mask = el_mask & (dst_vlabels == vl)
                if fwd_mask.any():
                    self._fwd_partitions[(int(el), int(vl))] = _build_csr(
                        n, src[fwd_mask], dst[fwd_mask]
                    )
                bwd_mask = el_mask & (src_vlabels == vl)
                if bwd_mask.any():
                    self._bwd_partitions[(int(el), int(vl))] = _build_csr(
                        n, dst[bwd_mask], src[bwd_mask]
                    )

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        return int(len(self.vertex_labels))

    @property
    def num_edges(self) -> int:
        return int(len(self.edge_src))

    @property
    def edge_label_values(self) -> np.ndarray:
        """Distinct edge labels present in the graph."""
        return np.unique(self.edge_labels) if self.num_edges else np.array([], dtype=np.int64)

    @property
    def vertex_label_values(self) -> np.ndarray:
        """Distinct vertex labels present in the graph."""
        return np.unique(self.vertex_labels)

    def vertex_label(self, vertex: int) -> int:
        return int(self.vertex_labels[vertex])

    def vertices_with_label(self, label: Optional[int]) -> np.ndarray:
        """All vertex ids carrying ``label`` (or all vertices for ANY_LABEL)."""
        if label is ANY_LABEL:
            return np.arange(self.num_vertices, dtype=np.int64)
        return np.flatnonzero(self.vertex_labels == label).astype(np.int64)

    # ------------------------------------------------------------------ #
    # adjacency access
    # ------------------------------------------------------------------ #
    def _partition_map(self, direction: Direction) -> Dict[Tuple[int, int], _CSR]:
        return self._fwd_partitions if direction is Direction.FORWARD else self._bwd_partitions

    def _merged(
        self,
        direction: Direction,
        edge_label: Optional[int],
        neighbor_label: Optional[int],
    ) -> _CSR:
        key = (direction.value, edge_label, neighbor_label)
        cached = self._merged_cache.get(key)
        if cached is not None:
            return cached
        parts = [
            csr
            for (el, vl), csr in self._partition_map(direction).items()
            if (edge_label is ANY_LABEL or el == edge_label)
            and (neighbor_label is ANY_LABEL or vl == neighbor_label)
        ]
        merged = self._merge_partitions(parts)
        self._merged_cache[key] = merged
        return merged

    def _merge_partitions(self, parts) -> _CSR:
        n = self.num_vertices
        if not parts:
            return _CSR(np.zeros(n + 1, dtype=np.int64), np.array([], dtype=np.int64))
        if len(parts) == 1:
            return parts[0]
        counts = np.zeros(n, dtype=np.int64)
        for csr in parts:
            counts += np.diff(csr.indptr)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        cursor = indptr[:-1].copy()
        for csr in parts:
            for v in range(n):
                nbrs = csr.neighbors(v)
                if len(nbrs):
                    indices[cursor[v]:cursor[v] + len(nbrs)] = nbrs
                    cursor[v] += len(nbrs)
        # Re-sort each vertex's merged list so intersections stay merge-based.
        for v in range(n):
            seg = indices[indptr[v]:indptr[v + 1]]
            seg.sort()
        return _CSR(indptr, indices)

    def neighbors(
        self,
        vertex: int,
        direction: Direction,
        edge_label: Optional[int] = ANY_LABEL,
        neighbor_label: Optional[int] = ANY_LABEL,
    ) -> np.ndarray:
        """Sorted neighbour list of ``vertex`` in ``direction`` restricted to
        edges with ``edge_label`` and neighbours with ``neighbor_label``."""
        if edge_label is not ANY_LABEL and neighbor_label is not ANY_LABEL:
            csr = self._partition_map(direction).get((edge_label, neighbor_label))
            if csr is None:
                return np.array([], dtype=np.int64)
            return csr.neighbors(vertex)
        return self._merged(direction, edge_label, neighbor_label).neighbors(vertex)

    def csr(
        self,
        direction: Direction,
        edge_label: Optional[int] = ANY_LABEL,
        neighbor_label: Optional[int] = ANY_LABEL,
    ) -> _CSR:
        """The CSR partition backing :meth:`neighbors` for these filters.

        The vectorized executor slices ``indptr``/``indices`` directly to
        gather many adjacency lists in one NumPy operation; an empty CSR is
        returned when no edge matches the filters.
        """
        if edge_label is not ANY_LABEL and neighbor_label is not ANY_LABEL:
            csr = self._partition_map(direction).get((edge_label, neighbor_label))
            if csr is None:
                return _CSR(
                    np.zeros(self.num_vertices + 1, dtype=np.int64),
                    np.array([], dtype=np.int64),
                )
            return csr
        return self._merged(direction, edge_label, neighbor_label)

    def adjacency_key_array(
        self,
        direction: Direction,
        edge_label: Optional[int] = ANY_LABEL,
        neighbor_label: Optional[int] = ANY_LABEL,
    ) -> np.ndarray:
        """Sorted array of ``u * num_vertices + w`` keys, one per adjacency
        pair of the filtered partition.

        ``w in neighbors(u, ...)`` becomes a vectorized ``searchsorted``
        membership test over this array — the batch executor's replacement
        for per-tuple :meth:`has_edge` calls.  Sorted by construction: the
        CSR groups pairs by ascending ``u`` and each segment is sorted.
        """
        key = (direction.value, edge_label, neighbor_label)
        cached = self._adj_key_cache.get(key)
        if cached is not None:
            return cached
        csr = self.csr(direction, edge_label, neighbor_label)
        degrees = np.diff(csr.indptr)
        keys = (
            np.repeat(np.arange(self.num_vertices, dtype=np.int64), degrees)
            * self.num_vertices
            + csr.indices
        )
        keys.setflags(write=False)
        self._adj_key_cache[key] = keys
        return keys

    def degree(
        self,
        vertex: int,
        direction: Direction,
        edge_label: Optional[int] = ANY_LABEL,
        neighbor_label: Optional[int] = ANY_LABEL,
    ) -> int:
        """Size of the adjacency-list partition ``neighbors(...)`` would return."""
        if edge_label is not ANY_LABEL and neighbor_label is not ANY_LABEL:
            csr = self._partition_map(direction).get((edge_label, neighbor_label))
            return 0 if csr is None else csr.degree(vertex)
        return self._merged(direction, edge_label, neighbor_label).degree(vertex)

    def degree_array(
        self,
        direction: Direction,
        edge_label: Optional[int] = ANY_LABEL,
        neighbor_label: Optional[int] = ANY_LABEL,
    ) -> np.ndarray:
        """Vector of degrees for all vertices (used by statistics and costs)."""
        csr = (
            self._partition_map(direction).get((edge_label, neighbor_label))
            if edge_label is not ANY_LABEL and neighbor_label is not ANY_LABEL
            else self._merged(direction, edge_label, neighbor_label)
        )
        if csr is None:
            return np.zeros(self.num_vertices, dtype=np.int64)
        return np.diff(csr.indptr)

    # ------------------------------------------------------------------ #
    # edge scans
    # ------------------------------------------------------------------ #
    def edges(
        self,
        edge_label: Optional[int] = ANY_LABEL,
        src_label: Optional[int] = ANY_LABEL,
        dst_label: Optional[int] = ANY_LABEL,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(src, dst)`` arrays of all edges matching the label filters.

        This is what the SCAN operator iterates over.  The unfiltered case
        (every filter ``ANY_LABEL``) is hot in catalogue construction, morsel
        partitioning, and update-rate accounting, so it short-circuits to the
        stored edge arrays instead of allocating full-edge boolean masks.
        """
        if edge_label is ANY_LABEL and src_label is ANY_LABEL and dst_label is ANY_LABEL:
            return self.edge_src, self.edge_dst
        mask: Optional[np.ndarray] = None
        if edge_label is not ANY_LABEL:
            mask = self.edge_labels == edge_label
        if src_label is not ANY_LABEL:
            part = self.vertex_labels[self.edge_src] == src_label
            mask = part if mask is None else mask & part
        if dst_label is not ANY_LABEL:
            part = self.vertex_labels[self.edge_dst] == dst_label
            mask = part if mask is None else mask & part
        return self.edge_src[mask], self.edge_dst[mask]

    def count_edges(
        self,
        edge_label: Optional[int] = ANY_LABEL,
        src_label: Optional[int] = ANY_LABEL,
        dst_label: Optional[int] = ANY_LABEL,
    ) -> int:
        if edge_label is ANY_LABEL and src_label is ANY_LABEL and dst_label is ANY_LABEL:
            return self.num_edges
        src, _ = self.edges(edge_label, src_label, dst_label)
        return int(len(src))

    def has_edge(
        self, src: int, dst: int, edge_label: Optional[int] = ANY_LABEL
    ) -> bool:
        """Membership test using binary search on the sorted forward list."""
        nbrs = self.neighbors(src, Direction.FORWARD, edge_label, ANY_LABEL)
        pos = np.searchsorted(nbrs, dst)
        return bool(pos < len(nbrs) and nbrs[pos] == dst)

    def iter_edges(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate over ``(src, dst, label)`` triples."""
        for s, d, l in zip(self.edge_src, self.edge_dst, self.edge_labels):
            yield int(s), int(d), int(l)

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def relabel(
        self, vertex_labels: Optional[np.ndarray] = None, edge_labels: Optional[np.ndarray] = None
    ) -> "Graph":
        """Return a copy of this graph with new vertex and/or edge labels."""
        return Graph(
            vertex_labels=self.vertex_labels if vertex_labels is None else vertex_labels,
            edge_src=self.edge_src,
            edge_dst=self.edge_dst,
            edge_labels=self.edge_labels if edge_labels is None else edge_labels,
            name=self.name,
        )

    def __repr__(self) -> str:
        return (
            f"Graph(name={self.name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges}, vertex_labels={len(self.vertex_label_values)}, "
            f"edge_labels={len(self.edge_label_values)})"
        )
