"""Random labeling of graphs.

The paper's labeled experiments use the notation ``QJi``: the dataset's edges
are labeled uniformly at random from ``{l1, ..., li}`` and the query edges get
labels from the same domain.  These helpers implement that protocol for both
edge and vertex labels.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.graph import Graph


def with_random_edge_labels(
    graph: Graph, num_labels: int, seed: Optional[int] = 0
) -> Graph:
    """Return a copy of ``graph`` whose edges are labeled uniformly at random
    from ``0..num_labels-1`` (the paper's ``QJi`` dataset labeling)."""
    if num_labels <= 1:
        return graph.relabel(edge_labels=np.zeros(graph.num_edges, dtype=np.int64))
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_labels, size=graph.num_edges, dtype=np.int64)
    return graph.relabel(edge_labels=labels)


def with_random_vertex_labels(
    graph: Graph, num_labels: int, seed: Optional[int] = 0
) -> Graph:
    """Return a copy of ``graph`` whose vertices are labeled uniformly at
    random from ``0..num_labels-1``."""
    if num_labels <= 1:
        return graph.relabel(vertex_labels=np.zeros(graph.num_vertices, dtype=np.int64))
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_labels, size=graph.num_vertices, dtype=np.int64)
    return graph.relabel(vertex_labels=labels)


def with_random_labels(
    graph: Graph,
    num_edge_labels: int = 1,
    num_vertex_labels: int = 1,
    seed: Optional[int] = 0,
) -> Graph:
    """Randomly label both edges and vertices."""
    labeled = with_random_edge_labels(graph, num_edge_labels, seed=seed)
    return with_random_vertex_labels(labeled, num_vertex_labels, seed=None if seed is None else seed + 1)
