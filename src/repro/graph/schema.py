"""Named label schemas.

The storage layer (:mod:`repro.graph.graph`) keeps vertex and edge labels as
small integers, which is what Graphflow's partitioned adjacency lists index.
Users, however, think in terms of named labels — ``Person``, ``FOLLOWS``,
``Account`` — exactly as in the Cypher fragment Graphflow supports
(Section 7).  A :class:`GraphSchema` is the bidirectional mapping between
those names and the integer ids stored in a :class:`~repro.graph.graph.Graph`.

The schema is deliberately separate from the graph object: the same graph can
be interpreted under different schemas (e.g. the random ``QJi`` labelings of
Section 8.1.3 have no meaningful names), and a schema can be persisted next to
an edge-list file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import GraphConstructionError


class _LabelSpace:
    """One name <-> id mapping (used for vertex labels and edge labels)."""

    def __init__(self, kind: str) -> None:
        self._kind = kind
        self._name_to_id: Dict[str, int] = {}
        self._id_to_name: Dict[int, str] = {}

    def __len__(self) -> int:
        return len(self._name_to_id)

    def __contains__(self, name: str) -> bool:
        return name in self._name_to_id

    def names(self) -> List[str]:
        return [self._id_to_name[i] for i in sorted(self._id_to_name)]

    def add(self, name: str, label_id: Optional[int] = None) -> int:
        existing = self._name_to_id.get(name)
        if existing is not None:
            if label_id is not None and label_id != existing:
                raise GraphConstructionError(
                    f"{self._kind} label {name!r} is already mapped to {existing}, "
                    f"cannot remap it to {label_id}"
                )
            return existing
        if label_id is None:
            label_id = len(self._name_to_id)
        if label_id in self._id_to_name:
            raise GraphConstructionError(
                f"{self._kind} label id {label_id} is already used by "
                f"{self._id_to_name[label_id]!r}"
            )
        self._name_to_id[name] = label_id
        self._id_to_name[label_id] = name
        return label_id

    def id_of(self, name: str, create: bool = False) -> int:
        if name in self._name_to_id:
            return self._name_to_id[name]
        if create:
            return self.add(name)
        raise KeyError(f"unknown {self._kind} label {name!r}; known: {self.names()}")

    def name_of(self, label_id: int) -> str:
        if label_id in self._id_to_name:
            return self._id_to_name[label_id]
        raise KeyError(f"unknown {self._kind} label id {label_id}")

    def items(self) -> List[Tuple[str, int]]:
        return sorted(self._name_to_id.items(), key=lambda kv: kv[1])


@dataclass
class GraphSchema:
    """Bidirectional mapping between label names and stored integer ids.

    Example
    -------
    >>> schema = GraphSchema()
    >>> schema.add_vertex_label("Person")
    0
    >>> schema.add_edge_label("FOLLOWS")
    0
    >>> schema.vertex_label_id("Person")
    0
    >>> schema.edge_label_name(0)
    'FOLLOWS'
    """

    vertex_labels: _LabelSpace = field(default_factory=lambda: _LabelSpace("vertex"))
    edge_labels: _LabelSpace = field(default_factory=lambda: _LabelSpace("edge"))

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def add_vertex_label(self, name: str, label_id: Optional[int] = None) -> int:
        """Register a vertex label name, returning its integer id."""
        return self.vertex_labels.add(name, label_id)

    def add_edge_label(self, name: str, label_id: Optional[int] = None) -> int:
        """Register an edge label (Cypher: relationship type) name."""
        return self.edge_labels.add(name, label_id)

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def vertex_label_id(self, name: str, create: bool = False) -> int:
        return self.vertex_labels.id_of(name, create=create)

    def edge_label_id(self, name: str, create: bool = False) -> int:
        return self.edge_labels.id_of(name, create=create)

    def vertex_label_name(self, label_id: int) -> str:
        return self.vertex_labels.name_of(label_id)

    def edge_label_name(self, label_id: int) -> str:
        return self.edge_labels.name_of(label_id)

    def resolve_vertex_label(self, token: Optional[str], create: bool = False) -> Optional[int]:
        """Map a label token from a query string to an integer id.

        ``None`` stays ``None`` (wildcard); integer-looking tokens are used as
        raw ids; anything else is resolved (or registered) through the schema.
        """
        if token is None:
            return None
        if token.lstrip("-").isdigit():
            return int(token)
        return self.vertex_label_id(token, create=create)

    def resolve_edge_label(self, token: Optional[str], create: bool = False) -> Optional[int]:
        """Same as :meth:`resolve_vertex_label`, for edge labels."""
        if token is None:
            return None
        if token.lstrip("-").isdigit():
            return int(token)
        return self.edge_label_id(token, create=create)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        return {
            "vertex_labels": dict(self.vertex_labels.items()),
            "edge_labels": dict(self.edge_labels.items()),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "GraphSchema":
        schema = cls()
        for name, label_id in sorted(
            (data.get("vertex_labels") or {}).items(), key=lambda kv: kv[1]
        ):
            schema.add_vertex_label(name, int(label_id))
        for name, label_id in sorted(
            (data.get("edge_labels") or {}).items(), key=lambda kv: kv[1]
        ):
            schema.add_edge_label(name, int(label_id))
        return schema

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "GraphSchema":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "GraphSchema":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    # ------------------------------------------------------------------ #
    @classmethod
    def from_names(
        cls,
        vertex_labels: Iterable[str] = (),
        edge_labels: Iterable[str] = (),
    ) -> "GraphSchema":
        """Build a schema by listing names; ids are assigned in order."""
        schema = cls()
        for name in vertex_labels:
            schema.add_vertex_label(name)
        for name in edge_labels:
            schema.add_edge_label(name)
        return schema

    def __repr__(self) -> str:
        return (
            f"GraphSchema(vertex_labels={self.vertex_labels.names()}, "
            f"edge_labels={self.edge_labels.names()})"
        )


__all__ = ["GraphSchema"]
