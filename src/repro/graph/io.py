"""Reading and writing graphs as plain-text edge lists.

The format is the SNAP-style whitespace-separated edge list the paper's
datasets ship in, optionally extended with a third column carrying the edge
label.  Vertex labels can be stored in a companion file with ``vertex label``
lines.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

import numpy as np

from repro.errors import GraphConstructionError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph


def load_edge_list(
    path: str,
    comment_prefix: str = "#",
    vertex_label_path: Optional[str] = None,
    name: Optional[str] = None,
) -> Graph:
    """Load a graph from a whitespace-separated edge list file.

    Each non-comment line is ``src dst`` or ``src dst edge_label``.  Vertex ids
    are remapped to a dense ``0..n-1`` range in first-seen order.
    """
    if not os.path.exists(path):
        raise GraphConstructionError(f"edge list file not found: {path}")
    id_map: Dict[int, int] = {}

    def map_id(raw: int) -> int:
        if raw not in id_map:
            id_map[raw] = len(id_map)
        return id_map[raw]

    builder = GraphBuilder()
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith(comment_prefix):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphConstructionError(f"cannot parse edge line: {line!r}")
            src, dst = map_id(int(parts[0])), map_id(int(parts[1]))
            label = int(parts[2]) if len(parts) > 2 else 0
            if src != dst:
                builder.add_edge(src, dst, label)
    graph = builder.build(name=name or os.path.basename(path))
    if vertex_label_path:
        labels = np.zeros(graph.num_vertices, dtype=np.int64)
        with open(vertex_label_path) as f:
            for line in f:
                line = line.strip()
                if not line or line.startswith(comment_prefix):
                    continue
                raw, lab = line.split()[:2]
                raw_id = int(raw)
                if raw_id in id_map:
                    labels[id_map[raw_id]] = int(lab)
        graph = graph.relabel(vertex_labels=labels)
    return graph


def save_edge_list(graph: Graph, path: str, write_labels: bool = True) -> None:
    """Write ``graph`` as an edge list (with edge labels when requested)."""
    with open(path, "w") as f:
        f.write(f"# {graph.name}: {graph.num_vertices} vertices, {graph.num_edges} edges\n")
        for s, d, l in graph.iter_edges():
            if write_labels:
                f.write(f"{s} {d} {l}\n")
            else:
                f.write(f"{s} {d}\n")


def save_vertex_labels(graph: Graph, path: str) -> None:
    """Write vertex labels as ``vertex label`` lines."""
    with open(path, "w") as f:
        for v in range(graph.num_vertices):
            f.write(f"{v} {graph.vertex_label(v)}\n")
