"""The HTTP ops plane: a zero-dependency server for the observability stack.

Everything the obs layer captures in-process — the metrics registry, the
trace rings, the structured event log, the health checks — becomes
network-reachable through one stdlib :class:`ThreadingHTTPServer`:

================  ==========================================================
``GET /metrics``  Prometheus text exposition 0.0.4
                  (``MetricsRegistry.expose_prometheus``)
``GET /healthz``  liveness: 200 while the server thread responds
``GET /readyz``   readiness: runs the :class:`~repro.obs.health.HealthRegistry`
                  deep checks; 200 when ready, 503 when any critical check
                  fails or the node is draining (JSON report either way)
``GET /stats``    the attached stats callable's dict as JSON
                  (``QueryService.stats`` when serving)
``GET /traces``   recent trace summaries (``?n=``, ``?kind=query|update``)
``GET /traces/<id>``  one full trace (spans, operators, profile) or 404
``GET /slow``     the slow-query ring, full traces
``GET /events``   the event log as NDJSON (``?type=a,b``, ``?tail=N``); with
                  ``?follow=1`` the response streams new records as they are
                  emitted, surviving log rotations
``POST /drain``   force ``/readyz`` to 503 (load-balancer rotation hook)
``POST /undrain`` restore check-driven readiness
================  ==========================================================

Design notes: the server binds on construction (``port=0`` picks an
ephemeral port, exposed via :attr:`OpsServer.port` — tests and embedders
never race for a fixed port) and serves from a daemon thread, one thread
per connection (``ThreadingHTTPServer``), so a long-lived ``/events``
follower never blocks a concurrent scrape.  Responses are HTTP/1.0 with
``Connection: close`` — streaming NDJSON then needs no chunked framing;
the stream simply ends at connection close.  :meth:`OpsServer.close` flips
a stop flag every follower polls, so shutdown never hangs on an idle
stream.  Read-only by design: the only mutating verbs are the two drain
toggles, which touch readiness state, never data.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro.obs.events import follow_events, tail_events
from repro.obs.health import HealthRegistry

__all__ = ["OpsServer", "parse_ops_addr", "DEFAULT_OPS_HOST"]

logger = logging.getLogger("repro.obs.http")

#: Loopback by default: the ops plane is an operational surface, not a
#: public API — exposing it wider is an explicit deployment decision.
DEFAULT_OPS_HOST = "127.0.0.1"


def parse_ops_addr(value: Union[int, str, Tuple[str, int]]) -> Tuple[str, int]:
    """Normalise an ops-address spec into ``(host, port)``.

    Accepts an int port, a ``"port"`` / ``"host:port"`` string, or a
    ``(host, port)`` tuple.  Port 0 asks the OS for an ephemeral port.
    """
    if isinstance(value, tuple):
        host, port = value
        return str(host) or DEFAULT_OPS_HOST, int(port)
    if isinstance(value, int):
        return DEFAULT_OPS_HOST, value
    text = str(value).strip()
    if ":" in text:
        host, _, port_text = text.rpartition(":")
        return host or DEFAULT_OPS_HOST, int(port_text)
    return DEFAULT_OPS_HOST, int(text)


class _OpsHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # Fast restarts: a closed ops port must be rebindable immediately.
    allow_reuse_address = True
    ops: "OpsServer"


class _Handler(BaseHTTPRequestHandler):
    server_version = "graphflow-ops/1"
    protocol_version = "HTTP/1.0"

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    @property
    def ops(self) -> "OpsServer":
        return self.server.ops  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("%s %s", self.address_string(), format % args)

    def _send_body(
        self, body: bytes, status: int = 200, content_type: str = "application/json"
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, payload: object, status: int = 200) -> None:
        body = json.dumps(payload, indent=2, default=str).encode("utf-8") + b"\n"
        self._send_body(body, status=status)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message, "status": status}, status=status)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - stdlib handler contract
        parts = urlsplit(self.path)
        path = parts.path.rstrip("/") or "/"
        query = parse_qs(parts.query)
        try:
            if path == "/metrics":
                self._handle_metrics()
            elif path == "/healthz":
                self._send_json({"status": "ok"})
            elif path == "/readyz":
                self._handle_readyz()
            elif path == "/stats":
                self._handle_stats()
            elif path == "/traces":
                self._handle_traces(query)
            elif path.startswith("/traces/"):
                self._handle_trace_by_id(path[len("/traces/"):])
            elif path == "/slow":
                self._handle_slow(query)
            elif path == "/events":
                self._handle_events(query)
            elif path == "/":
                self._handle_index()
            else:
                self._send_error_json(404, f"no such endpoint: {parts.path}")
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass
        except Exception as exc:  # pragma: no cover - handler bug guard
            logger.exception("ops handler error for %s", self.path)
            try:
                self._send_error_json(500, f"{type(exc).__name__}: {exc}")
            except OSError:
                pass

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler contract
        path = urlsplit(self.path).path.rstrip("/")
        health = self.ops.health
        if path == "/drain":
            if health is None:
                self._send_error_json(404, "no health registry attached")
                return
            health.set_draining(True, reason="drained via ops endpoint")
            self._send_json({"status": "draining"})
        elif path == "/undrain":
            if health is None:
                self._send_error_json(404, "no health registry attached")
                return
            health.set_draining(False)
            self._send_json({"status": "ready"})
        else:
            self._send_error_json(405, f"POST not supported on {path or '/'}")

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    def _handle_index(self) -> None:
        self._send_json(
            {
                "service": "graphflow ops plane",
                "endpoints": [
                    "/metrics",
                    "/healthz",
                    "/readyz",
                    "/stats",
                    "/traces",
                    "/traces/<id>",
                    "/slow",
                    "/events",
                ],
            }
        )

    def _handle_metrics(self) -> None:
        body = self.ops.obs.registry.expose_prometheus().encode("utf-8")
        self._send_body(
            body, content_type="text/plain; version=0.0.4; charset=utf-8"
        )

    def _handle_readyz(self) -> None:
        health = self.ops.health
        if health is None:
            # No deep checks wired: readiness degenerates to liveness.
            self._send_json({"status": "ready", "healthy": True, "checks": {}})
            return
        report = health.run()
        self._send_json(report.as_dict(), status=200 if report.healthy else 503)

    def _handle_stats(self) -> None:
        stats_fn = self.ops.stats_fn
        if stats_fn is None:
            self._send_error_json(404, "no stats source attached")
            return
        self._send_json(stats_fn())

    @staticmethod
    def _trace_summary(trace) -> dict:
        return {
            "trace_id": trace.trace_id,
            "kind": trace.kind,
            "query": trace.query_name,
            "status": trace.status,
            "mode": trace.mode,
            "started_at": trace.started_at,
            "total_seconds": trace.total_seconds,
            "num_matches": trace.num_matches,
            "plan_type": trace.plan_type,
        }

    def _int_param(self, query: dict, name: str, default: int) -> int:
        values = query.get(name)
        if not values:
            return default
        try:
            return int(values[0])
        except ValueError:
            raise _BadParam(f"{name} must be an integer, got {values[0]!r}")

    def _handle_traces(self, query: dict) -> None:
        try:
            n = self._int_param(query, "n", 50)
        except _BadParam as exc:
            self._send_error_json(400, str(exc))
            return
        kind = query.get("kind", [None])[0]
        if kind not in (None, "query", "update"):
            self._send_error_json(400, f"kind must be 'query' or 'update', got {kind!r}")
            return
        traces = self.ops.obs.traces.recent(n, kind=kind)
        self._send_json(
            {"count": len(traces), "traces": [self._trace_summary(t) for t in traces]}
        )

    def _handle_trace_by_id(self, id_text: str) -> None:
        try:
            trace_id = int(id_text)
        except ValueError:
            self._send_error_json(400, f"trace id must be an integer, got {id_text!r}")
            return
        trace = self.ops.obs.traces.get(trace_id)
        if trace is None:
            self._send_error_json(404, f"no trace {trace_id} in the ring (evicted or never recorded)")
            return
        self._send_json(trace.as_dict())

    def _handle_slow(self, query: dict) -> None:
        try:
            n = self._int_param(query, "n", 50)
        except _BadParam as exc:
            self._send_error_json(400, str(exc))
            return
        # Full traces, not summaries: slow entries outlive the main ring, so
        # /traces/<id> may already 404 for exactly the queries being debugged.
        slow = self.ops.obs.traces.slow(n)
        self._send_json({"count": len(slow), "traces": [t.as_dict() for t in slow]})

    def _handle_events(self, query: dict) -> None:
        log = self.ops.obs.event_log
        if log is None:
            self._send_error_json(404, "no event log attached to this database")
            return
        types_text = query.get("type", [None])[0]
        types = (
            [t.strip() for t in types_text.split(",") if t.strip()]
            if types_text
            else None
        )
        follow = query.get("follow", ["0"])[0] in ("1", "true", "yes")
        try:
            tail = self._int_param(query, "tail", 0 if follow else 100)
        except _BadParam as exc:
            self._send_error_json(400, str(exc))
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        if not follow:
            records = tail_events(log.path, n=tail, types=types) if tail else []
            body = b"".join(
                json.dumps(r, separators=(",", ":"), default=str).encode("utf-8") + b"\n"
                for r in records
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        # Follow mode: no Content-Length — the body streams until the client
        # disconnects or the server shuts down (stop flag polled per read).
        self.end_headers()
        if tail:
            for record in tail_events(log.path, n=tail, types=types):
                self._write_ndjson_record(record)
        stopping = self.ops._stopping
        for record in follow_events(
            log.path,
            types=types,
            poll_interval=self.ops.poll_interval,
            stop=stopping.is_set,
        ):
            self._write_ndjson_record(record)

    def _write_ndjson_record(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"), default=str).encode("utf-8")
        self.wfile.write(line + b"\n")
        self.wfile.flush()


class _BadParam(ValueError):
    pass


class OpsServer:
    """The ops-plane HTTP server, bound and serving on construction.

    Parameters
    ----------
    obs:
        The :class:`~repro.obs.Observability` root whose registry, trace
        rings, and event log the endpoints read.
    health:
        A :class:`~repro.obs.health.HealthRegistry` backing ``/readyz`` and
        the drain toggles; ``None`` degrades readiness to liveness.
    stats_fn:
        Zero-argument callable returning the ``/stats`` JSON document
        (``QueryService.stats`` when embedded in a service).
    host / port:
        Bind address.  Port 0 (the default) picks an ephemeral port — read
        :attr:`port` / :attr:`url` for the bound one.
    poll_interval:
        The ``/events?follow=1`` tail's poll cadence.
    """

    def __init__(
        self,
        obs,
        health: Optional[HealthRegistry] = None,
        stats_fn: Optional[Callable[[], dict]] = None,
        host: str = DEFAULT_OPS_HOST,
        port: int = 0,
        poll_interval: float = 0.2,
    ) -> None:
        self.obs = obs
        self.health = health
        self.stats_fn = stats_fn
        self.poll_interval = poll_interval
        self._stopping = threading.Event()
        self._server = _OpsHTTPServer((host, port), _Handler)
        self._server.ops = self
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="ops-http",
            daemon=True,
        )
        self._thread.start()
        logger.info("ops server listening on %s", self.url)

    # ------------------------------------------------------------------ #
    @property
    def address(self) -> Tuple[str, int]:
        """The actually-bound ``(host, port)``."""
        return self._server.server_address[:2]

    @property
    def host(self) -> str:
        return self.address[0]

    @property
    def port(self) -> int:
        return self.address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def closed(self) -> bool:
        return self._stopping.is_set()

    def close(self) -> None:
        """Stop serving: flip the stop flag (unblocks ``/events`` followers),
        shut the listener down, and join the server thread.  Idempotent."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "OpsServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "listening"
        return f"OpsServer({self.url}, {state})"
