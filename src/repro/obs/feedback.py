"""Cardinality feedback: per-plan actual-vs-estimated accounting.

The optimizer chooses plans from catalogue estimates; the executor measures
what actually happened.  :class:`CardinalityFeedback` aggregates the two per
*cached plan* (keyed by the query's canonical form), so a self-tuning loop
can ask "which plans' estimates have drifted?" and re-optimize exactly those
— :class:`repro.tuning.Reoptimizer` consumes :meth:`drifting_plans` directly.

Per key we keep execution counts, running mean and max of the trace-level
q-error (the *worst* per-operator q-error of each execution, which is the
quantity that misleads join ordering), and the most recent per-operator
rows.  The table is bounded: least-recently-updated keys are evicted past
``capacity`` so a service with an adversarial query stream holds a fixed
amount of feedback state.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.obs.trace import OperatorStats

__all__ = ["PlanFeedback", "CardinalityFeedback"]


@dataclass
class PlanFeedback:
    """Aggregated feedback for one cached plan (one canonical query form)."""

    query_name: str
    executions: int = 0
    sum_q_error: float = 0.0
    max_q_error: float = 0.0
    last_q_error: float = 0.0
    # Deadline/row-limit-truncated executions observed for this plan.  Their
    # actuals are artificially low (the run stopped early), so they are
    # counted here for visibility but never folded into the q-error
    # aggregates above.
    partial_executions: int = 0
    # Most recent per-operator rows (estimates vs actuals).
    operators: List[OperatorStats] = field(default_factory=list)

    @property
    def mean_q_error(self) -> float:
        return self.sum_q_error / self.executions if self.executions else 0.0

    def as_dict(self) -> dict:
        return {
            "query": self.query_name,
            "executions": self.executions,
            "partial_executions": self.partial_executions,
            "mean_q_error": self.mean_q_error,
            "max_q_error": self.max_q_error,
            "last_q_error": self.last_q_error,
            "operators": [op.as_dict() for op in self.operators],
        }


class CardinalityFeedback:
    """Thread-safe bounded table of per-plan cardinality feedback."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("feedback capacity must be at least 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._plans: "OrderedDict[Hashable, PlanFeedback]" = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    # ------------------------------------------------------------------ #
    def record(
        self,
        key: Hashable,
        query_name: str,
        operators: List[OperatorStats],
        partial: bool = False,
    ) -> Optional[PlanFeedback]:
        """Fold one execution's operator rows into the per-plan aggregate.

        Executions whose operators carry no estimates (hand-built plans,
        truncated runs that produced no per-operator accounting) are
        skipped — feedback must never blame a plan for a partial run.

        ``partial`` marks an execution that stopped early (deadline expiry or
        a row limit): its actuals undercount the true cardinalities, so the
        q-errors it would produce are fiction.  Partial executions only bump
        ``partial_executions``; the mean/max/last q-error aggregates — and
        therefore :meth:`drifting_plans` — see full executions only.
        """
        if partial:
            with self._lock:
                entry = self._plans.get(key)
                if entry is None:
                    entry = PlanFeedback(query_name=query_name)
                    self._plans[key] = entry
                else:
                    self._plans.move_to_end(key)
                entry.partial_executions += 1
                while len(self._plans) > self.capacity:
                    self._plans.popitem(last=False)
                    self.evictions += 1
                return entry
        errors = [op.q_error for op in operators if op.has_estimate]
        if not errors:
            return None
        worst = max(errors)
        with self._lock:
            entry = self._plans.get(key)
            if entry is None:
                entry = PlanFeedback(query_name=query_name)
                self._plans[key] = entry
            else:
                self._plans.move_to_end(key)
            entry.executions += 1
            entry.sum_q_error += worst
            entry.max_q_error = max(entry.max_q_error, worst)
            entry.last_q_error = worst
            entry.operators = list(operators)
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                self.evictions += 1
            return entry

    # ------------------------------------------------------------------ #
    def get(self, key: Hashable) -> Optional[PlanFeedback]:
        with self._lock:
            return self._plans.get(key)

    def drifting_plans(
        self, threshold: float = 2.0
    ) -> List[Tuple[Hashable, PlanFeedback]]:
        """Plans whose latest worst-operator q-error meets ``threshold`` —
        the re-optimization candidates for the self-tuning loop.

        Plans observed only through partial executions have no trustworthy
        q-error and are never surfaced."""
        with self._lock:
            return [
                (key, entry)
                for key, entry in self._plans.items()
                if entry.executions > 0 and entry.last_q_error >= threshold
            ]

    def discard(self, key: Hashable) -> None:
        """Drop the aggregate for one plan.

        The re-optimizer calls this after acting on a drifting plan so the
        stale signal is consumed; subsequent executions rebuild the aggregate
        against whatever plan is now cached."""
        with self._lock:
            self._plans.pop(key, None)

    def worst(self, n: int = 10) -> List[Tuple[Hashable, PlanFeedback]]:
        with self._lock:
            items = list(self._plans.items())
        return sorted(items, key=lambda kv: kv[1].max_q_error, reverse=True)[:n]

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()

    def stats(self) -> dict:
        """Summary counters (registry-collector friendly: numeric leaves)."""
        with self._lock:
            entries = list(self._plans.values())
            evictions = self.evictions
        executions = sum(e.executions for e in entries)
        partial = sum(e.partial_executions for e in entries)
        max_q = max((e.max_q_error for e in entries), default=0.0)
        mean_last = (
            sum(e.last_q_error for e in entries) / len(entries) if entries else 0.0
        )
        return {
            "plans_tracked": len(entries),
            "executions": executions,
            "partial_executions": partial,
            "evictions": evictions,
            "max_q_error": max_q if math.isfinite(max_q) else 0.0,
            "mean_last_q_error": mean_last,
            "drifting_over_2": sum(
                1 for e in entries if e.executions > 0 and e.last_q_error >= 2.0
            ),
        }

    def rows(self, n: int = 20) -> List[dict]:
        """Per-plan rows for table rendering (worst q-error first)."""
        return [entry.as_dict() for _, entry in self.worst(n)]
