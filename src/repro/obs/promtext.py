"""A strict parser for the Prometheus text exposition format (0.0.4).

The metrics registry *produces* the text format; this module *consumes* it,
enforcing the spec rather than tolerating deviations:

* metric and label names must match the spec's character classes;
* label values must use only the three defined escapes (``\\\\``, ``\\"``,
  ``\\n``) — an unknown escape or a raw newline is an error;
* sample values must parse as floats (including ``+Inf`` / ``-Inf`` /
  ``NaN``);
* at most one ``# TYPE`` per family, before any of its samples;
* no duplicate samples (same name + label set);
* histogram families must expose cumulative, monotonically non-decreasing
  ``_bucket`` series ending in ``le="+Inf"``, with the ``+Inf`` bucket equal
  to ``_count``, plus ``_sum`` and ``_count`` series per label set.

Three callers share it: the exposition-hardening tests round-trip
``MetricsRegistry.expose_prometheus()`` through :func:`parse_exposition`,
the CI ops-plane smoke pipes a live ``curl /metrics`` body through the CLI
entry point (``python -m repro.obs.promtext <file>``), and anything
building a scrape client gets the sample model for free.  Strictness is the
point — a lenient parser here would let an invalid exposition reach a real
Prometheus server before anything noticed.
"""

from __future__ import annotations

import math
import re
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["ExpositionError", "MetricFamily", "Sample", "parse_exposition"]

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


class ExpositionError(ValueError):
    """A violation of the 0.0.4 text format, with the offending line."""

    def __init__(self, message: str, lineno: int, line: str = "") -> None:
        super().__init__(f"line {lineno}: {message}" + (f" | {line!r}" if line else ""))
        self.lineno = lineno
        self.line = line


@dataclass
class Sample:
    """One sample line: name, label dict, float value."""

    name: str
    labels: Dict[str, str]
    value: float

    def key(self) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
        return self.name, tuple(sorted(self.labels.items()))


@dataclass
class MetricFamily:
    """Samples grouped under one base family name.

    For histograms the ``_bucket`` / ``_sum`` / ``_count`` series are folded
    under the base name, mirroring how Prometheus itself groups them.
    """

    name: str
    type: str = "untyped"
    help: str = ""
    samples: List[Sample] = field(default_factory=list)

    def sample_values(self) -> Dict[Tuple[Tuple[str, str], ...], float]:
        return {tuple(sorted(s.labels.items())): s.value for s in self.samples}


def _parse_value(text: str, lineno: int, line: str) -> float:
    stripped = text.strip()
    if stripped == "+Inf":
        return math.inf
    if stripped == "-Inf":
        return -math.inf
    if stripped == "NaN":
        return math.nan
    try:
        return float(stripped)
    except ValueError:
        raise ExpositionError(f"unparseable sample value {stripped!r}", lineno, line)


def _parse_labels(text: str, lineno: int, line: str) -> Dict[str, str]:
    """Parse the ``name="value",...`` body between the braces, honouring
    exactly the spec's three escapes."""
    labels: Dict[str, str] = {}
    i = 0
    n = len(text)
    while i < n:
        match = re.match(r"\s*([a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*\"", text[i:])
        if match is None:
            raise ExpositionError(f"malformed label at offset {i}", lineno, line)
        name = match.group(1)
        if name in labels:
            raise ExpositionError(f"duplicate label name {name!r}", lineno, line)
        i += match.end()
        value_chars: List[str] = []
        while True:
            if i >= n:
                raise ExpositionError("unterminated label value", lineno, line)
            ch = text[i]
            if ch == "\\":
                if i + 1 >= n:
                    raise ExpositionError("dangling escape in label value", lineno, line)
                esc = text[i + 1]
                if esc == "\\":
                    value_chars.append("\\")
                elif esc == '"':
                    value_chars.append('"')
                elif esc == "n":
                    value_chars.append("\n")
                else:
                    raise ExpositionError(
                        f"unknown escape \\{esc} in label value", lineno, line
                    )
                i += 2
            elif ch == '"':
                i += 1
                break
            else:
                value_chars.append(ch)
                i += 1
        labels[name] = "".join(value_chars)
        rest = text[i:].lstrip()
        if not rest:
            break
        if not rest.startswith(","):
            raise ExpositionError("expected ',' between labels", lineno, line)
        i = n - len(rest) + 1
    return labels


def _base_name(sample_name: str, typed_histograms: Dict[str, str]) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if typed_histograms.get(base) == "histogram":
                return base
    return sample_name


def _check_histogram(family: MetricFamily) -> None:
    """Per label set: buckets sorted and cumulative, +Inf present and equal
    to _count, _sum present."""
    buckets: Dict[Tuple[Tuple[str, str], ...], List[Tuple[float, float]]] = {}
    sums: Dict[Tuple[Tuple[str, str], ...], float] = {}
    counts: Dict[Tuple[Tuple[str, str], ...], float] = {}
    for sample in family.samples:
        if sample.name == f"{family.name}_bucket":
            labels = dict(sample.labels)
            if "le" not in labels:
                raise ExpositionError(
                    f"{sample.name} sample without an le label", 0
                )
            le_text = labels.pop("le")
            bound = math.inf if le_text == "+Inf" else float(le_text)
            buckets.setdefault(tuple(sorted(labels.items())), []).append(
                (bound, sample.value)
            )
        elif sample.name == f"{family.name}_sum":
            sums[sample.key()[1]] = sample.value
        elif sample.name == f"{family.name}_count":
            counts[sample.key()[1]] = sample.value
    for key, series in buckets.items():
        ordered = sorted(series, key=lambda pair: pair[0])
        if ordered != series:
            raise ExpositionError(
                f"histogram {family.name}{dict(key)} buckets not in ascending le order", 0
            )
        running = -math.inf
        for bound, cumulative in ordered:
            if cumulative < running:
                raise ExpositionError(
                    f"histogram {family.name}{dict(key)} bucket counts decrease at le={bound}", 0
                )
            running = cumulative
        if not ordered or ordered[-1][0] != math.inf:
            raise ExpositionError(
                f"histogram {family.name}{dict(key)} is missing the +Inf bucket", 0
            )
        if key not in counts:
            raise ExpositionError(
                f"histogram {family.name}{dict(key)} has buckets but no _count", 0
            )
        if key not in sums:
            raise ExpositionError(
                f"histogram {family.name}{dict(key)} has buckets but no _sum", 0
            )
        if ordered[-1][1] != counts[key]:
            raise ExpositionError(
                f"histogram {family.name}{dict(key)}: +Inf bucket "
                f"{ordered[-1][1]} != _count {counts[key]}", 0
            )


def parse_exposition(text: str) -> Dict[str, MetricFamily]:
    """Parse a full exposition body; raises :class:`ExpositionError` on the
    first violation.  Returns families keyed by base name."""
    families: Dict[str, MetricFamily] = {}
    typed: Dict[str, str] = {}  # family name -> declared type
    seen_samples: set = set()
    samples_seen_for: set = set()
    for lineno, raw in enumerate(text.split("\n"), start=1):
        line = raw.rstrip("\r")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3:
                    raise ExpositionError(f"malformed # {parts[1]} line", lineno, line)
                name = parts[2]
                if not _METRIC_NAME_RE.match(name):
                    raise ExpositionError(f"invalid metric name {name!r}", lineno, line)
                family = families.setdefault(name, MetricFamily(name=name))
                if parts[1] == "HELP":
                    family.help = parts[3] if len(parts) > 3 else ""
                else:
                    declared = parts[3].strip() if len(parts) > 3 else ""
                    if declared not in _TYPES:
                        raise ExpositionError(
                            f"unknown metric type {declared!r}", lineno, line
                        )
                    if name in typed and typed[name] != declared:
                        raise ExpositionError(
                            f"conflicting # TYPE for {name}", lineno, line
                        )
                    if name in typed:
                        raise ExpositionError(
                            f"duplicate # TYPE for {name}", lineno, line
                        )
                    if name in samples_seen_for:
                        raise ExpositionError(
                            f"# TYPE for {name} after its samples", lineno, line
                        )
                    typed[name] = declared
                    family.type = declared
            # Other comments are legal and ignored.
            continue
        # Sample line: name[{labels}] value [timestamp]
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)(\s+(-?\d+))?\s*$", line)
        if match is None:
            raise ExpositionError("unparseable sample line", lineno, line)
        sample_name = match.group(1)
        labels = _parse_labels(match.group(3), lineno, line) if match.group(2) else {}
        value = _parse_value(match.group(4), lineno, line)
        sample = Sample(name=sample_name, labels=labels, value=value)
        if sample.key() in seen_samples:
            raise ExpositionError(
                f"duplicate sample {sample_name}{labels}", lineno, line
            )
        seen_samples.add(sample.key())
        base = _base_name(sample_name, typed)
        family = families.setdefault(base, MetricFamily(name=base))
        if base in typed:
            family.type = typed[base]
        family.samples.append(sample)
        samples_seen_for.add(base)
        samples_seen_for.add(sample_name)
    for family in families.values():
        if family.type == "histogram":
            _check_histogram(family)
    return families


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.obs.promtext [file]`` — parse an exposition body
    (stdin when no file) and print a family/sample summary; exit 1 on the
    first spec violation (the CI smoke's strict gate)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv:
        with open(argv[0], "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = sys.stdin.read()
    try:
        families = parse_exposition(text)
    except ExpositionError as exc:
        print(f"invalid exposition: {exc}", file=sys.stderr)
        return 1
    num_samples = sum(len(f.samples) for f in families.values())
    histograms = sum(1 for f in families.values() if f.type == "histogram")
    print(
        f"valid Prometheus 0.0.4 exposition: {len(families)} families, "
        f"{num_samples} samples, {histograms} histograms"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    sys.exit(main())
