"""A thread-safe labeled metrics registry.

The repo grew five disconnected stats surfaces (rolling service metrics,
execution profiles, plan-cache / compaction / persistence stats dicts); this
module gives them one export path.  Three metric kinds are supported, closely
following the Prometheus data model:

* :class:`Counter` — a monotonically increasing value (``inc``);
* :class:`Gauge` — a value that can go up and down (``set`` / ``inc``), or a
  *callback* gauge read lazily at scrape time;
* :class:`Histogram` — observations bucketed into **fixed log-scale buckets**
  (cumulative bucket counts, sum, and count — the paper's runtime tables
  span five orders of magnitude, so linear buckets would be useless).

Families are created through :class:`MetricsRegistry` (``counter`` /
``gauge`` / ``histogram``) and carry an optional tuple of label names; the
``labels(...)`` method resolves one child per label-value combination.
Existing ad-hoc stats dicts are absorbed without rewriting their increment
sites: :meth:`MetricsRegistry.register_collector` takes a callable returning
a flat-or-nested dict and exposes every numeric leaf as a gauge at scrape
time (the Prometheus "custom collector" pattern).

Exports: :meth:`MetricsRegistry.expose_prometheus` renders the text
exposition format (``# HELP`` / ``# TYPE`` / samples), and
:meth:`MetricsRegistry.as_dict` produces a JSON-serialisable dump of the
same data.

Everything is guarded by one registry lock; increments on already-resolved
children take only that child's family lock, so the hot path never contends
with scrapes resolving collectors.
"""

from __future__ import annotations

import bisect
import math
import re
import threading
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "log_buckets",
    "LATENCY_BUCKETS",
    "QERROR_BUCKETS",
]

_VALID_KINDS = ("counter", "gauge", "histogram")


def log_buckets(start: float = 1e-6, factor: float = 4.0, count: int = 14) -> Tuple[float, ...]:
    """``count`` fixed log-scale bucket upper bounds: ``start * factor**i``.

    The defaults cover one microsecond to roughly 67 seconds in x4 steps,
    which spans everything from a single intersection to a full-table
    experiment run without per-query bucket tuning.
    """
    if start <= 0 or factor <= 1.0 or count < 1:
        raise ValueError("log_buckets requires start > 0, factor > 1, count >= 1")
    return tuple(start * factor ** i for i in range(count))


#: Default latency buckets (seconds): 1µs .. ~67s in x4 steps.
LATENCY_BUCKETS = log_buckets(1e-6, 4.0, 14)

#: Default q-error buckets: 1 .. 2048 in x2 steps (q-error is always >= 1).
QERROR_BUCKETS = log_buckets(1.0, 2.0, 12)


#: Characters legal in a metric name past the first (0.0.4 spec); anything
#: else in a collector-derived key is folded to ``_``.
_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_VALID_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _sanitize_name(name: str) -> str:
    """Force an arbitrary string into the exposition format's metric-name
    charset (``[a-zA-Z_:][a-zA-Z0-9_:]*``).  Collector keys come from stats
    dicts whose keys can hold dots, dashes, spaces, slashes, or leading
    digits — none of which a strict scraper will accept."""
    out = _INVALID_NAME_CHARS.sub("_", str(name))
    if not out or not _VALID_NAME.match(out):
        out = "_" + out
    return out


def _escape_help(text: str) -> str:
    """HELP text escaping per the 0.0.4 spec: backslash and newline only
    (double quotes are legal in HELP, unlike in label values)."""
    return str(text).replace("\\", r"\\").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    parts = []
    for name, value in zip(labelnames, labelvalues):
        escaped = str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
        parts.append(f'{name}="{escaped}"')
    return "{" + ",".join(parts) + "}"


class Counter:
    """One child of a counter family: a monotonically increasing float."""

    __slots__ = ("_family", "_key", "value")

    def __init__(self, family: "_Family", key: Tuple[str, ...]) -> None:
        self._family = family
        self._key = key
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase; use a gauge")
        with self._family._lock:
            self.value += amount


class Gauge:
    """One child of a gauge family: a settable value."""

    __slots__ = ("_family", "_key", "value")

    def __init__(self, family: "_Family", key: Tuple[str, ...]) -> None:
        self._family = family
        self._key = key
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._family._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._family._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """One child of a histogram family: fixed-bucket observation counts.

    ``buckets`` are upper bounds (an implicit ``+Inf`` bucket is always
    appended); counts are *per-bucket* internally and exposed cumulatively,
    matching Prometheus semantics.  Standalone use (outside a registry) is
    supported — the WAL and compaction manager keep private histograms that
    a database's registry later surfaces through a collector.
    """

    __slots__ = ("_lock", "buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = LATENCY_BUCKETS, _family=None, _key=()) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._lock = threading.Lock()
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """Cumulative bucket counts plus sum/count, as a plain dict."""
        with self._lock:
            counts = list(self.counts)
            total, n = self.sum, self.count
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for bound, c in zip(self.buckets + (math.inf,), counts):
            running += c
            cumulative.append((bound, running))
        return {"buckets": cumulative, "sum": total, "count": n}

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket counts (upper-bound biased);
        0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        snap = self.snapshot()
        total = snap["count"]
        if not total:
            return 0.0
        rank = max(1, math.ceil(q * total))
        for bound, cumulative in snap["buckets"]:
            if cumulative >= rank:
                return bound if bound != math.inf else self.buckets[-1]
        return self.buckets[-1]  # pragma: no cover - defensive


class _Family:
    """A named metric with a fixed kind and label names, holding children."""

    _child_types = {"counter": Counter, "gauge": Gauge}

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Tuple[str, ...],
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = labelnames
        self.bucket_bounds = tuple(buckets) if buckets is not None else LATENCY_BUCKETS
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, *labelvalues: object) -> object:
        """Resolve the child for one label-value combination (created on
        first use).  Families without labels resolve their single child."""
        key = tuple(str(v) for v in labelvalues)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects {len(self.labelnames)} label value(s) "
                f"{self.labelnames}, got {len(key)}"
            )
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "histogram":
                    child = Histogram(self.bucket_bounds)
                else:
                    child = self._child_types[self.kind](self, key)
                self._children[key] = child
            return child

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """The unified registry: metric families plus lazy collectors."""

    def __init__(self, namespace: str = "graphflow") -> None:
        self.namespace = namespace
        self._lock = threading.Lock()
        self._families: "Dict[str, _Family]" = {}
        # name prefix -> callable returning a (possibly nested) stats dict.
        self._collectors: List[Tuple[str, Callable[[], Mapping]]] = []

    # ------------------------------------------------------------------ #
    # family creation (idempotent per name)
    # ------------------------------------------------------------------ #
    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> _Family:
        if kind not in _VALID_KINDS:  # pragma: no cover - internal misuse
            raise ValueError(f"unknown metric kind {kind!r}")
        if not _VALID_NAME.match(name):
            raise ValueError(
                f"invalid metric name {name!r}: must match [a-zA-Z_:][a-zA-Z0-9_:]*"
            )
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help, tuple(labelnames), buckets)
                self._families[name] = family
            elif family.kind != kind or family.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind} "
                    f"with labels {family.labelnames}"
                )
            return family

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        """A counter family; call ``.labels(...)`` (or with no labels, the
        family's single child is resolved via ``.labels()``)."""
        return self._family(name, "counter", help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        return self._family(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ):
        return self._family(name, "histogram", help, labelnames, buckets=buckets)

    # ------------------------------------------------------------------ #
    # collectors: absorb existing ad-hoc stats dicts at scrape time
    # ------------------------------------------------------------------ #
    def register_collector(self, prefix: str, fn: Callable[[], Mapping]) -> None:
        """Expose every numeric leaf of ``fn()``'s dict as a gauge named
        ``<namespace>_<prefix>_<flattened_key>``.

        Booleans become 0/1; strings and Nones are skipped.  The callable
        runs at scrape time only, so registering a collector adds nothing to
        any hot path.  Registering the same prefix again replaces the old
        collector (services re-attach on restart).
        """
        with self._lock:
            self._collectors = [(p, f) for p, f in self._collectors if p != prefix]
            self._collectors.append((prefix, fn))

    def unregister_collector(self, prefix: str) -> None:
        with self._lock:
            self._collectors = [(p, f) for p, f in self._collectors if p != prefix]

    @staticmethod
    def _flatten(prefix: str, mapping: Mapping, out: Dict[str, float]) -> None:
        for key, value in mapping.items():
            name = f"{prefix}_{key}" if prefix else str(key)
            name = _sanitize_name(name)
            if isinstance(value, Mapping):
                MetricsRegistry._flatten(name, value, out)
            elif isinstance(value, bool):
                out[name] = 1.0 if value else 0.0
            elif isinstance(value, (int, float)) and math.isfinite(value):
                out[name] = float(value)
            # strings / None / non-finite: not representable as a gauge

    def _collected(self) -> Dict[str, float]:
        with self._lock:
            collectors = list(self._collectors)
        out: Dict[str, float] = {}
        for prefix, fn in collectors:
            try:
                stats = fn()
            except Exception:
                # A failing stats source (e.g. a closed store) must never
                # break the scrape of every other metric.
                continue
            if isinstance(stats, Mapping):
                self._flatten(prefix, stats, out)
        return out

    # ------------------------------------------------------------------ #
    # exposition
    # ------------------------------------------------------------------ #
    def _qualified(self, name: str) -> str:
        return f"{self.namespace}_{name}" if self.namespace else name

    def expose_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        with self._lock:
            families = sorted(self._families.items())
        for name, family in families:
            qualified = self._qualified(name)
            if family.help:
                lines.append(f"# HELP {qualified} {_escape_help(family.help)}")
            lines.append(f"# TYPE {qualified} {family.kind}")
            for key, child in family.children():
                labels = _format_labels(family.labelnames, key)
                if isinstance(child, Histogram):
                    snap = child.snapshot()
                    for bound, cumulative in snap["buckets"]:
                        le = _format_labels(
                            tuple(family.labelnames) + ("le",),
                            tuple(key) + (_format_value(bound),),
                        )
                        lines.append(f"{qualified}_bucket{le} {cumulative}")
                    lines.append(f"{qualified}_sum{labels} {_format_value(snap['sum'])}")
                    lines.append(f"{qualified}_count{labels} {snap['count']}")
                else:
                    lines.append(f"{qualified}{labels} {_format_value(child.value)}")
        for name, value in sorted(self._collected().items()):
            qualified = self._qualified(name)
            lines.append(f"# TYPE {qualified} gauge")
            lines.append(f"{qualified} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable dump: every family's children plus collected
        gauges, under the same qualified names as the exposition output."""
        out: Dict[str, object] = {}
        with self._lock:
            families = sorted(self._families.items())
        for name, family in families:
            entry: Dict[str, object] = {"kind": family.kind, "help": family.help}
            samples = []
            for key, child in family.children():
                labels = dict(zip(family.labelnames, key))
                if isinstance(child, Histogram):
                    snap = child.snapshot()
                    samples.append(
                        {
                            "labels": labels,
                            "buckets": [
                                [_format_value(b), c] for b, c in snap["buckets"]
                            ],
                            "sum": snap["sum"],
                            "count": snap["count"],
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            entry["samples"] = samples
            out[self._qualified(name)] = entry
        for name, value in sorted(self._collected().items()):
            out[self._qualified(name)] = {"kind": "gauge", "value": value}
        return out
