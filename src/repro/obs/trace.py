"""Per-query traces: spans, operator cardinality feedback, and a ring buffer.

Every executed query (and every applied update batch) produces a
:class:`QueryTrace`: an ordered list of :class:`Span`s — admission wait,
plan/cache lookup, execution, WAL append — plus one :class:`OperatorStats`
row per plan operator carrying the operator's *actual* output cardinality
next to the planner's *estimate* and the resulting q-error.  This is exactly
the per-plan feedback signal the self-tuning optimizer loop needs (ROADMAP),
and the per-operator counters mirror what the paper reports alongside
runtimes in Tables 4-6 (i-cost, intermediate sizes, cache hits).

Traces are kept in a bounded ring buffer (:class:`TraceRecorder`) so a
long-running service holds a fixed amount of trace memory; traces slower
than a configurable threshold are additionally retained in a separate
slow-query ring and emitted through the ``repro.obs.slowlog`` logger.

Timing semantics: span durations are **busy seconds** of that stage.  In
vectorized mode the per-operator seconds come from
:attr:`repro.executor.profile.ExecutionProfile.operator_seconds` (each
operator's own frame processing); the iterator pipeline interleaves
operators in one generator chain, so per-operator durations are not
separable there and operator rows carry cardinalities only.
"""

from __future__ import annotations

import itertools
import logging
import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.catalogue.qerror import q_error

__all__ = ["Span", "OperatorStats", "QueryTrace", "TraceRecorder"]

logger = logging.getLogger("repro.obs.slowlog")

_trace_ids = itertools.count(1)


@dataclass
class Span:
    """One timed stage of a served request."""

    name: str
    seconds: float
    attributes: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"name": self.name, "seconds": self.seconds, "attributes": dict(self.attributes)}


@dataclass
class OperatorStats:
    """Actual-vs-estimated cardinality for one plan operator.

    ``estimated`` is the catalogue's cardinality estimate for the operator's
    sub-query, annotated onto the plan at optimization time; ``actual`` is
    the output count the executor measured.  ``q_error`` is
    ``max(est/act, act/est)`` with both clamped to >= 1 (the convention of
    the paper's Appendix B accuracy experiments); ``NaN`` when no estimate
    exists (plans built outside the optimizer).
    """

    name: str
    actual: int
    estimated: float = float("nan")
    q_error: float = float("nan")
    seconds: float = 0.0
    batches: int = 0

    @property
    def has_estimate(self) -> bool:
        return self.estimated == self.estimated  # not NaN

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "actual": self.actual,
            "estimated": self.estimated,
            "q_error": self.q_error,
            "seconds": self.seconds,
            "batches": self.batches,
        }


@dataclass
class QueryTrace:
    """The full observability record of one served request."""

    query_name: str
    kind: str = "query"  # "query" | "update"
    trace_id: int = 0
    status: str = "ok"
    mode: str = "iterator"
    started_at: float = 0.0  # wall clock (time.time())
    total_seconds: float = 0.0
    num_matches: int = 0
    plan_type: str = ""
    plan_cached: Optional[bool] = None
    # The query's canonical (isomorphism-invariant) key, stringified — the
    # join handle back to the plan cache and cardinality-feedback table.
    # Empty when unknown (e.g. a pre-built Plan executed directly).
    canonical_key: str = ""
    spans: List[Span] = field(default_factory=list)
    operators: List[OperatorStats] = field(default_factory=list)
    profile: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.trace_id:
            self.trace_id = next(_trace_ids)
        if not self.started_at:
            self.started_at = time.time()

    # ------------------------------------------------------------------ #
    def add_span(self, name: str, seconds: float, **attributes: object) -> Span:
        span = Span(name=name, seconds=float(seconds), attributes=attributes)
        self.spans.append(span)
        return span

    def prepend_span(self, name: str, seconds: float, **attributes: object) -> Span:
        """Insert a span at the front (the service adds its admission-wait
        span around a trace the database already built)."""
        span = Span(name=name, seconds=float(seconds), attributes=attributes)
        self.spans.insert(0, span)
        return span

    def span(self, name: str) -> Optional[Span]:
        for span in self.spans:
            if span.name == name:
                return span
        return None

    @property
    def max_q_error(self) -> float:
        """Worst per-operator q-error of the trace (NaN when no operator has
        an estimate)."""
        errors = [op.q_error for op in self.operators if op.has_estimate]
        return max(errors) if errors else float("nan")

    def worker_summary(self) -> Optional[dict]:
        """Aggregate the per-morsel ``morsel`` child spans (process-mode
        executions) into per-worker totals plus the query's skew and
        critical path; ``None`` when the trace has no worker spans."""
        morsels = [s for s in self.spans if s.name == "morsel"]
        if not morsels:
            return None
        workers: Dict[str, dict] = {}
        for span in morsels:
            attrs = span.attributes
            key = f"w{attrs.get('worker_id', '?')}"
            entry = workers.setdefault(
                key, {"morsels": 0, "busy_seconds": 0.0, "queue_wait_seconds": 0.0, "rows": 0}
            )
            entry["morsels"] += 1
            entry["busy_seconds"] += span.seconds
            entry["queue_wait_seconds"] += float(attrs.get("queue_wait", 0.0))
            entry["rows"] += int(attrs.get("rows", 0))
        execute = self.span("execute")
        summary = {"morsels": len(morsels), "workers": workers}
        if execute is not None:
            for key in ("skew", "critical_path_seconds"):
                if key in execute.attributes:
                    summary[key] = execute.attributes[key]
        return summary

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "kind": self.kind,
            "query": self.query_name,
            "canonical_key": self.canonical_key,
            "status": self.status,
            "mode": self.mode,
            "started_at": self.started_at,
            "total_seconds": self.total_seconds,
            "num_matches": self.num_matches,
            "plan_type": self.plan_type,
            "plan_cached": self.plan_cached,
            "max_q_error": None if math.isnan(self.max_q_error) else self.max_q_error,
            "spans": [s.as_dict() for s in self.spans],
            "operators": [o.as_dict() for o in self.operators],
            "profile": dict(self.profile),
        }

    def format(self) -> str:
        """A compact human-readable rendering (used by the CLI).

        Process-mode traces additionally get a per-worker summary block
        (busy/queue-wait totals, skew, critical path) aggregated from the
        ``morsel`` child spans.
        """
        lines = [
            f"trace #{self.trace_id} [{self.kind}] {self.query_name}: "
            f"status={self.status} mode={self.mode} matches={self.num_matches} "
            f"total={self.total_seconds * 1e3:.2f}ms"
        ]
        if self.canonical_key:
            lines.append(f"  canonical key: {self.canonical_key}")
        for span in self.spans:
            attrs = " ".join(
                f"{k}={v:.6f}" if isinstance(v, float) else f"{k}={v}"
                for k, v in span.attributes.items()
            )
            lines.append(f"  span {span.name:<12} {span.seconds * 1e3:>9.3f}ms  {attrs}".rstrip())
        summary = self.worker_summary()
        if summary is not None:
            skew = summary.get("skew")
            critical = summary.get("critical_path_seconds")
            header = f"  workers ({summary['morsels']} morsels"
            if skew is not None:
                header += f", skew={skew:.2f}"
            if critical is not None:
                header += f", critical path={critical * 1e3:.2f}ms"
            lines.append(header + "):")
            for name in sorted(summary["workers"]):
                entry = summary["workers"][name]
                lines.append(
                    f"    {name}: {entry['morsels']} morsel(s)  "
                    f"busy={entry['busy_seconds'] * 1e3:.2f}ms  "
                    f"queue-wait={entry['queue_wait_seconds'] * 1e3:.2f}ms  "
                    f"rows={entry['rows']}"
                )
        if self.operators:
            lines.append("  operators (actual vs estimated cardinality):")
            for op in self.operators:
                est = f"{op.estimated:.1f}" if op.has_estimate else "-"
                qe = f"{op.q_error:.2f}" if op.has_estimate else "-"
                timing = f" {op.seconds * 1e3:.2f}ms" if op.seconds else ""
                lines.append(
                    f"    {op.name:<28} actual={op.actual:<10} est={est:<10} q-error={qe}{timing}"
                )
        return "\n".join(lines)

    def describe(self) -> str:
        """Backwards-compatible alias for :meth:`format`."""
        return self.format()


def operator_stats_from_profile(
    per_operator: Dict[str, Dict[str, int]],
    operator_seconds: Dict[str, float],
    estimates: Optional[Dict[str, float]],
) -> List[OperatorStats]:
    """Join the executor's per-operator counters with the plan's annotated
    cardinality estimates into :class:`OperatorStats` rows."""
    rows: List[OperatorStats] = []
    estimates = estimates or {}
    for name, counters in per_operator.items():
        actual = int(counters.get("out", 0))
        estimated = estimates.get(name, float("nan"))
        error = q_error(estimated, actual) if estimated == estimated else float("nan")
        rows.append(
            OperatorStats(
                name=name,
                actual=actual,
                estimated=float(estimated),
                q_error=error,
                seconds=float(operator_seconds.get(name, 0.0)),
                batches=int(counters.get("batches", 0)),
            )
        )
    return rows


class TraceRecorder:
    """Thread-safe bounded ring buffer of traces plus a slow-query ring.

    Parameters
    ----------
    capacity:
        Traces retained in the main ring (oldest evicted first).
    slow_seconds:
        Threshold for the slow-query log: traces at least this slow are
        copied into a second ring of ``slow_capacity`` entries and logged at
        WARNING level through the ``repro.obs.slowlog`` logger.  ``None``
        disables the slow log.
    """

    def __init__(
        self,
        capacity: int = 256,
        slow_seconds: Optional[float] = None,
        slow_capacity: int = 64,
    ) -> None:
        if capacity < 1:
            raise ValueError("trace ring capacity must be at least 1")
        self.capacity = capacity
        self.slow_seconds = slow_seconds
        self._lock = threading.Lock()
        self._ring: Deque[QueryTrace] = deque(maxlen=capacity)
        self._slow: Deque[QueryTrace] = deque(maxlen=max(1, slow_capacity))
        self.recorded = 0
        self.slow_queries = 0

    # ------------------------------------------------------------------ #
    def record(self, trace: QueryTrace) -> QueryTrace:
        slow = self.slow_seconds is not None and trace.total_seconds >= self.slow_seconds
        with self._lock:
            self._ring.append(trace)
            self.recorded += 1
            if slow:
                self._slow.append(trace)
                self.slow_queries += 1
        if slow:
            # The trace id joins the line back to `trace(id)` / `repro trace`,
            # the canonical key back to the plan cache and feedback table.
            logger.warning(
                "slow query %s (trace #%d, key=%s): %.3fs (threshold %.3fs) "
                "status=%s mode=%s matches=%d",
                trace.query_name,
                trace.trace_id,
                trace.canonical_key or "-",
                trace.total_seconds,
                self.slow_seconds,
                trace.status,
                trace.mode,
                trace.num_matches,
            )
        return trace

    def recent(self, n: Optional[int] = None, kind: Optional[str] = None) -> List[QueryTrace]:
        """The most recent traces, newest last."""
        with self._lock:
            traces = list(self._ring)
        if kind is not None:
            traces = [t for t in traces if t.kind == kind]
        return traces if n is None else traces[-n:]

    def last(self, kind: Optional[str] = None) -> Optional[QueryTrace]:
        traces = self.recent(1, kind=kind)
        return traces[-1] if traces else None

    def slow(self, n: Optional[int] = None) -> List[QueryTrace]:
        with self._lock:
            traces = list(self._slow)
        return traces if n is None else traces[-n:]

    def get(self, trace_id: int) -> Optional[QueryTrace]:
        with self._lock:
            for trace in self._ring:
                if trace.trace_id == trace_id:
                    return trace
        return None

    def set_capacity(self, capacity: int) -> None:
        """Resize the main ring, keeping the newest traces (a service
        configures the ring on an :class:`Observability` it did not create)."""
        if capacity < 1:
            raise ValueError("trace ring capacity must be at least 1")
        with self._lock:
            self.capacity = capacity
            self._ring = deque(self._ring, maxlen=capacity)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._slow.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "retained": len(self._ring),
                "recorded": self.recorded,
                "slow_queries": self.slow_queries,
                "slow_threshold_seconds": self.slow_seconds or 0.0,
            }
