"""Pluggable health checks backing the ops plane's ``/readyz`` endpoint.

Liveness ("the process responds") and readiness ("this node should receive
traffic") are different questions: a server mid-recovery, a worker pool
whose processes died, or a WAL directory about to run out of disk are all
*alive* but must be rotated out of a load balancer before they take
queries.  :class:`HealthRegistry` holds named check callables, runs them
with per-check latency accounting, and folds the results into one
:class:`HealthReport`; the registry also exports every check as a pair of
``health_<name>_healthy`` / ``health_<name>_latency_seconds`` gauges
through the metrics registry's collector mechanism, so Prometheus alerting
and ``/readyz`` read the exact same signals.

A check callable takes no arguments and returns one of:

* ``True`` / ``None`` — healthy (no detail);
* ``False`` — unhealthy (no detail);
* ``(healthy, detail)`` — explicit verdict with a human-readable detail.

A check that raises is reported unhealthy with the exception as its
detail — a broken probe must read as a failing probe, never as a passing
one.  Checks are registered with replace semantics (re-attaching a
subsystem re-registers its check) and ``critical=False`` marks advisory
checks that are reported but do not flip overall readiness.

Drain mode (:meth:`HealthRegistry.set_draining`) forces ``/readyz`` to
report not-ready regardless of check outcomes: the standard pattern for
taking a node out of rotation before shutdown, wired to
:meth:`repro.server.service.QueryService.close` and the ops server's
``POST /drain`` endpoint.

The module also ships the concrete check factories the database wires in
(`recovery_check`, `free_space_check`, `checkpoint_lag_check`,
`process_pool_check`, `thread_alive_check`) — each closes over the live
subsystem object so a respawned pool or re-opened store is probed through
its current state, not a snapshot.
"""

from __future__ import annotations

import shutil
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = [
    "CheckResult",
    "HealthReport",
    "HealthRegistry",
    "recovery_check",
    "free_space_check",
    "checkpoint_lag_check",
    "process_pool_check",
    "thread_alive_check",
    "DEFAULT_MIN_FREE_BYTES",
    "DEFAULT_MAX_CHECKPOINT_LAG_RECORDS",
]

#: Default free-space floor for the WAL directory check (64 MiB — enough for
#: the WAL to absorb a burst while an operator reacts to the alert).
DEFAULT_MIN_FREE_BYTES = 64 * 1024 * 1024

#: Default checkpoint-lag ceiling: un-checkpointed WAL records beyond this
#: mean recovery time (and data at risk to a torn tail) is growing unbounded.
DEFAULT_MAX_CHECKPOINT_LAG_RECORDS = 100_000


@dataclass
class CheckResult:
    """Outcome of one health check run."""

    name: str
    healthy: bool
    detail: str = ""
    latency_seconds: float = 0.0
    critical: bool = True

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "healthy": self.healthy,
            "detail": self.detail,
            "latency_seconds": self.latency_seconds,
            "critical": self.critical,
        }


@dataclass
class HealthReport:
    """The folded outcome of one :meth:`HealthRegistry.run` pass."""

    healthy: bool
    draining: bool = False
    drain_reason: str = ""
    checks: List[CheckResult] = field(default_factory=list)

    @property
    def status(self) -> str:
        return "ready" if self.healthy else "unready"

    def failing(self) -> List[CheckResult]:
        return [c for c in self.checks if not c.healthy]

    def as_dict(self) -> dict:
        return {
            "status": self.status,
            "healthy": self.healthy,
            "draining": self.draining,
            "drain_reason": self.drain_reason,
            "checks": {c.name: c.as_dict() for c in self.checks},
        }


class HealthRegistry:
    """Named health checks with replace semantics and drain mode.

    Thread-safe: checks are registered/unregistered from subsystem attach
    points while scrapes and ``/readyz`` probes run them concurrently.  The
    lock only guards the name table — check callables run outside it, so a
    slow probe (disk stat on a busy volume) never blocks registration.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._checks: Dict[str, tuple] = {}  # name -> (fn, critical)
        self._draining = False
        self._drain_reason = ""

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(
        self, name: str, fn: Callable[[], object], critical: bool = True
    ) -> None:
        """Register (or replace) the check called ``name``."""
        if not callable(fn):
            raise TypeError(f"health check {name!r} must be callable")
        with self._lock:
            self._checks[str(name)] = (fn, bool(critical))

    def unregister(self, name: str) -> None:
        """Remove a check; a no-op when it was never registered."""
        with self._lock:
            self._checks.pop(str(name), None)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._checks)

    # ------------------------------------------------------------------ #
    # drain mode
    # ------------------------------------------------------------------ #
    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def set_draining(self, draining: bool, reason: str = "") -> None:
        """Force ``/readyz`` unready (``True``) or restore check-driven
        readiness (``False``); the reason string is surfaced in reports."""
        with self._lock:
            self._draining = bool(draining)
            self._drain_reason = str(reason) if draining else ""

    # ------------------------------------------------------------------ #
    # running
    # ------------------------------------------------------------------ #
    @staticmethod
    def _interpret(outcome: object) -> tuple:
        if outcome is None or outcome is True:
            return True, ""
        if outcome is False:
            return False, ""
        if isinstance(outcome, tuple) and len(outcome) == 2:
            healthy, detail = outcome
            return bool(healthy), str(detail)
        # Anything truthy-but-unrecognised counts as healthy with the value
        # stringified — a probe returning a status string stays visible.
        return bool(outcome), str(outcome)

    def run(self) -> HealthReport:
        """Run every check once and fold the results.

        Overall readiness = not draining AND every *critical* check healthy.
        Advisory (``critical=False``) failures are reported but do not flip
        readiness.
        """
        with self._lock:
            checks = sorted(self._checks.items())
            draining = self._draining
            drain_reason = self._drain_reason
        results: List[CheckResult] = []
        healthy = not draining
        for name, (fn, critical) in checks:
            start = time.perf_counter()
            try:
                ok, detail = self._interpret(fn())
            except Exception as exc:
                ok, detail = False, f"{type(exc).__name__}: {exc}"
            latency = time.perf_counter() - start
            results.append(
                CheckResult(
                    name=name,
                    healthy=ok,
                    detail=detail,
                    latency_seconds=latency,
                    critical=critical,
                )
            )
            if critical and not ok:
                healthy = False
        return HealthReport(
            healthy=healthy,
            draining=draining,
            drain_reason=drain_reason,
            checks=results,
        )

    def collect(self) -> dict:
        """Flattened numbers for the metrics registry's ``health`` collector:
        ``health_<check>_healthy`` / ``health_<check>_latency_seconds`` per
        check plus the overall ``health_healthy`` / ``health_draining``
        gauges — the same verdicts ``/readyz`` serves, on the scrape path."""
        report = self.run()
        out: dict = {"healthy": report.healthy, "draining": report.draining}
        for check in report.checks:
            out[check.name] = {
                "healthy": check.healthy,
                "latency_seconds": check.latency_seconds,
            }
        return out


# --------------------------------------------------------------------------- #
# check factories (closed over live subsystem objects)
# --------------------------------------------------------------------------- #
def recovery_check(store) -> Callable[[], object]:
    """Healthy once the durable store's recovery completed and the store is
    still open (a closed store must pull the node from rotation)."""

    def check() -> object:
        if store.closed:
            return False, "durable store is closed"
        report = store.recovery
        if report is None:
            return False, "no recovery report (store not recovered)"
        return True, report.describe()

    return check


def free_space_check(
    path: str, min_free_bytes: int = DEFAULT_MIN_FREE_BYTES
) -> Callable[[], object]:
    """Healthy while the filesystem holding ``path`` has at least
    ``min_free_bytes`` free (the WAL must always be able to append)."""

    def check() -> object:
        usage = shutil.disk_usage(path)
        detail = (
            f"{usage.free / (1024 * 1024):.0f} MiB free "
            f"(floor {min_free_bytes / (1024 * 1024):.0f} MiB) at {path}"
        )
        return usage.free >= min_free_bytes, detail

    return check


def checkpoint_lag_check(
    store,
    max_records: Optional[int] = DEFAULT_MAX_CHECKPOINT_LAG_RECORDS,
    max_seconds: Optional[float] = None,
) -> Callable[[], object]:
    """Healthy while the WAL tail past the newest snapshot stays below the
    record (and optionally wall-clock) ceilings.

    Reads ``store.stats()`` — the same ``wal_records_since_checkpoint`` /
    ``seconds_since_last_checkpoint`` numbers the persistence collector
    exports to Prometheus, so the alert and the readiness probe can never
    disagree about the lag.  The seconds ceiling only applies while there
    is something to checkpoint: an idle store is clean, not lagging.
    """

    def check() -> object:
        if store.closed:
            return False, "durable store is closed"
        stats = store.stats()
        lag_records = stats["wal_records_since_checkpoint"]
        lag_seconds = stats["seconds_since_last_checkpoint"]
        detail = (
            f"{lag_records} WAL record(s) since checkpoint, "
            f"{lag_seconds:.0f}s since last checkpoint"
        )
        if max_records is not None and lag_records > max_records:
            return False, f"{detail} (record ceiling {max_records})"
        if (
            max_seconds is not None
            and lag_records > 0
            and lag_seconds > max_seconds
        ):
            return False, f"{detail} (age ceiling {max_seconds:.0f}s)"
        return True, detail

    return check


def process_pool_check(get_pool) -> Callable[[], object]:
    """Healthy while the morsel process pool has its full complement of live
    workers; ``get_pool`` is a zero-argument callable returning the current
    pool (it can be replaced by ``enable_process_pool``)."""

    def check() -> object:
        pool = get_pool()
        if pool is None:
            return False, "no process pool attached"
        if pool.closed:
            return False, "process pool is closed"
        stats = pool.stats()
        alive = stats.get("alive_workers", 0)
        want = stats.get("num_workers", 0)
        detail = (
            f"{alive}/{want} workers alive (generation {stats.get('generation', 0)})"
        )
        return alive >= want, detail

    return check


def thread_alive_check(is_running, description: str = "") -> Callable[[], object]:
    """Healthy while ``is_running()`` is truthy — the probe for daemon
    threads that expose a ``running`` property (compaction manager,
    catalogue refresher)."""

    def check() -> object:
        if is_running():
            return True, description or "thread alive"
        return False, (f"{description}: " if description else "") + "thread not running"

    return check
