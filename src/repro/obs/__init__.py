"""Unified observability: metrics registry, per-query traces, cardinality
feedback.

One :class:`Observability` object per :class:`~repro.api.GraphflowDB` ties
the three pieces together:

* :class:`~repro.obs.registry.MetricsRegistry` — thread-safe labeled
  counters / gauges / histograms (fixed log-scale buckets), with collectors
  that absorb the pre-existing ad-hoc stats surfaces (plan cache,
  compaction, persistence, serving) at scrape time; Prometheus text
  exposition plus a JSON dump.
* :class:`~repro.obs.trace.TraceRecorder` — a bounded ring buffer of
  :class:`~repro.obs.trace.QueryTrace` records (admission wait → plan/cache
  lookup → per-operator execution → WAL append spans) with a configurable
  slow-query log.
* :class:`~repro.obs.feedback.CardinalityFeedback` — per-cached-plan
  actual-vs-estimated cardinality aggregation (q-error), the feedback source
  the self-tuning optimizer loop consumes.

Set :attr:`Observability.enabled` to ``False`` to strip every per-query
hook from the execution path (the overhead benchmark gates the enabled path
at <= 5% against this).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EventLog,
    follow_events,
    iter_events,
    tail_events,
)
from repro.obs.feedback import CardinalityFeedback, PlanFeedback
from repro.obs.health import CheckResult, HealthReport, HealthRegistry
from repro.obs.registry import (
    LATENCY_BUCKETS,
    QERROR_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)
from repro.obs.trace import (
    OperatorStats,
    QueryTrace,
    Span,
    TraceRecorder,
    operator_stats_from_profile,
)

__all__ = [
    "Observability",
    "EventLog",
    "EVENT_SCHEMA_VERSION",
    "iter_events",
    "tail_events",
    "follow_events",
    "HealthRegistry",
    "HealthReport",
    "CheckResult",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "log_buckets",
    "LATENCY_BUCKETS",
    "QERROR_BUCKETS",
    "QueryTrace",
    "Span",
    "OperatorStats",
    "TraceRecorder",
    "operator_stats_from_profile",
    "CardinalityFeedback",
    "PlanFeedback",
]


class Observability:
    """The per-database observability root.

    Parameters
    ----------
    trace_capacity:
        Traces retained in the ring buffer.
    slow_query_seconds:
        Slow-query log threshold (``None`` disables the slow log).
    enabled:
        Master switch.  When False, the database records no traces, no
        feedback, and no per-query metrics — the state the overhead
        benchmark compares against.
    """

    def __init__(
        self,
        trace_capacity: int = 256,
        slow_query_seconds: Optional[float] = None,
        enabled: bool = True,
        feedback_capacity: int = 512,
        event_log: Optional[Union[str, EventLog]] = None,
    ) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry()
        self.traces = TraceRecorder(capacity=trace_capacity, slow_seconds=slow_query_seconds)
        self.feedback = CardinalityFeedback(capacity=feedback_capacity)
        # Structured event stream (query finishes, checkpoints, pool
        # respawns, ...); None until attach_event_log.  Events flow even
        # when `enabled` is False: lifecycle events (recovery, respawn) are
        # rare and operators want them regardless of per-query tracing.
        self.event_log: Optional[EventLog] = None
        if event_log is not None:
            self.attach_event_log(event_log)
        self.registry.register_collector("traces", self.traces.stats)
        self.registry.register_collector("cardinality_feedback", self.feedback.stats)
        # Pre-declared instrument families shared by the serving stack.  A
        # family handle is cheap; children materialise on first use.
        self.query_seconds = self.registry.histogram(
            "query_seconds",
            "End-to-end query latency by execution mode and status",
            labelnames=("mode", "status"),
        )
        self.plan_seconds = self.registry.histogram(
            "plan_seconds", "Plan-or-cache-lookup latency per query"
        )
        self.admission_wait_seconds = self.registry.histogram(
            "admission_wait_seconds", "Queue wait before a served query starts"
        )
        self.query_q_error = self.registry.histogram(
            "query_q_error",
            "Worst per-operator cardinality q-error per executed query",
            buckets=QERROR_BUCKETS,
        )
        self.queries_total = self.registry.counter(
            "queries_total", "Executed queries by status", labelnames=("status",)
        )
        self.query_matches_total = self.registry.counter(
            "query_matches_total", "Total output matches across executed queries"
        )
        self.query_icost_total = self.registry.counter(
            "query_icost_total", "Total i-cost (adjacency list elements accessed)"
        )
        self.query_intermediate_total = self.registry.counter(
            "query_intermediate_total", "Total intermediate partial matches"
        )
        self.intersection_cache_hits_total = self.registry.counter(
            "intersection_cache_hits_total", "E/I intersection-cache hits (paper 3.1)"
        )
        self.intersection_cache_misses_total = self.registry.counter(
            "intersection_cache_misses_total", "E/I intersection-cache misses"
        )
        self.updates_total = self.registry.counter(
            "updates_total", "Applied update batches"
        )
        self.update_seconds = self.registry.histogram(
            "update_seconds", "apply_updates latency (normalise + log + commit)"
        )
        self.wal_append_seconds = self.registry.histogram(
            "wal_append_seconds", "WAL append latency (frame + buffered write)"
        )
        self.wal_fsync_seconds = self.registry.histogram(
            "wal_fsync_seconds", "WAL group-commit fsync latency"
        )
        self.checkpoint_seconds = self.registry.histogram(
            "checkpoint_seconds", "Durable-store checkpoint duration"
        )
        self.compaction_seconds = self.registry.histogram(
            "compaction_seconds", "Delta-CSR compaction duration"
        )
        # Worker-side families for the multi-process morsel executor.  The
        # pool coordinator folds per-morsel timing records (piggybacked on
        # result messages) into these; the per-worker counters accumulate
        # across pool generations, so a crash-respawn never reads as a
        # counter going backwards.
        self.worker_queue_wait_seconds = self.registry.histogram(
            "worker_queue_wait_seconds",
            "Morsel wait between coordinator enqueue and worker pickup",
        )
        self.worker_execute_seconds = self.registry.histogram(
            "worker_execute_seconds", "Per-morsel execution time inside a worker process"
        )
        self.worker_base_load_seconds = self.registry.histogram(
            "worker_base_load_seconds",
            "Snapshot-base mmap+rebuild time on a worker base-cache miss",
        )
        self.worker_overlay_rebuild_seconds = self.registry.histogram(
            "worker_overlay_rebuild_seconds",
            "Delta-overlay replay time for dirty-snapshot queries in a worker",
        )
        self.worker_base_cache_hits_total = self.registry.counter(
            "worker_base_cache_hits_total", "Worker graph loads served from the mmap base cache"
        )
        self.worker_base_cache_misses_total = self.registry.counter(
            "worker_base_cache_misses_total", "Worker graph loads that mapped the base from disk"
        )
        self.worker_busy_seconds_total = self.registry.counter(
            "worker_busy_seconds_total",
            "Cumulative execute seconds per worker slot (survives pool respawns)",
            labelnames=("worker",),
        )
        self.worker_morsels_total = self.registry.counter(
            "worker_morsels_total",
            "Cumulative morsels executed per worker slot (survives pool respawns)",
            labelnames=("worker",),
        )
        self.worker_pool_generation = self.registry.gauge(
            "worker_pool_generation",
            "Process-pool generation (bumped on every whole-pool respawn)",
        )
        # Self-tuning loop families (catalogue auto-refresh + feedback-driven
        # re-optimization).  The before/after histograms share the q-error
        # bucket layout with query_q_error so drift and recovery can be read
        # off the same scale.
        self.tuning_catalogue_refreshes_total = self.registry.counter(
            "tuning_catalogue_refreshes_total",
            "Catalogue refreshes installed by the CatalogueRefresher",
        )
        self.tuning_refresh_seconds = self.registry.histogram(
            "tuning_refresh_seconds", "Off-path catalogue re-sample + install duration"
        )
        self.tuning_replans_total = self.registry.counter(
            "tuning_replans_total",
            "Drifting cached plans re-planned by the re-optimization pass",
        )
        self.tuning_plan_changes_total = self.registry.counter(
            "tuning_plan_changes_total",
            "Re-plans that installed a different, cheaper plan",
        )
        self.tuning_qerror_before = self.registry.histogram(
            "tuning_qerror_before",
            "Worst-operator q-error of a plan at the moment it was re-planned",
            buckets=QERROR_BUCKETS,
        )
        self.tuning_qerror_after = self.registry.histogram(
            "tuning_qerror_after",
            "Worst-operator q-error of the first full execution after a re-plan",
            buckets=QERROR_BUCKETS,
        )

    # ------------------------------------------------------------------ #
    # event stream
    # ------------------------------------------------------------------ #
    def attach_event_log(self, event_log: Union[str, EventLog], **log_kwargs) -> EventLog:
        """Attach a structured event log (a path opens one; an existing
        :class:`EventLog` is shared).  Replaces any previous attachment
        without closing it (the creator owns the handle)."""
        if not isinstance(event_log, EventLog):
            event_log = EventLog(str(event_log), **log_kwargs)
        self.event_log = event_log
        return event_log

    def emit_event(self, event_type: str, **fields) -> None:
        """Append one event; a silent no-op without an attached log, and
        never raises into the caller (emission failures must not take down
        a query, checkpoint, or compaction thread)."""
        log = self.event_log
        if log is None:
            return
        try:
            log.emit(event_type, **fields)
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    def record_query(self, trace: QueryTrace, feedback_key=None) -> Optional[QueryTrace]:
        """Record a finished query trace: ring buffer, metric families, and
        (when the plan came from the cache machinery) cardinality feedback."""
        if not self.enabled:
            return None
        self.traces.record(trace)
        self.queries_total.labels(trace.status).inc()
        self.query_seconds.labels(trace.mode, trace.status).observe(trace.total_seconds)
        self.query_matches_total.labels().inc(trace.num_matches)
        profile = trace.profile
        if profile:
            self.query_icost_total.labels().inc(profile.get("i_cost", 0))
            self.query_intermediate_total.labels().inc(profile.get("intermediate_matches", 0))
            self.intersection_cache_hits_total.labels().inc(profile.get("cache_hits", 0))
            self.intersection_cache_misses_total.labels().inc(profile.get("cache_misses", 0))
        plan_span = trace.span("plan")
        if plan_span is not None:
            self.plan_seconds.labels().observe(plan_span.seconds)
        worst = trace.max_q_error
        if worst == worst:  # not NaN
            self.query_q_error.labels().observe(worst)
        if feedback_key is not None and trace.operators:
            # Deadline/row-limit runs stop early, so their operator actuals
            # undercount: route them to the partial-execution tally instead
            # of the q-error aggregates.
            self.feedback.record(
                feedback_key,
                trace.query_name,
                trace.operators,
                partial=trace.status != "ok",
            )
        if self.event_log is not None:
            self.emit_event(
                "query_finish",
                trace_id=trace.trace_id,
                query=trace.query_name,
                key=trace.canonical_key,
                status=trace.status,
                mode=trace.mode,
                seconds=round(trace.total_seconds, 6),
                matches=trace.num_matches,
            )
            slow = self.traces.slow_seconds
            if slow is not None and trace.total_seconds >= slow:
                self.emit_event(
                    "slow_query",
                    trace_id=trace.trace_id,
                    query=trace.query_name,
                    key=trace.canonical_key,
                    seconds=round(trace.total_seconds, 6),
                    threshold=slow,
                    mode=trace.mode,
                )
        return trace

    def record_update(self, trace: QueryTrace) -> Optional[QueryTrace]:
        if not self.enabled:
            return None
        self.traces.record(trace)
        self.updates_total.labels().inc()
        self.update_seconds.labels().observe(trace.total_seconds)
        wal_span = trace.span("wal_append")
        if wal_span is not None:
            self.wal_append_seconds.labels().observe(wal_span.seconds)
        if self.event_log is not None:
            self.emit_event(
                "update_batch",
                trace_id=trace.trace_id,
                query=trace.query_name,
                status=trace.status,
                seconds=round(trace.total_seconds, 6),
            )
        return trace

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        return {
            "enabled": self.enabled,
            "traces": self.traces.stats(),
            "cardinality_feedback": self.feedback.stats(),
            "events": self.event_log.stats() if self.event_log is not None else {"attached": False},
        }
