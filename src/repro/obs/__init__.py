"""Unified observability: metrics registry, per-query traces, cardinality
feedback.

One :class:`Observability` object per :class:`~repro.api.GraphflowDB` ties
the three pieces together:

* :class:`~repro.obs.registry.MetricsRegistry` — thread-safe labeled
  counters / gauges / histograms (fixed log-scale buckets), with collectors
  that absorb the pre-existing ad-hoc stats surfaces (plan cache,
  compaction, persistence, serving) at scrape time; Prometheus text
  exposition plus a JSON dump.
* :class:`~repro.obs.trace.TraceRecorder` — a bounded ring buffer of
  :class:`~repro.obs.trace.QueryTrace` records (admission wait → plan/cache
  lookup → per-operator execution → WAL append spans) with a configurable
  slow-query log.
* :class:`~repro.obs.feedback.CardinalityFeedback` — per-cached-plan
  actual-vs-estimated cardinality aggregation (q-error), the feedback source
  the self-tuning optimizer loop consumes.

Set :attr:`Observability.enabled` to ``False`` to strip every per-query
hook from the execution path (the overhead benchmark gates the enabled path
at <= 5% against this).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.feedback import CardinalityFeedback, PlanFeedback
from repro.obs.registry import (
    LATENCY_BUCKETS,
    QERROR_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)
from repro.obs.trace import (
    OperatorStats,
    QueryTrace,
    Span,
    TraceRecorder,
    operator_stats_from_profile,
)

__all__ = [
    "Observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "log_buckets",
    "LATENCY_BUCKETS",
    "QERROR_BUCKETS",
    "QueryTrace",
    "Span",
    "OperatorStats",
    "TraceRecorder",
    "operator_stats_from_profile",
    "CardinalityFeedback",
    "PlanFeedback",
]


class Observability:
    """The per-database observability root.

    Parameters
    ----------
    trace_capacity:
        Traces retained in the ring buffer.
    slow_query_seconds:
        Slow-query log threshold (``None`` disables the slow log).
    enabled:
        Master switch.  When False, the database records no traces, no
        feedback, and no per-query metrics — the state the overhead
        benchmark compares against.
    """

    def __init__(
        self,
        trace_capacity: int = 256,
        slow_query_seconds: Optional[float] = None,
        enabled: bool = True,
        feedback_capacity: int = 512,
    ) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry()
        self.traces = TraceRecorder(capacity=trace_capacity, slow_seconds=slow_query_seconds)
        self.feedback = CardinalityFeedback(capacity=feedback_capacity)
        self.registry.register_collector("traces", self.traces.stats)
        self.registry.register_collector("cardinality_feedback", self.feedback.stats)
        # Pre-declared instrument families shared by the serving stack.  A
        # family handle is cheap; children materialise on first use.
        self.query_seconds = self.registry.histogram(
            "query_seconds",
            "End-to-end query latency by execution mode and status",
            labelnames=("mode", "status"),
        )
        self.plan_seconds = self.registry.histogram(
            "plan_seconds", "Plan-or-cache-lookup latency per query"
        )
        self.admission_wait_seconds = self.registry.histogram(
            "admission_wait_seconds", "Queue wait before a served query starts"
        )
        self.query_q_error = self.registry.histogram(
            "query_q_error",
            "Worst per-operator cardinality q-error per executed query",
            buckets=QERROR_BUCKETS,
        )
        self.queries_total = self.registry.counter(
            "queries_total", "Executed queries by status", labelnames=("status",)
        )
        self.query_matches_total = self.registry.counter(
            "query_matches_total", "Total output matches across executed queries"
        )
        self.query_icost_total = self.registry.counter(
            "query_icost_total", "Total i-cost (adjacency list elements accessed)"
        )
        self.query_intermediate_total = self.registry.counter(
            "query_intermediate_total", "Total intermediate partial matches"
        )
        self.intersection_cache_hits_total = self.registry.counter(
            "intersection_cache_hits_total", "E/I intersection-cache hits (paper 3.1)"
        )
        self.intersection_cache_misses_total = self.registry.counter(
            "intersection_cache_misses_total", "E/I intersection-cache misses"
        )
        self.updates_total = self.registry.counter(
            "updates_total", "Applied update batches"
        )
        self.update_seconds = self.registry.histogram(
            "update_seconds", "apply_updates latency (normalise + log + commit)"
        )
        self.wal_append_seconds = self.registry.histogram(
            "wal_append_seconds", "WAL append latency (frame + buffered write)"
        )
        self.wal_fsync_seconds = self.registry.histogram(
            "wal_fsync_seconds", "WAL group-commit fsync latency"
        )
        self.checkpoint_seconds = self.registry.histogram(
            "checkpoint_seconds", "Durable-store checkpoint duration"
        )
        self.compaction_seconds = self.registry.histogram(
            "compaction_seconds", "Delta-CSR compaction duration"
        )

    # ------------------------------------------------------------------ #
    def record_query(self, trace: QueryTrace, feedback_key=None) -> Optional[QueryTrace]:
        """Record a finished query trace: ring buffer, metric families, and
        (when the plan came from the cache machinery) cardinality feedback."""
        if not self.enabled:
            return None
        self.traces.record(trace)
        self.queries_total.labels(trace.status).inc()
        self.query_seconds.labels(trace.mode, trace.status).observe(trace.total_seconds)
        self.query_matches_total.labels().inc(trace.num_matches)
        profile = trace.profile
        if profile:
            self.query_icost_total.labels().inc(profile.get("i_cost", 0))
            self.query_intermediate_total.labels().inc(profile.get("intermediate_matches", 0))
            self.intersection_cache_hits_total.labels().inc(profile.get("cache_hits", 0))
            self.intersection_cache_misses_total.labels().inc(profile.get("cache_misses", 0))
        plan_span = trace.span("plan")
        if plan_span is not None:
            self.plan_seconds.labels().observe(plan_span.seconds)
        worst = trace.max_q_error
        if worst == worst:  # not NaN
            self.query_q_error.labels().observe(worst)
        if feedback_key is not None and trace.operators:
            self.feedback.record(feedback_key, trace.query_name, trace.operators)
        return trace

    def record_update(self, trace: QueryTrace) -> Optional[QueryTrace]:
        if not self.enabled:
            return None
        self.traces.record(trace)
        self.updates_total.labels().inc()
        self.update_seconds.labels().observe(trace.total_seconds)
        wal_span = trace.span("wal_append")
        if wal_span is not None:
            self.wal_append_seconds.labels().observe(wal_span.seconds)
        return trace

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        return {
            "enabled": self.enabled,
            "traces": self.traces.stats(),
            "cardinality_feedback": self.feedback.stats(),
        }
