"""A structured, durable event stream: size-rotated JSONL records.

Metrics answer "how much / how fast", traces answer "what happened inside
one request" — the event log answers "what happened to the *system*, in
order": query finishes, slow queries, update batches, checkpoints,
compaction installs, pool respawns, per-query fallbacks to thread
execution, and recoveries.  Each record is one line of JSON, so the file
tails cleanly with standard tooling (``jq``, ``grep``) and survives a crash
as a line-delimited prefix (a torn final line is skipped by the reader).

Records are schema-versioned: every line carries ``{"v": 1, "ts": <epoch
seconds>, "type": "<event type>", ...fields}``.  Readers must tolerate
unknown fields (additive evolution); a ``v`` bump signals an incompatible
change.  Well-known event types and their fields are documented in
``docs/observability.md``.

:class:`EventLog` is thread-safe (one lock around write+rotate) and
size-rotated: when the active file would exceed ``max_bytes`` it is renamed
to ``<path>.1`` (shifting older backups up, dropping past ``backups``), and
a fresh file is started — a long-running server holds a bounded amount of
event history on disk.  Emission never raises into the caller's hot path by
policy of the callers (:meth:`repro.obs.Observability.emit_event` swallows
errors); the log itself raises normally so tests see real failures.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Iterator, List, Optional, Sequence

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EVENT_TYPES",
    "EventLog",
    "follow_events",
    "iter_events",
    "tail_events",
]

#: Bump on incompatible record-shape changes; readers check ``record["v"]``.
EVENT_SCHEMA_VERSION = 1

#: Well-known event types (emitters may add new ones; readers must not
#: assume this list is closed).
EVENT_TYPES = (
    "query_finish",
    "slow_query",
    "update_batch",
    "checkpoint",
    "compaction_install",
    "pool_respawn",
    "fallback_to_thread",
    "recovery",
    "catalogue_refresh",
    "plan_replan",
)


class EventLog:
    """Thread-safe, size-rotated JSONL event log.

    Parameters
    ----------
    path:
        The active log file; rotated backups live next to it as
        ``<path>.1`` (newest) … ``<path>.N`` (oldest).
    max_bytes:
        Rotation threshold for the active file.
    backups:
        Rotated files kept; ``0`` truncates on rotation instead.
    """

    def __init__(self, path: str, max_bytes: int = 4 * 1024 * 1024, backups: int = 3) -> None:
        if max_bytes < 128:
            raise ValueError("max_bytes must be at least 128")
        if backups < 0:
            raise ValueError("backups cannot be negative")
        self.path = os.path.abspath(path)
        self.max_bytes = max_bytes
        self.backups = backups
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")
        self._size = self._handle.tell()
        self._closed = False
        self.emitted = 0
        self.rotations = 0
        self.dropped = 0  # emits after close()

    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._closed

    def emit(self, event_type: str, **fields: object) -> dict:
        """Append one schema-versioned record; returns the record written.

        Reserved keys (``v``, ``ts``, ``type``) cannot be overridden by
        ``fields`` — passing one raises :class:`ValueError` (callers that
        must never fail go through
        :meth:`repro.obs.Observability.emit_event`, which swallows).
        Non-JSON-serialisable field values are stringified rather than
        failing the emit.
        """
        record = {"v": EVENT_SCHEMA_VERSION, "ts": round(time.time(), 6), "type": str(event_type)}
        for key, value in fields.items():
            if key in record:
                raise ValueError(f"reserved event field {key!r} cannot be overridden")
            record[key] = value
        line = json.dumps(record, separators=(",", ":"), default=str) + "\n"
        with self._lock:
            if self._closed:
                self.dropped += 1
                return record
            if self._size > 0 and self._size + len(line) > self.max_bytes:
                self._rotate_locked()
            self._handle.write(line)
            self._handle.flush()
            self._size += len(line)
            self.emitted += 1
        return record

    def _rotate_locked(self) -> None:
        self._handle.close()
        if self.backups > 0:
            for i in range(self.backups - 1, 0, -1):
                src = f"{self.path}.{i}"
                if os.path.exists(src):
                    os.replace(src, f"{self.path}.{i + 1}")
            os.replace(self.path, f"{self.path}.1")
        else:
            os.unlink(self.path)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._size = 0
        self.rotations += 1

    def rotated_paths(self) -> List[str]:
        """Existing backup files, oldest first."""
        paths = [f"{self.path}.{i}" for i in range(self.backups, 0, -1)]
        return [p for p in paths if os.path.exists(p)]

    def stats(self) -> dict:
        with self._lock:
            return {
                "attached": True,
                "path": self.path,
                "schema_version": EVENT_SCHEMA_VERSION,
                "emitted": self.emitted,
                "rotations": self.rotations,
                "dropped": self.dropped,
                "size_bytes": self._size,
                "max_bytes": self.max_bytes,
                "backups": self.backups,
            }

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._handle.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"EventLog(path={self.path!r}, emitted={self.emitted}, rotations={self.rotations})"


# --------------------------------------------------------------------------- #
# readers
# --------------------------------------------------------------------------- #
def _iter_file(path: str) -> Iterator[dict]:
    try:
        handle = open(path, "r", encoding="utf-8")
    except FileNotFoundError:
        return
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail from a crash mid-write
            if isinstance(record, dict):
                yield record


def iter_events(
    path: str,
    types: Optional[Sequence[str]] = None,
    include_rotated: bool = True,
    max_backups: int = 16,
) -> Iterator[dict]:
    """Yield records oldest-first across rotated backups then the active file.

    ``types`` filters to the given event types; malformed lines (a torn
    crash tail) are skipped silently.
    """
    wanted = set(types) if types else None
    paths: List[str] = []
    if include_rotated:
        backups = [f"{path}.{i}" for i in range(1, max_backups + 1)]
        paths.extend(reversed([p for p in backups if os.path.exists(p)]))
    paths.append(path)
    for file_path in paths:
        for record in _iter_file(file_path):
            if wanted is None or record.get("type") in wanted:
                yield record


def _open_rotation_successor(path: str, old_ino: int, max_backups: int = 16):
    """Open the file that follows the one holding ``old_ino`` in the rotated
    chain ``<path>.N … <path>.1, <path>`` (oldest → newest), or ``None``
    when the old file fell out of retention (the follower then resumes at
    the active file; the dropped interval is unrecoverable by design).

    Racy by nature — the writer may rotate again between the stat scan and
    the open — so the opened file's inode is re-verified and the scan
    retried a few times before giving up."""
    for _ in range(4):
        entries = []
        for candidate in [f"{path}.{i}" for i in range(max_backups, 0, -1)] + [path]:
            try:
                entries.append((candidate, os.stat(candidate).st_ino))
            except OSError:
                continue
        index = next(
            (k for k, (_, ino) in enumerate(entries) if ino == old_ino), None
        )
        if index is None or index + 1 >= len(entries):
            return None
        next_path, next_ino = entries[index + 1]
        try:
            handle = open(next_path, "rb")
        except OSError:
            continue
        if os.fstat(handle.fileno()).st_ino == next_ino:
            return handle
        handle.close()
    return None


def follow_events(
    path: str,
    types: Optional[Sequence[str]] = None,
    poll_interval: float = 0.25,
    stop: Optional[object] = None,
    start_at_end: bool = True,
) -> Iterator[dict]:
    """Yield records appended to the active log file as they arrive — the
    ``tail -F`` of the event stream, shared by ``repro events --follow`` and
    the ops server's ``/events?follow=1`` NDJSON endpoint.

    Rotation-aware: when the writer renames the active file away
    (:meth:`EventLog._rotate_locked` uses ``os.replace``) and starts a fresh
    one at the same path, the follower drains the handle it holds to EOF —
    every record written before the rotation is still read — then walks the
    rotated chain by inode (``<path>.1`` upward) to the next file, so no
    record is skipped or duplicated even when several rotations land between
    two polls.  Only records rotated *past the backup retention* between
    polls are unrecoverable.  A torn tail (the writer's line not yet fully
    flushed) is re-read on the next poll instead of being dropped.
    Malformed lines are skipped, matching :func:`iter_events`.

    ``stop`` is an optional zero-argument callable polled between reads;
    when it turns truthy the generator returns (the HTTP handler passes the
    server's shutdown flag).  ``start_at_end=False`` replays the active
    file from its beginning first.
    """
    wanted = set(types) if types else None
    should_stop = stop if callable(stop) else (lambda: False)
    handle = None
    seek_end = start_at_end
    try:
        while True:
            if should_stop():
                return
            if handle is None:
                try:
                    # Binary mode: tell()/seek() arithmetic on partial lines
                    # is only defined for byte offsets.
                    handle = open(path, "rb")
                except FileNotFoundError:
                    time.sleep(poll_interval)
                    continue
                if seek_end:
                    handle.seek(0, os.SEEK_END)
                # Files reached through the rotation chain are read from the
                # start: everything in them is new to us.
                seek_end = False
            position = handle.tell()
            line = handle.readline()
            if not line:
                # EOF on the handle we hold.  If the path now points at a
                # different inode (or is briefly gone mid-rotation), the
                # writer rotated: advance to our file's successor in the
                # chain — possibly a sealed backup, whose own EOF lands back
                # here and walks one more step toward the active file.
                try:
                    our_ino = os.fstat(handle.fileno()).st_ino
                    rotated = os.stat(path).st_ino != our_ino
                except OSError:
                    our_ino = None
                    rotated = True
                if rotated:
                    handle.close()
                    handle = (
                        _open_rotation_successor(path, our_ino)
                        if our_ino is not None
                        else None
                    )
                    continue
                time.sleep(poll_interval)
                continue
            if not line.endswith(b"\n"):
                # Torn tail: the writer is mid-append.  Rewind and retry so
                # the record is yielded whole once the flush lands.
                handle.seek(position)
                time.sleep(poll_interval)
                continue
            try:
                record = json.loads(line.decode("utf-8", errors="replace"))
            except ValueError:
                continue
            if not isinstance(record, dict):
                continue
            if wanted is not None and record.get("type") not in wanted:
                continue
            yield record
    finally:
        if handle is not None:
            handle.close()


def tail_events(
    path: str,
    n: int = 20,
    types: Optional[Sequence[str]] = None,
    include_rotated: bool = True,
) -> List[dict]:
    """The last ``n`` matching records, oldest first."""
    from collections import deque

    ring: "deque[dict]" = deque(maxlen=max(1, n))
    for record in iter_events(path, types=types, include_rotated=include_rotated):
        ring.append(record)
    return list(ring)
