"""Command-line interface.

A small CLI so that the reproduction can be exercised without writing Python:

    python -m repro.cli datasets
    python -m repro.cli run --dataset amazon --query Q3 --adaptive
    python -m repro.cli run --dataset amazon --query "MATCH (a)-->(b), (b)-->(c), (a)-->(c)"
    python -m repro.cli explain --dataset google --query Q8
    python -m repro.cli spectrum --dataset amazon --query Q5 --max-plans 20
    python -m repro.cli stats --dataset epinions
    python -m repro.cli catalogue --dataset amazon --z 500 --output catalogue.json --show 10
    python -m repro.cli plan --dataset amazon --query Q8 --format dot --output plan.dot
    python -m repro.cli serve --dataset amazon --queries Q1,Q3 --clients 4 --requests 80
    python -m repro.cli update --dataset amazon --queries Q1 --batches 10 --batch-size 100
    python -m repro.cli serve --dataset amazon --queries Q1 --data-dir ./amazon-store
    python -m repro.cli update --dataset amazon --data-dir ./amazon-store --batches 5
    python -m repro.cli checkpoint --data-dir ./amazon-store
    python -m repro.cli recover --data-dir ./amazon-store
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro import GraphflowDB, datasets
from repro.experiments.harness import format_table
from repro.experiments.spectrum import generate_spectrum
from repro.graph.statistics import compute_statistics
from repro.query import catalog_queries
from repro.query.cypher import looks_like_cypher, parse_cypher
from repro.query.parser import parse_query


def _load_db(args: argparse.Namespace) -> GraphflowDB:
    data_dir = getattr(args, "data_dir", None)
    if data_dir:
        from repro.persistence.store import store_exists

        if store_exists(data_dir):
            # Recover; lock conflicts and corruption diagnostics propagate
            # verbatim instead of being masked by a bootstrap attempt.
            db = GraphflowDB.open(data_dir)
            print(f"durable store: {db.durable_store.recovery.describe()}")
        else:
            # Genuinely empty: bootstrap from the requested dataset.
            graph = datasets.load(args.dataset, scale=args.scale, edge_labels=args.edge_labels)
            db = GraphflowDB.open(data_dir, graph=graph)
            print(f"durable store: bootstrapped {data_dir} from {graph.name}")
    else:
        graph = datasets.load(args.dataset, scale=args.scale, edge_labels=args.edge_labels)
        db = GraphflowDB(graph)
    db.build_catalogue(h=args.h, z=args.z)
    return db


def _resolve_query(text: str):
    try:
        return catalog_queries.get(text)
    except KeyError:
        if looks_like_cypher(text):
            return parse_cypher(text, name="cli-query")
        return parse_query(text, name="cli-query")


def _ops_url(base: str, path: str, params: Optional[dict] = None) -> str:
    """Join an ops-server base URL (``host:port`` accepted) with a path."""
    from urllib.parse import urlencode

    base = base.rstrip("/")
    if "://" not in base:
        base = f"http://{base}"
    url = f"{base}{path}"
    if params:
        query = urlencode({k: v for k, v in params.items() if v is not None})
        if query:
            url = f"{url}?{query}"
    return url


def _ops_get_json(url: str, timeout: float = 10.0):
    """GET a JSON document from a running ops server.

    4xx/5xx responses still carry a JSON body (the ops server always answers
    in JSON), so decode those too instead of surfacing a bare HTTPError.
    """
    import json
    from urllib.error import HTTPError
    from urllib.request import urlopen

    try:
        with urlopen(url, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8")), response.status
    except HTTPError as exc:
        body = exc.read().decode("utf-8", errors="replace")
        try:
            return json.loads(body), exc.code
        except ValueError:
            raise RuntimeError(f"{url}: HTTP {exc.code}: {body.strip()}") from exc


def _scalar_rows(data: dict, prefix: str = "", depth: int = 0) -> list:
    """Flatten a nested stats dict into metric/value table rows (scalar
    leaves only, dotted names, two levels deep — enough for /stats)."""
    rows = []
    for key in sorted(data):
        value = data[key]
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            if depth < 2:
                rows.extend(_scalar_rows(value, prefix=f"{name}.", depth=depth + 1))
        elif isinstance(value, (list, tuple)):
            continue
        else:
            if isinstance(value, float):
                value = f"{value:.4f}"
            rows.append({"metric": name, "value": str(value)})
    return rows


def cmd_datasets(_: argparse.Namespace) -> int:
    rows = [
        {
            "name": spec.name,
            "domain": spec.domain,
            "paper size": f"{spec.paper_vertices} vertices / {spec.paper_edges} edges",
            "archetype": spec.description,
        }
        for spec in datasets.DATASETS.values()
    ]
    print(format_table(rows, title="registered dataset archetypes"))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Without ``--queries``: structural statistics of a dataset (original
    behaviour).  With ``--queries``: run a short workload through a
    :class:`QueryService` and print the unified service/database counters —
    the same data :meth:`QueryService.stats` exposes from Python — as a
    table or, with ``--json``, as one JSON document.  With ``--url``: fetch
    the stats of an already-running server from its ops plane (``GET
    /stats``) instead of spinning anything up locally."""
    import json

    if args.url:
        stats, _ = _ops_get_json(_ops_url(args.url, "/stats"))
        if args.json:
            print(json.dumps(stats, indent=2, default=str))
        else:
            print(
                format_table(
                    _scalar_rows(stats), title=f"service stats from {args.url}"
                )
            )
        return 0

    if not args.queries:
        graph = datasets.load(args.dataset, scale=args.scale)
        stats = compute_statistics(graph)
        if args.json:
            print(
                json.dumps(
                    {
                        "graph": graph.name,
                        "num_vertices": graph.num_vertices,
                        "num_edges": graph.num_edges,
                        "out_degree_mean": stats.out_degrees.mean,
                        "out_degree_max": stats.out_degrees.maximum,
                        "in_degree_mean": stats.in_degrees.mean,
                        "in_degree_max": stats.in_degrees.maximum,
                        "reciprocity": stats.reciprocity,
                        "average_clustering": stats.average_clustering,
                        "triangle_estimate": stats.triangle_estimate,
                    },
                    indent=2,
                )
            )
            return 0
        print(f"{graph}")
        print(f"  out-degree: mean={stats.out_degrees.mean:.2f} max={stats.out_degrees.maximum}")
        print(f"  in-degree:  mean={stats.in_degrees.mean:.2f} max={stats.in_degrees.maximum}")
        print(f"  reciprocity: {stats.reciprocity:.3f}")
        print(f"  average clustering: {stats.average_clustering:.3f}")
        print(f"  triangle estimate: {stats.triangle_estimate:.0f}")
        return 0

    import time

    from repro.server.service import QueryService

    db = _load_db(args)
    names = [n.strip() for n in args.queries.split(",") if n.strip()]
    workload = [_resolve_query(names[i % len(names)]) for i in range(args.requests)]
    with QueryService(db, vectorized=args.vectorized) as service:
        iteration = 0
        while True:
            service.execute_batch(workload)
            iteration += 1
            if args.json:
                stats = service.stats()
                stats["db"] = db.stats()
                print(json.dumps(stats, indent=2, default=str))
            else:
                title = f"service stats after {iteration * len(workload)} queries ({','.join(names)})"
                if args.watch is not None:
                    title += time.strftime(" — %H:%M:%S")
                print(format_table(service.stats_rows(), title=title))
            if args.watch is None:
                break
            # Hidden test hook: bound the refresh loop; interactive use runs
            # until Ctrl-C.
            if args.watch_iterations is not None and iteration >= args.watch_iterations:
                break
            try:
                time.sleep(args.watch)
            except KeyboardInterrupt:
                break
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Execute one query and print its full trace: spans (plan/cache lookup,
    execution) and per-operator actual-vs-estimated cardinalities with
    q-errors.

    With ``--url`` the traces come from a running server's ops plane
    instead: ``--id N`` fetches one full trace, ``--slow`` the slow-query
    ring, and neither lists recent trace summaries."""
    import json

    if args.url:
        if args.trace_id is not None:
            payload, status = _ops_get_json(
                _ops_url(args.url, f"/traces/{args.trace_id}")
            )
            if status != 200:
                print(f"error: {payload.get('error', payload)}", file=sys.stderr)
                return 1
            print(json.dumps(payload, indent=2, default=str))
            return 0
        path = "/slow" if args.slow else "/traces"
        payload, status = _ops_get_json(_ops_url(args.url, path))
        if status != 200:
            print(f"error: {payload.get('error', payload)}", file=sys.stderr)
            return 1
        traces = payload.get("traces", [])
        if args.json:
            print(json.dumps(payload, indent=2, default=str))
            return 0
        rows = [
            {
                "id": t.get("trace_id"),
                "kind": t.get("kind"),
                "query": t.get("query"),
                "status": t.get("status"),
                "mode": t.get("mode"),
                "matches": t.get("num_matches"),
                "seconds": f"{t.get('total_seconds', 0.0):.4f}",
            }
            for t in traces
        ]
        title = f"{'slow queries' if args.slow else 'recent traces'} from {args.url}"
        if rows:
            print(format_table(rows, title=title))
        else:
            print(f"{title}: none recorded")
        return 0
    if args.query is None:
        print("error: --query is required (or use --url for a remote server)", file=sys.stderr)
        return 2

    db = _load_db(args)
    query = _resolve_query(args.query)
    execute_kwargs = dict(
        adaptive=args.adaptive,
        num_workers=args.workers,
        vectorized=True if args.vectorized else None,
        execution_mode=getattr(args, "execution_mode", None),
    )
    result = db.execute(query, **execute_kwargs)
    trace = result.trace
    if trace is None:  # pragma: no cover - tracing is on by default
        print("error: tracing is disabled on this database", file=sys.stderr)
        return 1
    if args.repeat > 1:
        for _ in range(args.repeat - 1):
            result = db.execute(query, **execute_kwargs)
            trace = result.trace
    if args.json:
        print(json.dumps(trace.as_dict(), indent=2, default=str))
    else:
        print(trace.describe())
        feedback = db.obs.feedback.stats()
        if feedback["plans_tracked"]:
            print(
                f"cardinality feedback: {feedback['plans_tracked']} plan(s) tracked, "
                f"max q-error {feedback['max_q_error']:.2f}"
            )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if args.adaptive and args.workers > 1:
        print("error: --adaptive is not supported with --workers > 1", file=sys.stderr)
        return 2
    db = _load_db(args)
    query = _resolve_query(args.query)
    result = db.execute(
        query,
        adaptive=args.adaptive,
        num_workers=args.workers,
        vectorized=True if args.vectorized else None,
        execution_mode=args.execution_mode,
    )
    mode = result.trace.mode if result.trace is not None else "?"
    print(
        f"{query.name} on {db.graph.name}: {result.num_matches} matches in "
        f"{result.elapsed_seconds:.3f}s (plan={result.plan.plan_type}, "
        f"i-cost={result.i_cost}, mode={mode})"
    )
    db.close_process_pool()
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    db = _load_db(args)
    print(db.explain(_resolve_query(args.query)))
    return 0


def cmd_spectrum(args: argparse.Namespace) -> int:
    db = _load_db(args)
    query = _resolve_query(args.query)
    chosen = db.plan(query)
    spectrum = generate_spectrum(
        query, db.graph, catalogue=db.catalogue, chosen_plan=chosen, max_plans=args.max_plans
    )
    rows = [
        {
            "type": p.plan_type,
            "seconds": p.seconds,
            "i_cost": p.i_cost,
            "chosen": "*" if p.is_optimizer_choice else "",
        }
        for p in sorted(spectrum.points, key=lambda p: p.seconds)
    ]
    print(format_table(rows, title=spectrum.summary()))
    return 0


def cmd_catalogue(args: argparse.Namespace) -> int:
    from repro.catalogue.construction import build_catalogue
    from repro.catalogue.persistence import render_entries, save_catalogue

    graph = datasets.load(args.dataset, scale=args.scale, edge_labels=args.edge_labels)
    warm = [catalog_queries.get(name) for name in args.warm_queries.split(",") if name]
    catalogue = build_catalogue(graph, h=args.h, z=args.z, queries=warm)
    print(catalogue.summary())
    if args.show:
        print(render_entries(catalogue, limit=args.show, sort_by_mu=True))
    if args.output:
        save_catalogue(catalogue, args.output)
        print(f"saved to {args.output}")
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    from repro.planner.serialize import plan_to_dot, plan_to_json

    db = _load_db(args)
    query = _resolve_query(args.query)
    plan = db.plan(query)
    rendered = plan_to_dot(plan) if args.format == "dot" else plan_to_json(plan)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote {args.format} plan for {query.name} to {args.output}")
    else:
        print(rendered)
    return 0


def cmd_plans(args: argparse.Namespace) -> int:
    """Check (or rebaseline) the plan-regression guard suite."""
    import os

    from repro.tuning.regression import (
        DEFAULT_BASELINE_PATH,
        PlanRegressionSuite,
        format_diffs,
    )

    baseline = args.baseline if args.baseline else DEFAULT_BASELINE_PATH
    suite = PlanRegressionSuite()
    if args.rebaseline:
        entries = suite.rebaseline(baseline)
        print(f"recorded {len(entries)} plan signature(s) to {baseline}")
        print("commit the updated baseline with the change that motivated it")
        return 0
    if not os.path.exists(baseline):
        print(
            f"error: no baseline at {baseline!r}; run "
            f"`repro plans --rebaseline` first",
            file=sys.stderr,
        )
        return 2
    diffs = suite.check_path(baseline)
    if diffs:
        print(format_diffs(diffs))
        return 1
    print(
        f"plan regression: {len(suite.case_ids())} case(s) match the baseline "
        f"at {baseline}"
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Replay a repeated-query workload through the QueryService and print
    the serving metrics table (QPS, latency percentiles, plan-cache stats)."""
    import time

    from repro.server.service import QueryService

    if args.clients < 1:
        print("error: --clients must be at least 1", file=sys.stderr)
        return 2
    if args.requests < 1:
        print("error: --requests must be at least 1", file=sys.stderr)
        return 2
    db = _load_db(args)
    if args.no_plan_cache:
        db.plan_cache = None
    names = [n.strip() for n in args.queries.split(",") if n.strip()]
    base_queries = [_resolve_query(n) for n in names]
    workload = []
    for i in range(args.requests):
        query = base_queries[i % len(base_queries)]
        if args.rename:
            # Rename vertices per request so cache hits come from canonical
            # forms, not object identity.
            query = query.rename_vertices({v: f"{v}_r{i}" for v in query.vertices})
        workload.append(query)

    ops_addr = (args.ops_host, args.ops_port) if args.ops_port is not None else None
    with QueryService(
        db,
        max_concurrent=args.clients,
        max_queue=max(len(workload), 1),
        default_deadline_seconds=args.deadline,
        default_row_limit=args.row_limit,
        num_workers=args.workers,
        execution_mode=args.execution_mode,
        vectorized=args.vectorized,
        slow_query_seconds=args.slow_query_seconds,
        event_log=args.event_log,
        ops_addr=ops_addr,
    ) as service:
        if service.ops_server is not None:
            print(f"ops plane listening on {service.ops_server.url}", flush=True)
        start = time.perf_counter()
        results = service.execute_batch(workload)
        elapsed = time.perf_counter() - start
        matches = sum(r.num_matches for r in results)
        by_status: dict = {}
        for r in results:
            by_status[r.status] = by_status.get(r.status, 0) + 1
        print(
            f"served {len(results)} queries ({','.join(names)}) on {db.graph.name} "
            f"with {args.clients} clients in {elapsed:.3f}s "
            f"({len(results) / elapsed:.1f} q/s, {matches} total matches)"
        )
        print(f"statuses: {by_status}")
        print(format_table(service.stats_rows(), title="serving metrics"))
        if args.slow_query_seconds is not None:
            slow = service.slow_queries()
            print(f"slow queries (≥ {args.slow_query_seconds}s): {len(slow)}")
        if args.metrics_dump:
            exposition = service.metrics_prometheus()
            if args.metrics_dump == "-":
                print(exposition, end="")
            else:
                with open(args.metrics_dump, "w", encoding="utf-8") as handle:
                    handle.write(exposition)
                print(f"wrote Prometheus metrics to {args.metrics_dump}")
        if args.hold_seconds:
            # Keep serving (inside the with block: the ops server stays up,
            # /readyz stays green) so external probes and scrapers can hit a
            # live service — the CI ops smoke and ad-hoc debugging both use
            # this.  Ctrl-C ends the hold early.
            print(
                f"holding for {args.hold_seconds:.0f}s "
                "(ops endpoints live; Ctrl-C to stop)",
                flush=True,
            )
            deadline = time.perf_counter() + args.hold_seconds
            try:
                while time.perf_counter() < deadline:
                    time.sleep(min(0.2, max(0.0, deadline - time.perf_counter())))
            except KeyboardInterrupt:
                pass
    if db.durable_store is not None:
        db.close()  # graceful shutdown: final checkpoint + WAL truncate
        print(
            f"checkpointed durable store at {db.durable_store.data_dir} "
            f"(snapshot seq {db.durable_store.snapshot_seq})"
        )
    return 0


def cmd_update(args: argparse.Namespace) -> int:
    """Replay a live-update workload: random edge batches flow through
    ``GraphflowDB.apply_updates`` (versioned delta-CSR storage, incremental
    catalogue stats, plan-cache invalidation) while registered continuous
    queries maintain their match counts incrementally."""
    import time

    import numpy as np

    from repro.continuous import ContinuousQueryEngine

    if args.batches < 1 or args.batch_size < 1:
        print("error: --batches and --batch-size must be at least 1", file=sys.stderr)
        return 2
    db = _load_db(args)
    dynamic = db.to_dynamic()
    start_seq = db.durable_store.last_seq if db.durable_store is not None else 0
    if args.background_compaction:
        db.enable_background_compaction()
    engine = ContinuousQueryEngine(dynamic)
    names = [n.strip() for n in args.queries.split(",") if n.strip()]
    for name in names:
        total = engine.register(name, _resolve_query(name))
        print(f"registered {name}: {total} initial matches")

    rng = np.random.default_rng(args.seed)
    n = dynamic.num_vertices
    applied_edges = 0
    used = set()
    start = time.perf_counter()
    for batch_no in range(args.batches):
        batch = []
        while len(batch) < args.batch_size:
            src, dst = (int(x) for x in rng.integers(0, n, 2))
            if src != dst and (src, dst) not in used and not dynamic.has_edge(src, dst, 0):
                used.add((src, dst))
                batch.append((src, dst, 0))
        if db.durable_store is not None:
            # WAL-append before the in-memory commit, under the store's
            # commit lock — the engine's write goes through log_and_apply so
            # a checkpoint can never capture a seq the graph hasn't seen.
            _, results = db.durable_store.log_and_apply(
                batch, (), None, lambda: engine.insert_edges(batch)
            )
        else:
            results = engine.insert_edges(batch)
        # The engine wrote straight to the shared DynamicGraph; refresh the
        # database's catalogue stats / plan cache for the applied triples.
        db.note_external_writes(inserted=batch)
        applied_edges += len(batch)
        deltas = ", ".join(f"{r.query_name}: {r.total} ({r.delta:+d})" for r in results)
        print(f"batch {batch_no + 1}/{args.batches}: +{len(batch)} edges -> {deltas}")
    elapsed = time.perf_counter() - start
    print(
        f"applied {applied_edges} edges in {elapsed:.3f}s "
        f"({applied_edges / elapsed:.0f} updates/s), graph version {dynamic.version}, "
        f"{dynamic.compactions} compaction(s), delta overlay {dynamic.delta_edges} edges"
    )
    if args.background_compaction:
        stats = db.compaction_manager.stats()
        db.disable_background_compaction()
        print(
            f"background compaction: {stats['compactions']} run(s), "
            f"{stats['total_compaction_seconds']:.3f}s off the write path"
        )
    verify = db.execute(_resolve_query(names[0]))
    print(
        f"re-executed {names[0]} on version {db.graph_version}: "
        f"{verify.num_matches} matches (continuous total "
        f"{engine.current_count(names[0])})"
    )
    if db.durable_store is not None:
        logged = db.durable_store.last_seq - start_seq
        db.close()
        print(
            f"durable: {logged} WAL record(s) logged this run, "
            f"checkpointed to snapshot seq {db.durable_store.snapshot_seq} on close"
        )
    return 0


def cmd_events(args: argparse.Namespace) -> int:
    """Tail / filter a structured event log: the JSONL stream written by
    ``GraphflowDB(event_log=...)`` / ``serve --event-log``.  Reads rotated
    backups oldest-first, skips torn or malformed lines, and with
    ``--follow`` keeps polling the active file for appended events
    (rotation-aware) until interrupted.

    With ``--url`` the events stream over HTTP from a running server's ops
    plane (``GET /events``) — the same filters apply, and ``--follow``
    holds the NDJSON stream open until interrupted."""
    import json
    import os
    import time

    from repro.obs.events import follow_events, iter_events, tail_events

    types = (
        [t.strip() for t in args.type.split(",") if t.strip()] if args.type else None
    )

    def render(event: dict) -> str:
        if args.json:
            return json.dumps(event, sort_keys=True, default=str)
        stamp = time.strftime("%H:%M:%S", time.localtime(event.get("ts", 0.0)))
        fields = " ".join(
            f"{key}={value}"
            for key, value in event.items()
            if key not in ("v", "ts", "type")
        )
        return f"{stamp}  {event.get('type', '?'):<20} {fields}"

    if args.url:
        from urllib.request import urlopen

        url = _ops_url(
            args.url,
            "/events",
            {
                "type": args.type,
                "tail": args.tail,
                "follow": "1" if args.follow else None,
            },
        )
        try:
            # No timeout in follow mode: the stream stays open on purpose.
            with urlopen(url, timeout=None if args.follow else 10.0) as response:
                if response.status != 200:
                    print(f"error: HTTP {response.status} from {url}", file=sys.stderr)
                    return 1
                for line in response:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        event = json.loads(line.decode("utf-8", errors="replace"))
                    except ValueError:
                        continue
                    print(render(event), flush=True)
        except KeyboardInterrupt:
            pass
        except OSError as exc:
            print(f"error: {url}: {exc}", file=sys.stderr)
            return 1
        return 0

    if args.path is None:
        print("error: --path is required (or use --url for a remote server)", file=sys.stderr)
        return 2
    if not os.path.exists(args.path):
        print(f"error: no event log at {args.path}", file=sys.stderr)
        return 1
    if args.tail is not None:
        events = tail_events(args.path, n=args.tail, types=types)
    else:
        events = list(iter_events(args.path, types=types))
    for event in events:
        print(render(event))
    if not args.follow:
        return 0
    try:
        for event in follow_events(
            args.path, types=types, poll_interval=args.poll_interval
        ):
            print(render(event), flush=True)
    except KeyboardInterrupt:
        pass
    return 0


def cmd_checkpoint(args: argparse.Namespace) -> int:
    """Force a checkpoint of an existing durable store: compact state is
    written as a fresh snapshot file and the write-ahead log is truncated
    behind it."""
    db = GraphflowDB.open(args.data_dir)
    store = db.durable_store
    print(f"opened: {store.recovery.describe()}")
    before = store.stats()
    info = store.checkpoint(force=args.force)
    if info is None:
        print(
            f"nothing to checkpoint: snapshot seq {store.snapshot_seq} already "
            "covers every logged record (use --force to rewrite it)"
        )
    else:
        print(
            f"checkpointed {before['wal_records_since_checkpoint']} WAL record(s) "
            f"into {info.path} (seq {info.last_seq}, "
            f"{store.last_checkpoint_seconds:.3f}s)"
        )
    db.close(checkpoint=False)
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    """Open a durable store, report what recovery did (snapshot loaded, WAL
    records replayed, torn bytes truncated), and verify the result."""
    from repro.persistence import DurableGraphStore

    store = DurableGraphStore.open(args.data_dir)
    report = store.recovery
    print(report.describe())
    for path in report.skipped_snapshots:
        print(f"  skipped corrupt snapshot: {path}")
    dynamic = store.dynamic
    print(
        f"recovered graph: {dynamic.num_vertices} vertices, {dynamic.num_edges} edges "
        f"(snapshot seq {store.snapshot_seq}, last applied seq {store.last_seq})"
    )
    if args.checkpoint and store.dirty:
        info = store.checkpoint()
        print(f"folded WAL tail into new snapshot {info.path} (seq {info.last_seq})")
    store.close(checkpoint=False)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", default="amazon", help="dataset archetype name")
        p.add_argument("--scale", type=float, default=0.25, help="dataset scale factor")
        p.add_argument("--edge-labels", type=int, default=1, dest="edge_labels")
        p.add_argument("--h", type=int, default=3, help="catalogue max sub-query size")
        p.add_argument("--z", type=int, default=300, help="catalogue sample size")

    sub.add_parser("datasets", help="list dataset archetypes").set_defaults(func=cmd_datasets)

    stats = sub.add_parser(
        "stats",
        help="structural statistics of a dataset, or (with --queries) the "
        "service/database counters after a short workload",
    )
    add_common(stats)
    stats.add_argument(
        "--queries",
        default=None,
        help="comma-separated query mix; when given, run them through a "
        "QueryService and print serving stats instead of graph structure",
    )
    stats.add_argument(
        "--requests", type=int, default=8, help="workload size for --queries mode"
    )
    stats.add_argument(
        "--vectorized", action="store_true", help="serve the workload vectorized"
    )
    stats.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    stats.add_argument(
        "--url",
        default=None,
        metavar="HOST:PORT",
        help="fetch /stats from a running server's ops plane instead of "
        "running a local workload",
    )
    stats.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --queries: re-run the workload and refresh the stats "
        "every SECONDS until interrupted",
    )
    stats.add_argument(
        # Test hook: bound the --watch loop to N refreshes.
        "--watch-iterations",
        type=int,
        default=None,
        dest="watch_iterations",
        help=argparse.SUPPRESS,
    )
    stats.set_defaults(func=cmd_stats)

    trace = sub.add_parser(
        "trace", help="execute one query and print its trace (spans + per-operator q-error)"
    )
    add_common(trace)
    trace.add_argument("--query", default=None, help="query to execute and trace locally")
    trace.add_argument(
        "--url",
        default=None,
        metavar="HOST:PORT",
        help="read traces from a running server's ops plane instead of "
        "executing anything locally",
    )
    trace.add_argument(
        "--id",
        type=int,
        default=None,
        dest="trace_id",
        help="with --url: fetch one full trace by id",
    )
    trace.add_argument(
        "--slow",
        action="store_true",
        help="with --url: list the slow-query ring instead of recent traces",
    )
    trace.add_argument("--adaptive", action="store_true")
    trace.add_argument("--workers", type=int, default=1)
    trace.add_argument(
        "--execution-mode",
        choices=("thread", "process"),
        default="thread",
        dest="execution_mode",
        help="how --workers > 1 splits morsels; 'process' traces show "
        "per-morsel worker spans plus skew/critical-path summaries",
    )
    trace.add_argument(
        "--vectorized",
        action="store_true",
        help="execute with the batch-at-a-time (columnar) engine",
    )
    trace.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="execute N times and show the last trace (N>1 exercises the plan cache)",
    )
    trace.add_argument("--json", action="store_true", help="emit the trace as JSON")
    trace.set_defaults(func=cmd_trace)

    run = sub.add_parser("run", help="plan and execute a query")
    add_common(run)
    run.add_argument("--query", required=True, help="Q1..Q14, a demo query name, or a pattern string")
    run.add_argument("--adaptive", action="store_true")
    run.add_argument("--workers", type=int, default=1)
    run.add_argument(
        "--vectorized",
        action="store_true",
        help="execute with the batch-at-a-time (columnar) engine",
    )
    run.add_argument(
        "--execution-mode",
        choices=("thread", "process"),
        default="thread",
        dest="execution_mode",
        help="how --workers > 1 splits morsels: threads in-process, or a "
        "process pool mapping a shared snapshot file (GIL-free)",
    )
    run.set_defaults(func=cmd_run)

    explain = sub.add_parser("explain", help="show the optimizer's plan for a query")
    add_common(explain)
    explain.add_argument("--query", required=True)
    explain.set_defaults(func=cmd_explain)

    spectrum = sub.add_parser("spectrum", help="run the full plan spectrum of a query")
    add_common(spectrum)
    spectrum.add_argument("--query", required=True)
    spectrum.add_argument("--max-plans", type=int, default=30, dest="max_plans")
    spectrum.set_defaults(func=cmd_spectrum)

    catalogue = sub.add_parser("catalogue", help="build (and optionally save) a catalogue")
    add_common(catalogue)
    catalogue.add_argument("--output", default=None, help="write the catalogue to this JSON file")
    catalogue.add_argument("--show", type=int, default=0, help="print the top-N entries")
    catalogue.add_argument(
        "--warm-queries",
        default="Q1,Q3,Q4",
        dest="warm_queries",
        help="comma-separated query names whose extensions are measured eagerly",
    )
    catalogue.set_defaults(func=cmd_catalogue)

    plan = sub.add_parser("plan", help="export the optimizer's plan as JSON or Graphviz DOT")
    add_common(plan)
    plan.add_argument("--query", required=True)
    plan.add_argument("--format", choices=("json", "dot"), default="json")
    plan.add_argument("--output", default=None, help="write to this file instead of stdout")
    plan.set_defaults(func=cmd_plan)

    plans = sub.add_parser(
        "plans", help="diff the optimizer's plans for the canned workload against the baseline"
    )
    plans.add_argument(
        "--check",
        action="store_true",
        help="compare live plan signatures against the baseline (the default)",
    )
    plans.add_argument(
        "--rebaseline",
        action="store_true",
        help="record the live plan signatures as the new baseline",
    )
    plans.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: tests/baselines/plan_regression.json)",
    )
    plans.set_defaults(func=cmd_plans)

    serve = sub.add_parser(
        "serve", help="replay a repeated-query workload through the QueryService"
    )
    add_common(serve)
    serve.add_argument(
        "--queries",
        default="Q1,Q3",
        help="comma-separated query mix (names or pattern strings), cycled over",
    )
    serve.add_argument("--clients", type=int, default=4, help="concurrent client threads")
    serve.add_argument("--requests", type=int, default=40, help="total queries to replay")
    serve.add_argument(
        "--deadline", type=float, default=None, help="per-query deadline in seconds"
    )
    serve.add_argument(
        "--row-limit", type=int, default=None, dest="row_limit", help="per-query row limit"
    )
    serve.add_argument(
        "--rename",
        action="store_true",
        help="rename query vertices per request (exercises canonical-form caching)",
    )
    serve.add_argument(
        "--no-plan-cache",
        action="store_true",
        dest="no_plan_cache",
        help="disable the plan cache (re-optimize every request, for comparison)",
    )
    serve.add_argument(
        "--vectorized",
        action="store_true",
        help="serve queries with the batch-at-a-time (columnar) engine",
    )
    serve.add_argument(
        "--workers", type=int, default=1, help="morsel workers per query (1 = serial)"
    )
    serve.add_argument(
        "--execution-mode",
        choices=("thread", "process"),
        default="thread",
        dest="execution_mode",
        help="how --workers > 1 splits morsels: threads in-process, or a "
        "process pool mapping a shared snapshot file (GIL-free)",
    )
    serve.add_argument(
        "--data-dir",
        default=None,
        dest="data_dir",
        help="serve durably from this store directory (recover it if it "
        "exists, else bootstrap it from --dataset); checkpoints on exit",
    )
    serve.add_argument(
        "--metrics-dump",
        default=None,
        dest="metrics_dump",
        metavar="PATH",
        help="after the workload, dump the metrics registry in Prometheus "
        "text format to PATH ('-' for stdout)",
    )
    serve.add_argument(
        "--slow-query-seconds",
        type=float,
        default=None,
        dest="slow_query_seconds",
        help="log and retain queries at least this slow (the slow-query log)",
    )
    serve.add_argument(
        "--event-log",
        default=None,
        dest="event_log",
        metavar="PATH",
        help="stream structured lifecycle events (query finishes, "
        "checkpoints, compactions, pool respawns) to this JSONL file",
    )
    serve.add_argument(
        "--ops-port",
        type=int,
        default=None,
        dest="ops_port",
        metavar="PORT",
        help="start the HTTP ops plane on this port (0 for an ephemeral "
        "one): /metrics, /healthz, /readyz, /stats, /traces, /events",
    )
    serve.add_argument(
        "--ops-host",
        default="127.0.0.1",
        dest="ops_host",
        help="bind address for --ops-port (default: loopback only)",
    )
    serve.add_argument(
        "--hold-seconds",
        type=float,
        default=None,
        dest="hold_seconds",
        metavar="SECONDS",
        help="after the workload, keep the service (and ops endpoints) up "
        "for this long before shutting down (Ctrl-C ends it early)",
    )
    serve.set_defaults(func=cmd_serve)

    events = sub.add_parser(
        "events", help="tail / filter a structured event log (JSONL)"
    )
    events.add_argument("--path", default=None, help="event log file path")
    events.add_argument(
        "--url",
        default=None,
        metavar="HOST:PORT",
        help="stream /events from a running server's ops plane instead of "
        "reading a local file",
    )
    events.add_argument(
        "--type",
        default=None,
        help="comma-separated event types to keep (e.g. slow_query,checkpoint)",
    )
    events.add_argument(
        "--tail", type=int, default=None, metavar="N", help="only the last N events"
    )
    events.add_argument(
        "--follow",
        action="store_true",
        help="keep polling for new events until interrupted",
    )
    events.add_argument(
        "--poll-interval",
        type=float,
        default=0.25,
        dest="poll_interval",
        help=argparse.SUPPRESS,
    )
    events.add_argument(
        "--json", action="store_true", help="print raw JSON records instead of columns"
    )
    events.set_defaults(func=cmd_events)

    update = sub.add_parser(
        "update", help="replay a live-update workload with continuous queries"
    )
    add_common(update)
    update.add_argument(
        "--queries",
        default="Q1",
        help="comma-separated continuous queries whose counts are maintained",
    )
    update.add_argument("--batches", type=int, default=10, help="number of update batches")
    update.add_argument(
        "--batch-size", type=int, default=100, dest="batch_size", help="edges per batch"
    )
    update.add_argument("--seed", type=int, default=0, help="RNG seed for generated edges")
    update.add_argument(
        "--background-compaction",
        action="store_true",
        dest="background_compaction",
        help="run delta-CSR compaction on a background thread instead of on writes",
    )
    update.add_argument(
        "--data-dir",
        default=None,
        dest="data_dir",
        help="write-ahead log every update batch into this store directory "
        "(recover it if it exists, else bootstrap from --dataset)",
    )
    update.set_defaults(func=cmd_update)

    checkpoint = sub.add_parser(
        "checkpoint", help="snapshot a durable store and truncate its write-ahead log"
    )
    checkpoint.add_argument("--data-dir", required=True, dest="data_dir")
    checkpoint.add_argument(
        "--force",
        action="store_true",
        help="rewrite the snapshot even when the WAL holds no new records",
    )
    checkpoint.set_defaults(func=cmd_checkpoint)

    recover = sub.add_parser(
        "recover",
        help="open a durable store, report the recovery (replayed records, "
        "truncated torn bytes), and verify checksums",
    )
    recover.add_argument("--data-dir", required=True, dest="data_dir")
    recover.add_argument(
        "--checkpoint",
        action="store_true",
        help="fold the replayed WAL tail into a fresh snapshot before exiting",
    )
    recover.set_defaults(func=cmd_recover)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
