"""Durable graph storage: binary snapshots, a write-ahead log, recovery.

The subsystem makes the serving stack crash-safe:

- :mod:`repro.persistence.snapshot_file` — a versioned, checksummed binary
  format for immutable CSR bases, written atomically (temp file + rename)
  and loadable fully or zero-copy via ``np.memmap``;
- :mod:`repro.persistence.wal` — an append-only, CRC-framed, fsync-batched
  write-ahead log of update batches with torn-tail truncation on open;
- :mod:`repro.persistence.store` — :class:`DurableGraphStore`, which logs
  every update before its in-memory commit, turns compactions into
  checkpoints that truncate the WAL, and recovers on open by loading the
  newest valid snapshot and replaying the WAL tail.

Wiring into the serving stack lives in :meth:`repro.api.GraphflowDB.open`,
:meth:`repro.api.GraphflowDB.enable_durability`, and
``QueryService(data_dir=...)``; file formats and the recovery protocol are
documented in ``docs/persistence.md``.
"""

from repro.persistence.snapshot_file import (
    SnapshotInfo,
    read_snapshot,
    read_snapshot_info,
    write_snapshot,
)
from repro.persistence.store import DurableGraphStore, RecoveryReport
from repro.persistence.wal import UpdateRecord, WriteAheadLog

__all__ = [
    "DurableGraphStore",
    "RecoveryReport",
    "SnapshotInfo",
    "UpdateRecord",
    "WriteAheadLog",
    "read_snapshot",
    "read_snapshot_info",
    "write_snapshot",
]
