"""Versioned binary snapshot files for immutable CSR graph bases.

A snapshot file stores the four defining arrays of a
:class:`~repro.graph.graph.Graph` (``vertex_labels``, ``edge_src``,
``edge_dst``, ``edge_labels``) plus the write-ahead-log sequence number the
snapshot covers.  The layout is::

    magic (8 bytes)  "GFSNAP1\\0"
    header length (uint32, little endian)
    header CRC32 (uint32, over the raw header bytes)
    header (JSON, utf-8): format_version, graph name, num_vertices,
        num_edges, last_seq, and one manifest entry per array with
        name / dtype / shape / offset / nbytes / crc32
    zero padding to a 64-byte boundary
    raw array blocks, each starting on a 64-byte boundary

Array offsets in the manifest are absolute file offsets, so a reader can
either read the blocks into memory or map them zero-copy with
:func:`numpy.memmap` — the adjacency partitions the :class:`Graph`
constructor builds are derived structures, but the four base arrays stay
memory-mapped (useful for many processes sharing one immutable base).

Writes are atomic: the file is written and fsynced under a temporary name in
the destination directory and then renamed over the final path (the directory
is fsynced too), so a crash mid-checkpoint can never leave a half-written
snapshot under a valid name.  Readers validate the magic, the header CRC and
(unless explicitly skipped, e.g. for zero-copy opens) every array CRC, so a
torn or bit-flipped file is rejected rather than served.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SnapshotFormatError
from repro.graph.graph import Graph

MAGIC = b"GFSNAP1\0"
FORMAT_VERSION = 1
_ALIGN = 64
_LEN_STRUCT = struct.Struct("<II")  # header length, header crc32

#: The arrays that define a Graph, in on-disk order.
ARRAY_NAMES = ("vertex_labels", "edge_src", "edge_dst", "edge_labels")


@dataclass(frozen=True)
class SnapshotInfo:
    """Metadata of one snapshot file (the parsed header)."""

    path: str
    format_version: int
    name: str
    num_vertices: int
    num_edges: int
    last_seq: int
    arrays: Tuple[dict, ...]

    @property
    def file_bytes(self) -> int:
        last = max(self.arrays, key=lambda a: a["offset"])
        return int(last["offset"] + last["nbytes"])


def _pad_to(handle, align: int) -> None:
    pos = handle.tell()
    remainder = pos % align
    if remainder:
        handle.write(b"\0" * (align - remainder))


def _fsync_directory(directory: str) -> None:
    """Durably record a rename/creation in ``directory`` (POSIX); best-effort
    on platforms whose directories cannot be opened."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX fallback
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_snapshot(graph: Graph, path: str, last_seq: int = 0) -> SnapshotInfo:
    """Write ``graph`` to ``path`` atomically and return the header metadata.

    ``last_seq`` records the WAL sequence number whose effects are contained
    in this snapshot; recovery replays only records with greater sequence
    numbers.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    arrays: Dict[str, np.ndarray] = {
        "vertex_labels": np.ascontiguousarray(graph.vertex_labels, dtype=np.int64),
        "edge_src": np.ascontiguousarray(graph.edge_src, dtype=np.int64),
        "edge_dst": np.ascontiguousarray(graph.edge_dst, dtype=np.int64),
        "edge_labels": np.ascontiguousarray(graph.edge_labels, dtype=np.int64),
    }

    # Compute the manifest with offsets laid out after the (not yet known
    # precisely) header.  The header length depends on the offsets, so lay
    # out with a fixed-point iteration: offsets are multiples of _ALIGN, and
    # growing the header by a few digits cannot shrink it, so two passes
    # always converge.
    manifest: List[dict] = []
    header_bytes = b""
    data_start = 0
    for _ in range(4):
        offset = data_start
        manifest = []
        for name in ARRAY_NAMES:
            arr = arrays[name]
            offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
            manifest.append(
                {
                    "name": name,
                    "dtype": str(arr.dtype),
                    "shape": list(arr.shape),
                    "offset": offset,
                    "nbytes": int(arr.nbytes),
                    # crc32 accepts the buffer protocol: no bytes copy.
                    "crc32": zlib.crc32(arr) & 0xFFFFFFFF,
                }
            )
            offset += arr.nbytes
        header = {
            "format_version": FORMAT_VERSION,
            "name": graph.name,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "last_seq": int(last_seq),
            "arrays": manifest,
        }
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        new_start = len(MAGIC) + _LEN_STRUCT.size + len(header_bytes)
        new_start = (new_start + _ALIGN - 1) // _ALIGN * _ALIGN
        if new_start == data_start:
            break
        data_start = new_start
    else:  # pragma: no cover - the layout converges in two passes
        raise SnapshotFormatError("snapshot header layout did not converge")

    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".tmp.", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(MAGIC)
            handle.write(
                _LEN_STRUCT.pack(len(header_bytes), zlib.crc32(header_bytes) & 0xFFFFFFFF)
            )
            handle.write(header_bytes)
            for entry in manifest:
                _pad_to(handle, _ALIGN)
                assert handle.tell() == entry["offset"]
                # write() takes the array's buffer directly: no bytes copy.
                handle.write(arrays[entry["name"]])
            handle.flush()
            os.fsync(handle.fileno())
        os.rename(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    _fsync_directory(directory)
    return SnapshotInfo(
        path=path,
        format_version=FORMAT_VERSION,
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        last_seq=int(last_seq),
        arrays=tuple(manifest),
    )


def read_snapshot_info(path: str) -> SnapshotInfo:
    """Parse and validate the header of a snapshot file (cheap: no array
    data is read)."""
    with open(path, "rb") as handle:
        magic = handle.read(len(MAGIC))
        if magic != MAGIC:
            raise SnapshotFormatError(f"{path}: bad magic {magic!r}")
        prefix = handle.read(_LEN_STRUCT.size)
        if len(prefix) < _LEN_STRUCT.size:
            raise SnapshotFormatError(f"{path}: truncated header length")
        header_len, header_crc = _LEN_STRUCT.unpack(prefix)
        header_bytes = handle.read(header_len)
    if len(header_bytes) < header_len:
        raise SnapshotFormatError(f"{path}: truncated header")
    if zlib.crc32(header_bytes) & 0xFFFFFFFF != header_crc:
        raise SnapshotFormatError(f"{path}: header checksum mismatch")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except ValueError as exc:
        raise SnapshotFormatError(f"{path}: unparsable header: {exc}") from exc
    if header.get("format_version") != FORMAT_VERSION:
        raise SnapshotFormatError(
            f"{path}: unsupported format version {header.get('format_version')!r}"
        )
    expected = set(ARRAY_NAMES)
    present = {entry["name"] for entry in header.get("arrays", ())}
    if present != expected:
        raise SnapshotFormatError(f"{path}: manifest arrays {present} != {expected}")
    return SnapshotInfo(
        path=path,
        format_version=int(header["format_version"]),
        name=str(header["name"]),
        num_vertices=int(header["num_vertices"]),
        num_edges=int(header["num_edges"]),
        last_seq=int(header["last_seq"]),
        arrays=tuple(header["arrays"]),
    )


def _load_array(path: str, entry: dict, mmap: bool, verify: bool) -> np.ndarray:
    dtype = np.dtype(entry["dtype"])
    shape = tuple(entry["shape"])
    count = int(np.prod(shape)) if shape else 1
    if int(entry["nbytes"]) != count * dtype.itemsize:
        raise SnapshotFormatError(f"{path}: manifest nbytes mismatch for {entry['name']}")
    if mmap:
        if count:
            arr = np.memmap(path, dtype=dtype, mode="r", offset=int(entry["offset"]), shape=shape)
        else:
            arr = np.array([], dtype=dtype)
    else:
        with open(path, "rb") as handle:
            handle.seek(int(entry["offset"]))
            raw = handle.read(int(entry["nbytes"]))
        if len(raw) != int(entry["nbytes"]):
            raise SnapshotFormatError(f"{path}: truncated array block {entry['name']}")
        arr = np.frombuffer(raw, dtype=dtype).reshape(shape)
    if verify and (zlib.crc32(arr) & 0xFFFFFFFF) != int(entry["crc32"]):
        raise SnapshotFormatError(f"{path}: checksum mismatch in array {entry['name']}")
    return arr


def read_snapshot(
    path: str, mmap: bool = False, verify: Optional[bool] = None
) -> Tuple[Graph, SnapshotInfo]:
    """Load a snapshot file into a :class:`Graph`.

    With ``mmap=True`` the base arrays are read-only ``np.memmap`` views —
    zero-copy for the stored columns (derived adjacency partitions are still
    built in memory).  ``verify`` controls the per-array CRC check; it
    defaults to True for full reads and False for memory-mapped opens (where
    eagerly touching every page would defeat the point — pass ``verify=True``
    to force it, e.g. from ``repro.cli recover --verify``).
    """
    info = read_snapshot_info(path)
    if verify is None:
        verify = not mmap
    columns = {
        entry["name"]: _load_array(path, entry, mmap=mmap, verify=verify)
        for entry in info.arrays
    }
    lengths = {len(columns["edge_src"]), len(columns["edge_dst"]), len(columns["edge_labels"])}
    if lengths != {info.num_edges} or len(columns["vertex_labels"]) != info.num_vertices:
        raise SnapshotFormatError(f"{path}: array lengths disagree with header counts")
    graph = Graph(
        vertex_labels=columns["vertex_labels"],
        edge_src=columns["edge_src"],
        edge_dst=columns["edge_dst"],
        edge_labels=columns["edge_labels"],
        name=info.name,
    )
    return graph, info


__all__ = [
    "ARRAY_NAMES",
    "FORMAT_VERSION",
    "MAGIC",
    "SnapshotInfo",
    "read_snapshot",
    "read_snapshot_info",
    "write_snapshot",
]
