"""Append-only, CRC-framed write-ahead log for graph update batches.

The log is a directory of segment files named ``wal-<base_seq>.log`` where
``base_seq`` is the sequence number of the last record *preceding* the
segment (the first record in segment ``wal-000...042.log`` has sequence 43).
Each segment starts with a fixed header::

    magic (8 bytes)  "GFWAL01\\0"
    base_seq (uint64, little endian)

followed by records framed as::

    crc32 (uint32)   over the rest of the frame (length, seq, payload)
    length (uint32)  payload byte count
    seq (uint64)     strictly increasing across segments
    payload          an encoded update batch (see UpdateRecord)

Durability is fsync-batched (group commit): every append flushes Python's
buffer to the OS — so an in-process crash loses nothing — but ``fsync``
(power-loss durability) is issued only every ``sync_every`` records, on
:meth:`sync`, on rotation and on close.  ``sync_every=1`` gives
record-at-a-time durability at the cost of one fsync per batch.

On open the log replays its frames and **truncates the torn tail**: the first
frame whose header is incomplete, whose length runs past the end of the
file, whose CRC does not match, or whose sequence number breaks monotonicity
marks the end of the durable prefix — the file is truncated at that record
boundary and any later segments are discarded.  Recovery therefore always
yields exactly the longest prefix of records that were fully written.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from dataclasses import dataclass
from typing import IO, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.registry import Histogram

from repro.errors import PersistenceError, WALCorruptionError
from repro.persistence.snapshot_file import _fsync_directory

SEGMENT_MAGIC = b"GFWAL01\0"
_SEGMENT_HEADER = struct.Struct("<Q")  # base_seq
_FRAME = struct.Struct("<IIQ")  # crc32, payload length, seq
_RECORD_COUNTS = struct.Struct("<III")  # n_inserts, n_deletes, n_vertex_labels
#: Upper bound on one payload (64 MiB) — a length field beyond this is treated
#: as tail corruption rather than attempting a giant allocation.
MAX_PAYLOAD_BYTES = 64 * 1024 * 1024

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".log"


def segment_name(base_seq: int) -> str:
    return f"{SEGMENT_PREFIX}{base_seq:016d}{SEGMENT_SUFFIX}"


@dataclass(frozen=True)
class UpdateRecord:
    """One logged update batch: the WAL's only record type.

    ``inserts`` / ``deletes`` are ``(src, dst, label)`` triples;
    ``new_vertex_labels`` appends one vertex per entry.  Replaying a record
    through :class:`~repro.storage.dynamic.DynamicGraph` is idempotent for
    edges already present / absent, so logging the *requested* batch before
    the in-memory commit is safe.
    """

    seq: int
    inserts: Tuple[Tuple[int, int, int], ...] = ()
    deletes: Tuple[Tuple[int, int, int], ...] = ()
    new_vertex_labels: Tuple[int, ...] = ()

    @property
    def num_edges(self) -> int:
        return len(self.inserts) + len(self.deletes)

    def encode(self) -> bytes:
        return encode_batch(self.inserts, self.deletes, self.new_vertex_labels)

    @classmethod
    def decode(cls, seq: int, payload: bytes) -> "UpdateRecord":
        if len(payload) < _RECORD_COUNTS.size:
            raise WALCorruptionError("update record payload too short")
        n_ins, n_del, n_lab = _RECORD_COUNTS.unpack_from(payload)
        expected = _RECORD_COUNTS.size + 8 * (3 * n_ins + 3 * n_del + n_lab)
        if len(payload) != expected:
            raise WALCorruptionError(
                f"update record payload length {len(payload)} != expected {expected}"
            )
        offset = _RECORD_COUNTS.size
        ins = np.frombuffer(payload, dtype=np.int64, count=3 * n_ins, offset=offset)
        offset += 8 * 3 * n_ins
        dels = np.frombuffer(payload, dtype=np.int64, count=3 * n_del, offset=offset)
        offset += 8 * 3 * n_del
        labels = np.frombuffer(payload, dtype=np.int64, count=n_lab, offset=offset)
        return cls(
            seq=seq,
            inserts=tuple(map(tuple, ins.reshape(-1, 3).tolist())),
            deletes=tuple(map(tuple, dels.reshape(-1, 3).tolist())),
            new_vertex_labels=tuple(labels.tolist()),
        )


def encode_batch(
    inserts: Sequence[Tuple[int, int, int]],
    deletes: Sequence[Tuple[int, int, int]],
    new_vertex_labels: Sequence[int],
) -> bytes:
    """Encode one update batch as a record payload.

    Goes straight through ``np.asarray`` (which validates the ``(n, 3)``
    shape and integer dtype), so the hot append path never runs a per-edge
    Python loop.
    """
    ins = np.asarray(inserts, dtype=np.int64).reshape(-1, 3)
    dels = np.asarray(deletes, dtype=np.int64).reshape(-1, 3)
    labels = np.asarray(new_vertex_labels, dtype=np.int64)
    return b"".join(
        (
            _RECORD_COUNTS.pack(len(ins), len(dels), len(labels)),
            ins.tobytes(),
            dels.tobytes(),
            labels.tobytes(),
        )
    )


def _list_segments(directory: str) -> List[Tuple[int, str]]:
    """``(base_seq, path)`` pairs of the segment files in ``directory``,
    sorted by base sequence."""
    segments = []
    for entry in os.listdir(directory):
        if not (entry.startswith(SEGMENT_PREFIX) and entry.endswith(SEGMENT_SUFFIX)):
            continue
        stem = entry[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
        try:
            base_seq = int(stem)
        except ValueError:
            continue
        segments.append((base_seq, os.path.join(directory, entry)))
    segments.sort()
    return segments


def _scan_segment(path: str, expected_base: Optional[int]) -> Tuple[int, List[UpdateRecord], int]:
    """Validate one segment; returns ``(base_seq, records, durable_size)``.

    ``durable_size`` is the byte offset of the end of the last valid frame —
    the truncation point when the tail is torn.  Raises
    :class:`WALCorruptionError` only for an unusable segment *header* (which
    recovery treats as end-of-log).
    """
    size = os.path.getsize(path)
    with open(path, "rb") as handle:
        header = handle.read(len(SEGMENT_MAGIC) + _SEGMENT_HEADER.size)
        if len(header) < len(SEGMENT_MAGIC) + _SEGMENT_HEADER.size:
            raise WALCorruptionError(f"{path}: truncated segment header")
        if header[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
            raise WALCorruptionError(f"{path}: bad segment magic")
        (base_seq,) = _SEGMENT_HEADER.unpack_from(header, len(SEGMENT_MAGIC))
        if expected_base is not None and base_seq != expected_base:
            raise WALCorruptionError(
                f"{path}: segment base {base_seq} does not match file name {expected_base}"
            )
        records: List[UpdateRecord] = []
        durable = handle.tell()
        prev_seq = base_seq
        while True:
            frame_start = handle.tell()
            head = handle.read(_FRAME.size)
            if len(head) < _FRAME.size:
                break  # clean EOF or torn frame header
            crc, length, seq = _FRAME.unpack(head)
            if length > MAX_PAYLOAD_BYTES or frame_start + _FRAME.size + length > size:
                break  # absurd length or payload runs past EOF: torn tail
            payload = handle.read(length)
            if len(payload) < length:
                break
            body = head[4:] + payload  # everything the CRC covers
            if zlib.crc32(body) & 0xFFFFFFFF != crc:
                break
            if seq != prev_seq + 1:
                break  # sequence discontinuity: treat as corruption tail
            try:
                records.append(UpdateRecord.decode(seq, payload))
            except WALCorruptionError:
                break
            prev_seq = seq
            durable = handle.tell()
    return base_seq, records, durable


class WriteAheadLog:
    """The append/replay/rotate front end over a directory of segments.

    Parameters
    ----------
    directory:
        Where the segment files live (created if missing).
    sync_every:
        Group-commit width: fsync after every N appended records.  1 gives
        per-record durability; larger values trade a bounded number of
        recent records (never more than ``sync_every - 1``) against fsync
        cost under sustained write load.
    read_only:
        Open the log as a *reader*: :meth:`open` scans the durable prefix
        with **no** filesystem mutations (no torn-tail truncation, no
        segment unlinks, no active segment creation), so a live writer's
        files are never touched; :meth:`append`, :meth:`rotate`,
        :meth:`force_base` and :meth:`prune` raise
        :class:`~repro.errors.PersistenceError`.  Readers recover exactly
        the records a writer's recovery would, they just leave the repairs
        to the writer.
    """

    def __init__(self, directory: str, sync_every: int = 8, read_only: bool = False) -> None:
        if sync_every < 1:
            raise ValueError("sync_every must be at least 1")
        self.directory = os.path.abspath(directory)
        self.sync_every = sync_every
        self.read_only = read_only
        os.makedirs(self.directory, exist_ok=True)
        self._handle: Optional[IO[bytes]] = None
        self._active_path: Optional[str] = None
        self._last_seq = 0
        self._unsynced = 0
        self.appended_records = 0
        self.truncated_bytes = 0
        self.dropped_segments = 0
        # Private latency histograms (frame write+flush, group-commit fsync);
        # the database's metrics registry surfaces them through a collector.
        self.append_seconds = Histogram()
        self.fsync_seconds = Histogram()

    # ------------------------------------------------------------------ #
    # opening / recovery
    # ------------------------------------------------------------------ #
    def open(self, min_seq: int = 0) -> List[UpdateRecord]:
        """Scan the directory, truncate any torn tail, and return the durable
        records with ``seq > min_seq`` in order.

        After this call the log is positioned for appending: the last valid
        segment becomes the active one (a fresh segment is created when the
        directory is empty).  Records at or below ``min_seq`` (already
        covered by a snapshot) are skipped but not deleted.

        In ``read_only`` mode the scan is side-effect free: torn tails and
        unusable segments end the durable prefix but are left on disk
        untouched (they still count in ``truncated_bytes`` /
        ``dropped_segments``), and no append handle or segment is created.
        """
        self.close()
        records: List[UpdateRecord] = []
        segments = _list_segments(self.directory)
        valid: List[Tuple[int, str, int]] = []  # (base_seq, path, durable_size)
        prev_seq: Optional[int] = None
        end_of_log = False
        for base_seq, path in segments:
            if end_of_log:
                # Everything after a corruption point is not part of the
                # durable prefix; drop it so a later rotation cannot
                # resurrect stale records.
                self._drop_segment(path)
                continue
            try:
                seg_base, seg_records, durable = _scan_segment(path, expected_base=base_seq)
            except WALCorruptionError:
                self._drop_segment(path)
                end_of_log = True
                continue
            if prev_seq is None and seg_base > min_seq:
                # The log starts *after* the snapshot's coverage: records in
                # (min_seq, seg_base] are simply missing, so nothing from
                # this point on can be replayed safely.
                self._drop_segment(path)
                end_of_log = True
                continue
            if prev_seq is not None and seg_base != prev_seq:
                # A gap or overlap between segments.  A *forward* gap whose
                # skipped records are all covered by the snapshot
                # (``seg_base <= min_seq``) is legitimate — it is what
                # ``force_base`` leaves behind when a sealed tail was lost
                # after a checkpoint already made it redundant.  Anything
                # else means the durable prefix ends here.
                if seg_base < prev_seq or seg_base > min_seq:
                    self._drop_segment(path)
                    end_of_log = True
                    continue
            size = os.path.getsize(path)
            if durable < size:
                if not self.read_only:
                    with open(path, "r+b") as handle:
                        handle.truncate(durable)
                        handle.flush()
                        os.fsync(handle.fileno())
                self.truncated_bytes += size - durable
                end_of_log = True
            valid.append((seg_base, path, durable))
            records.extend(seg_records)
            prev_seq = seg_records[-1].seq if seg_records else seg_base
        if self.read_only:
            if valid:
                self._last_seq = prev_seq if prev_seq is not None else valid[-1][0]
            else:
                self._last_seq = min_seq
        elif valid:
            base_seq, path, _ = valid[-1]
            self._active_path = path
            self._handle = open(path, "ab")
            self._last_seq = prev_seq if prev_seq is not None else base_seq
        else:
            self._last_seq = min_seq
            self._start_segment(min_seq)
        return [r for r in records if r.seq > min_seq]

    def _drop_segment(self, path: str) -> None:
        """Discard a segment past the durable prefix (count-only when
        read-only: a reader must not repair a live writer's files)."""
        if not self.read_only:
            os.unlink(path)
        self.dropped_segments += 1

    def _start_segment(self, base_seq: int) -> None:
        path = os.path.join(self.directory, segment_name(base_seq))
        handle = open(path, "wb")
        handle.write(SEGMENT_MAGIC)
        handle.write(_SEGMENT_HEADER.pack(base_seq))
        handle.flush()
        os.fsync(handle.fileno())
        _fsync_directory(self.directory)
        self._handle = handle
        self._active_path = path

    # ------------------------------------------------------------------ #
    # appending
    # ------------------------------------------------------------------ #
    @property
    def last_seq(self) -> int:
        return self._last_seq

    @property
    def active_segment(self) -> Optional[str]:
        return self._active_path

    def size_bytes(self) -> int:
        """Total bytes across all segment files currently on disk."""
        return sum(os.path.getsize(path) for _, path in _list_segments(self.directory))

    def num_segments(self) -> int:
        """Segment files currently on disk (active + not-yet-pruned)."""
        return len(_list_segments(self.directory))

    def active_bytes(self) -> int:
        """Bytes in the active segment alone — the number that grows with
        every append until the next rotation, unlike :meth:`size_bytes`,
        which also counts retained-but-sealed history."""
        path = self._active_path
        if path is None:
            return 0
        try:
            return os.path.getsize(path)
        except OSError:
            return 0

    def append(
        self,
        inserts: Sequence[Tuple[int, int, int]] = (),
        deletes: Sequence[Tuple[int, int, int]] = (),
        new_vertex_labels: Sequence[int] = (),
    ) -> int:
        """Frame and append one update batch; returns its sequence number.

        The record is flushed to the OS before returning (fsync per the
        group-commit policy), and the append raises — leaving the in-memory
        state untouched — if the log is closed or the write fails.
        """
        self._check_writable()
        if self._handle is None:
            raise WALCorruptionError("write-ahead log is not open")
        append_start = time.perf_counter()
        seq = self._last_seq + 1
        payload = encode_batch(inserts, deletes, new_vertex_labels)
        body = _FRAME.pack(0, len(payload), seq)[4:] + payload
        crc = zlib.crc32(body) & 0xFFFFFFFF
        durable_end = self._handle.tell()
        try:
            self._handle.write(struct.pack("<I", crc) + body)
            self._handle.flush()
        except OSError:
            # A partial frame (e.g. ENOSPC mid-write) must not stay in the
            # file: a later successful append would land *after* the torn
            # bytes and be silently discarded by recovery's torn-tail
            # truncation even though it was acknowledged.  Rewind to the
            # last durable record boundary before re-raising.
            try:
                self._handle.truncate(durable_end)
                self._handle.seek(durable_end)
            except OSError:  # pragma: no cover - rewind itself failed
                # The file state is unknown; refuse all further appends.
                self._handle.close()
                self._handle = None
                self._active_path = None
            raise
        self._last_seq = seq
        self.appended_records += 1
        self._unsynced += 1
        self.append_seconds.observe(time.perf_counter() - append_start)
        if self._unsynced >= self.sync_every:
            self.sync()
        return seq

    def sync(self) -> None:
        """Force fsync of the active segment (group-commit barrier)."""
        if self._handle is not None and self._unsynced:
            sync_start = time.perf_counter()
            os.fsync(self._handle.fileno())
            self._unsynced = 0
            self.fsync_seconds.observe(time.perf_counter() - sync_start)

    def force_base(self, base_seq: int) -> None:
        """Restart the log in a fresh segment based at ``base_seq``.

        Used by recovery when the log's durable tail ends *before* the
        newest snapshot's sequence (the lost records are covered by the
        snapshot): new appends must continue from ``base_seq``, not from the
        stale tail.  Only ever moves the sequence forward.
        """
        self._check_writable()
        if base_seq < self._last_seq:
            raise ValueError(
                f"force_base({base_seq}) would move the log backwards "
                f"(last_seq={self._last_seq})"
            )
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._unsynced = 0
        self._start_segment(base_seq)
        self._last_seq = base_seq

    # ------------------------------------------------------------------ #
    # checkpoint support
    # ------------------------------------------------------------------ #
    def rotate(self) -> int:
        """Seal the active segment and start a new one at the current
        sequence; returns the sealed-through sequence number.

        Called with the store's commit lock held, so no append can interleave
        between sealing and the new segment's creation.
        """
        self._check_writable()
        sealed_seq = self._last_seq
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._unsynced = 0
        self._start_segment(sealed_seq)
        return sealed_seq

    def prune(self, upto_seq: int) -> int:
        """Delete sealed segments whose records are all ``<= upto_seq``;
        returns the number of files removed.

        A segment is removable when the *next* segment's base sequence (the
        last record of this one) is at most ``upto_seq``.  The active segment
        is never removed.
        """
        self._check_writable()
        removed = 0
        segments = _list_segments(self.directory)
        for (base_seq, path), (next_base, _) in zip(segments, segments[1:]):
            if path != self._active_path and next_base <= upto_seq:
                os.unlink(path)
                removed += 1
        if removed:
            _fsync_directory(self.directory)
        return removed

    def _check_writable(self) -> None:
        if self.read_only:
            raise PersistenceError("write-ahead log is open read-only")

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None
            self._active_path = None
            self._unsynced = 0

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog(dir={self.directory!r}, last_seq={self._last_seq}, "
            f"sync_every={self.sync_every})"
        )


def iter_records(directory: str) -> Iterator[UpdateRecord]:
    """Read-only scan of the durable records in a WAL directory (no
    truncation side effects; stops at the first invalid frame)."""
    prev_seq: Optional[int] = None
    for base_seq, path in _list_segments(directory):
        try:
            seg_base, records, durable = _scan_segment(path, expected_base=base_seq)
        except WALCorruptionError:
            return
        if prev_seq is not None and seg_base != prev_seq:
            return
        for record in records:
            yield record
        prev_seq = records[-1].seq if records else seg_base
        if durable < os.path.getsize(path):
            return


__all__ = [
    "MAX_PAYLOAD_BYTES",
    "SEGMENT_MAGIC",
    "UpdateRecord",
    "WriteAheadLog",
    "encode_batch",
    "iter_records",
    "segment_name",
]
