"""The durability front end: snapshots + WAL behind one recoverable store.

A :class:`DurableGraphStore` owns a data directory::

    <data_dir>/
        snapshots/snapshot-<seq>.gfs   versioned binary CSR snapshots
        wal/wal-<base_seq>.log         CRC-framed update log segments

and a live :class:`~repro.storage.dynamic.DynamicGraph`.  The contract is
write-ahead logging in the textbook sense: every update batch is appended
(and flushed) to the WAL *before* the in-memory delta commit, both under one
commit lock, so the durable log is always a superset of the applied state and
the sequence number captured by a checkpoint always describes exactly the
graph state it snapshots.

Recovery (:meth:`open` on an existing directory) is

1. load the newest snapshot whose checksums validate (falling back to older
   ones, so a torn checkpoint degrades to a longer replay, never to data
   loss),
2. open the WAL, truncating any torn tail, and
3. replay the records with ``seq > snapshot.last_seq`` through a fresh
   ``DynamicGraph`` — replay reuses the exact write path of live updates, so
   a recovered store is byte-for-byte logically identical to one that never
   restarted.

Checkpoints (:meth:`checkpoint`) capture a consistent ``(state, seq)`` pair
under the commit lock (pinning an O(1) MVCC snapshot and sealing the active
WAL segment), then do the heavy work — materializing the CSR and writing the
snapshot file — without blocking writers, and finally prune WAL segments and
old snapshot files that the new snapshot covers.  The natural trigger is a
:class:`~repro.storage.compaction.CompactionManager` install (the base was
just rebuilt anyway, so the snapshot write is pure I/O); wiring that up is
:meth:`repro.api.GraphflowDB.enable_background_compaction`'s job.
"""

from __future__ import annotations

import os
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import PersistenceError, SnapshotFormatError
from repro.obs.registry import Histogram
from repro.graph.graph import Graph
from repro.persistence.snapshot_file import (
    SnapshotInfo,
    read_snapshot,
    write_snapshot,
)
from repro.persistence.wal import UpdateRecord, WriteAheadLog
from repro.storage.dynamic import DynamicGraph

T = TypeVar("T")

SNAPSHOT_DIR = "snapshots"
WAL_DIR = "wal"
LOCK_FILE = "LOCK"
_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{16})\.gfs$")


def _acquire_lock(data_dir: str) -> str:
    """Take the store's single-writer pid lock (``<data_dir>/LOCK``).

    Two live processes opening the same store would truncate each other's
    WAL tails and race the snapshot directory, so open() refuses when the
    lock is held by another *running* process.  A lock left by a dead
    process (crash) or by this same process (in-process crash simulation /
    abandoned handle) is reclaimed.
    """
    path = os.path.join(data_dir, LOCK_FILE)
    for _ in range(2):
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                with open(path) as handle:
                    holder = int(handle.read().strip() or "0")
            except (OSError, ValueError):
                holder = 0
            if holder and holder != os.getpid():
                try:
                    os.kill(holder, 0)  # signal 0: existence check only
                except ProcessLookupError:
                    pass  # holder is dead: stale lock, reclaim below
                except OSError:
                    # EPERM and friends: the process exists but is not ours
                    # to signal — very much alive, do not reclaim.
                    raise PersistenceError(
                        f"{data_dir}: store is locked by running process {holder}; "
                        "two processes must not open the same data directory"
                    )
                else:
                    raise PersistenceError(
                        f"{data_dir}: store is locked by running process {holder}; "
                        "two processes must not open the same data directory"
                    )
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - lost a reclaim race
                pass
            continue
        with os.fdopen(fd, "w") as handle:
            handle.write(str(os.getpid()))
        return path
    raise PersistenceError(f"{data_dir}: could not acquire store lock")  # pragma: no cover


def _release_lock(path: Optional[str]) -> None:
    if path:
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - already gone
            pass


def snapshot_filename(seq: int) -> str:
    return f"snapshot-{seq:016d}.gfs"


def store_exists(data_dir: str) -> bool:
    """True when ``data_dir`` holds store state (any snapshot or WAL
    segment, readable or not) — the test callers should use to decide
    between recovering and bootstrapping, instead of catching open errors."""
    snap_dir = os.path.join(data_dir, SNAPSHOT_DIR)
    wal_dir = os.path.join(data_dir, WAL_DIR)
    if os.path.isdir(snap_dir) and any(
        _SNAPSHOT_RE.match(name) for name in os.listdir(snap_dir)
    ):
        return True
    return os.path.isdir(wal_dir) and any(
        name.startswith("wal-") for name in os.listdir(wal_dir)
    )


def _list_snapshots(directory: str) -> List[Tuple[int, str]]:
    """``(seq, path)`` pairs sorted newest-first."""
    found = []
    for entry in os.listdir(directory):
        match = _SNAPSHOT_RE.match(entry)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, entry)))
    found.sort(reverse=True)
    return found


@dataclass
class RecoveryReport:
    """What :meth:`DurableGraphStore.open` did to bring the store up."""

    bootstrapped: bool
    snapshot_path: Optional[str]
    snapshot_seq: int
    replayed_records: int
    replayed_edges: int
    truncated_bytes: int
    dropped_segments: int
    skipped_snapshots: List[str] = field(default_factory=list)
    seconds: float = 0.0

    def describe(self) -> str:
        if self.bootstrapped:
            return f"bootstrapped new store (initial snapshot seq {self.snapshot_seq})"
        source = os.path.basename(self.snapshot_path) if self.snapshot_path else "<none>"
        parts = [
            f"recovered from {source} (seq {self.snapshot_seq})",
            f"replayed {self.replayed_records} WAL record(s) / {self.replayed_edges} edge(s)",
        ]
        if self.truncated_bytes:
            parts.append(f"truncated {self.truncated_bytes} torn byte(s)")
        if self.dropped_segments:
            parts.append(f"dropped {self.dropped_segments} unusable segment(s)")
        if self.skipped_snapshots:
            parts.append(f"skipped {len(self.skipped_snapshots)} corrupt snapshot(s)")
        return ", ".join(parts) + f" in {self.seconds:.3f}s"


class DurableGraphStore:
    """Crash-safe storage for one dynamic graph (snapshot + WAL + recovery).

    Construct through :meth:`open`; the plain constructor wires already-built
    parts together and is what :meth:`open` itself uses.
    """

    def __init__(
        self,
        data_dir: str,
        dynamic: DynamicGraph,
        wal: WriteAheadLog,
        snapshot_seq: int,
        recovery: RecoveryReport,
        keep_snapshots: int = 2,
        read_only: bool = False,
    ) -> None:
        if keep_snapshots < 1:
            raise ValueError("keep_snapshots must be at least 1")
        self.data_dir = os.path.abspath(data_dir)
        self.dynamic = dynamic
        self.wal = wal
        self.snapshot_seq = snapshot_seq
        self.recovery = recovery
        self.keep_snapshots = keep_snapshots
        self.read_only = read_only
        self.checkpoints = 0
        self.last_checkpoint_seconds = 0.0
        self.total_checkpoint_seconds = 0.0
        # Checkpoint-duration histogram (standalone; surfaced via stats()
        # quantiles and the database registry's persistence collector).
        self.checkpoint_seconds = Histogram()
        # Checkpoint-age clock for the seconds_since_last_checkpoint gauge;
        # recovery/bootstrap counts as the epoch (the recovered snapshot is
        # as fresh as a checkpoint written now would be).
        self._last_checkpoint_monotonic = time.monotonic()
        # A reader's WAL tail may legitimately end before the snapshot (a
        # writer's force_base case); never report a sequence below it.
        self._last_applied_seq = max(wal.last_seq, snapshot_seq)
        # Serialises (WAL append, in-memory commit) pairs and checkpoint
        # captures; the heavy checkpoint I/O runs outside it.
        self._commit_lock = threading.RLock()
        # One checkpoint at a time (capture is cheap, the file write is not).
        self._checkpoint_lock = threading.Lock()
        self._closed = False
        # Single-writer pid lock (set by open(); None for hand-wired stores).
        self._lock_path: Optional[str] = None
        # Optional structured-event callback with the signature of
        # Observability.emit_event(type, **fields); the database wires it
        # when it attaches the store.  Must never raise.
        self.event_sink = None

    # ------------------------------------------------------------------ #
    # opening / recovery
    # ------------------------------------------------------------------ #
    @classmethod
    def open(
        cls,
        data_dir: str,
        graph: Optional[Graph] = None,
        sync_every: int = 8,
        mmap: bool = False,
        keep_snapshots: int = 2,
        read_only: bool = False,
    ) -> "DurableGraphStore":
        """Open (recovering) or bootstrap (initial snapshot) a store.

        An existing store in ``data_dir`` is always recovered — a ``graph``
        argument is then ignored in favour of the durable state.  An empty or
        missing directory requires ``graph`` to bootstrap from.  With
        ``mmap=True`` the recovered base arrays are zero-copy
        ``np.memmap`` views of the snapshot file.

        ``read_only=True`` opens the store as a *reader*: the pid ``LOCK`` is
        neither checked nor taken (a live writer can keep running), recovery
        is entirely side-effect free (the reader replays the durable WAL
        prefix without truncating torn tails or dropping segments), and every
        write entry point — :meth:`log_and_apply`, :meth:`checkpoint` —
        raises :class:`~repro.errors.PersistenceError`.  Readers require an
        existing store; bootstrapping is a writer's job.
        """
        start = time.perf_counter()
        data_dir = os.path.abspath(data_dir)
        snap_dir = os.path.join(data_dir, SNAPSHOT_DIR)
        wal_dir = os.path.join(data_dir, WAL_DIR)
        if read_only:
            if not store_exists(data_dir):
                raise PersistenceError(
                    f"{data_dir}: no store to open read-only (readers never bootstrap)"
                )
            return cls._open_locked(
                data_dir, None, sync_every, mmap, keep_snapshots, None, start,
                read_only=True,
            )
        os.makedirs(snap_dir, exist_ok=True)
        os.makedirs(wal_dir, exist_ok=True)
        lock_path = _acquire_lock(data_dir)
        try:
            return cls._open_locked(
                data_dir, graph, sync_every, mmap, keep_snapshots, lock_path, start
            )
        except BaseException:
            _release_lock(lock_path)
            raise

    @classmethod
    def _open_locked(
        cls,
        data_dir: str,
        graph: Optional[Graph],
        sync_every: int,
        mmap: bool,
        keep_snapshots: int,
        lock_path: Optional[str],
        start: float,
        read_only: bool = False,
    ) -> "DurableGraphStore":
        snap_dir = os.path.join(data_dir, SNAPSHOT_DIR)
        wal_dir = os.path.join(data_dir, WAL_DIR)
        skipped: List[str] = []
        base: Optional[Graph] = None
        snapshot_seq = 0
        snapshot_path: Optional[str] = None
        for seq, path in _list_snapshots(snap_dir):
            try:
                base, info = read_snapshot(path, mmap=mmap)
            except (SnapshotFormatError, OSError):
                skipped.append(path)
                continue
            snapshot_seq = info.last_seq
            snapshot_path = path
            break

        bootstrapped = False
        if base is None:
            existing_wal = any(
                name.startswith("wal-") for name in os.listdir(wal_dir)
            )
            if graph is None:
                if existing_wal or skipped:
                    raise PersistenceError(
                        f"{data_dir}: no readable snapshot "
                        f"({len(skipped)} corrupt, WAL present: {existing_wal}); "
                        "cannot recover without a valid snapshot"
                    )
                raise PersistenceError(
                    f"{data_dir}: empty store and no bootstrap graph given"
                )
            if existing_wal or skipped:
                raise PersistenceError(
                    f"{data_dir}: store remnants exist but no readable snapshot "
                    f"({len(skipped)} corrupt snapshot(s), WAL present: "
                    f"{existing_wal}); refusing to bootstrap over a partially "
                    "lost store"
                )
            if isinstance(graph, DynamicGraph):
                graph = graph.snapshot(materialize=True)
            write_snapshot(graph, os.path.join(snap_dir, snapshot_filename(0)), last_seq=0)
            base = graph
            bootstrapped = True
            snapshot_path = os.path.join(snap_dir, snapshot_filename(0))

        wal = WriteAheadLog(wal_dir, sync_every=sync_every, read_only=read_only)
        records = wal.open(min_seq=snapshot_seq)
        if not read_only and wal.last_seq < snapshot_seq:
            # The WAL tail covering the snapshot was lost (e.g. a crash ate
            # the sealed segment after the checkpoint landed); restart the
            # log at the snapshot's sequence so new appends stay monotonic.
            wal.force_base(snapshot_seq)

        dynamic = DynamicGraph(base)
        replayed_edges = 0
        for record in records:
            replayed_edges += _replay_record(dynamic, record)

        report = RecoveryReport(
            bootstrapped=bootstrapped,
            snapshot_path=snapshot_path,
            snapshot_seq=snapshot_seq,
            replayed_records=len(records),
            replayed_edges=replayed_edges,
            truncated_bytes=wal.truncated_bytes,
            dropped_segments=wal.dropped_segments,
            skipped_snapshots=skipped,
            seconds=time.perf_counter() - start,
        )
        store = cls(
            data_dir=data_dir,
            dynamic=dynamic,
            wal=wal,
            snapshot_seq=snapshot_seq,
            recovery=report,
            keep_snapshots=keep_snapshots,
            read_only=read_only,
        )
        store._lock_path = lock_path
        return store

    # ------------------------------------------------------------------ #
    # the write path
    # ------------------------------------------------------------------ #
    def log_and_apply(
        self,
        inserts: Sequence[Tuple[int, int, int]],
        deletes: Sequence[Tuple[int, int, int]],
        new_vertex_labels: Optional[Sequence[int]],
        apply_fn: Callable[[], T],
    ) -> Tuple[int, T]:
        """Durably log one update batch, then run its in-memory commit.

        The WAL append and ``apply_fn`` execute under the commit lock, so a
        concurrent checkpoint can never capture a sequence number whose
        record is not yet reflected in the graph.  If the append fails the
        in-memory state is untouched; if ``apply_fn`` fails the record stays
        in the log and will be applied by the next recovery (``apply_fn``
        must therefore be idempotent with respect to replay — the
        ``DynamicGraph`` write API is).
        """
        if self.read_only:
            raise PersistenceError("durable store is open read-only")
        with self._commit_lock:
            # Checked under the lock: close() flips the flag and closes the
            # WAL while holding it, so an in-flight updater can never append
            # to a closing log.
            if self._closed:
                raise PersistenceError("durable store is closed")
            seq = self.wal.append(
                inserts=inserts,
                deletes=deletes,
                new_vertex_labels=new_vertex_labels or (),
            )
            result = apply_fn()
            self._last_applied_seq = seq
            return seq, result

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest durably-logged-and-applied batch."""
        return self._last_applied_seq

    @property
    def dirty(self) -> bool:
        """True when the WAL holds records the newest snapshot does not."""
        return self._last_applied_seq > self.snapshot_seq

    def sync(self) -> None:
        """Force the group-commit fsync barrier (e.g. before reporting an
        update as durable to an external client)."""
        with self._commit_lock:
            self.wal.sync()

    # ------------------------------------------------------------------ #
    # checkpoints
    # ------------------------------------------------------------------ #
    def checkpoint(self, force: bool = False) -> Optional[SnapshotInfo]:
        """Write a snapshot covering every applied record and truncate the
        WAL behind it.  Returns the new snapshot's metadata, or ``None``
        when the store was already clean (unless ``force``).
        """
        if self._closed:
            raise PersistenceError("durable store is closed")
        if self.read_only:
            raise PersistenceError("durable store is open read-only")
        with self._checkpoint_lock:
            if not self.dirty and not force:
                return None
            start = time.perf_counter()
            with self._commit_lock:
                pinned = self.dynamic.snapshot()
                seq = self._last_applied_seq
                self.wal.rotate()
            # Heavy phase, concurrent with writers: materialize + write.
            # Right after a compaction install the pinned snapshot is clean
            # and the base Graph *is* the state — the common (listener) case
            # pays only the file write.
            graph = pinned.base if pinned.is_clean else pinned.materialize()
            path = os.path.join(self.data_dir, SNAPSHOT_DIR, snapshot_filename(seq))
            info = write_snapshot(graph, path, last_seq=seq)
            self.snapshot_seq = seq
            self._prune_snapshots()
            # Keep the WAL replayable from the *oldest retained* snapshot,
            # not just the newest: if the newest file is later found corrupt,
            # recovery falls back one snapshot and replays forward.
            retained = _list_snapshots(os.path.join(self.data_dir, SNAPSHOT_DIR))
            oldest_retained = min((s for s, _ in retained), default=seq)
            self.wal.prune(upto_seq=oldest_retained)
            elapsed = time.perf_counter() - start
            self.checkpoints += 1
            self.last_checkpoint_seconds = elapsed
            self.total_checkpoint_seconds += elapsed
            self.checkpoint_seconds.observe(elapsed)
            self._last_checkpoint_monotonic = time.monotonic()
            sink = self.event_sink
            if sink is not None:
                sink(
                    "checkpoint",
                    seq=seq,
                    path=info.path,
                    seconds=round(elapsed, 6),
                    forced=force,
                )
            return info

    def maybe_checkpoint(self) -> Optional[SnapshotInfo]:
        """Checkpoint only if there is anything to cover (the compaction
        listener's entry point; never raises into the compaction thread for
        an already-clean store)."""
        if not self.dirty or self._closed or self.read_only:
            return None
        return self.checkpoint()

    def current_snapshot_path(self) -> Optional[str]:
        """Path of the snapshot file covering ``snapshot_seq`` (the newest
        checkpoint), or ``None`` if the file is gone.  When the store is not
        :attr:`dirty`, this file's content equals the served graph's base —
        the shared, mmap-able artifact multi-process execution maps."""
        path = os.path.join(
            self.data_dir, SNAPSHOT_DIR, snapshot_filename(self.snapshot_seq)
        )
        return path if os.path.exists(path) else None

    def _prune_snapshots(self) -> None:
        snap_dir = os.path.join(self.data_dir, SNAPSHOT_DIR)
        for _, path in _list_snapshots(snap_dir)[self.keep_snapshots:]:
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - already gone
                pass

    # ------------------------------------------------------------------ #
    # lifecycle / observability
    # ------------------------------------------------------------------ #
    def close(self, checkpoint: bool = True) -> None:
        """Flush and close; with ``checkpoint`` (the default) the shutdown is
        graceful — restart will load the final snapshot and replay nothing."""
        if self._closed:
            return
        if checkpoint and self.dirty and not self.read_only:
            self.checkpoint()
        with self._commit_lock:
            self._closed = True
            self.wal.close()
        _release_lock(self._lock_path)
        self._lock_path = None

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> dict:
        return {
            "data_dir": self.data_dir,
            "read_only": self.read_only,
            "last_seq": self._last_applied_seq,
            "snapshot_seq": self.snapshot_seq,
            "wal_records_since_checkpoint": self._last_applied_seq - self.snapshot_seq,
            "wal_bytes": self.wal.size_bytes(),
            "wal_active_bytes": self.wal.active_bytes(),
            "wal_segments": self.wal.num_segments(),
            "seconds_since_last_checkpoint": time.monotonic()
            - self._last_checkpoint_monotonic,
            "checkpoints": self.checkpoints,
            "last_checkpoint_seconds": self.last_checkpoint_seconds,
            "total_checkpoint_seconds": self.total_checkpoint_seconds,
            "checkpoint_p99_seconds": self.checkpoint_seconds.quantile(0.99),
            "wal_appends": self.wal.appended_records,
            "wal_append_p50_seconds": self.wal.append_seconds.quantile(0.5),
            "wal_append_p99_seconds": self.wal.append_seconds.quantile(0.99),
            "wal_fsyncs": self.wal.fsync_seconds.count,
            "wal_fsync_p50_seconds": self.wal.fsync_seconds.quantile(0.5),
            "wal_fsync_p99_seconds": self.wal.fsync_seconds.quantile(0.99),
            "recovered_records": self.recovery.replayed_records,
            "recovery_seconds": self.recovery.seconds,
        }

    def __enter__(self) -> "DurableGraphStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DurableGraphStore(dir={self.data_dir!r}, last_seq={self._last_applied_seq}, "
            f"snapshot_seq={self.snapshot_seq}, checkpoints={self.checkpoints})"
        )


def _replay_record(dynamic: DynamicGraph, record: UpdateRecord) -> int:
    """Apply one WAL record through the live write path; returns the number
    of edge mutations that took effect."""
    applied = 0
    if record.new_vertex_labels:
        dynamic.add_vertices(labels=record.new_vertex_labels)
    if record.inserts:
        applied += len(dynamic.add_edges(record.inserts))
    if record.deletes:
        applied += len(dynamic.delete_edges(record.deletes))
    return applied


__all__ = [
    "DurableGraphStore",
    "RecoveryReport",
    "snapshot_filename",
    "store_exists",
]
