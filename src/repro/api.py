"""High-level API: the :class:`GraphflowDB` facade.

This is the entry point downstream users interact with: load or build a graph,
build the subgraph catalogue once, then plan and execute subgraph queries with
the cost-based optimizer, optionally with adaptive ordering selection or
parallel execution.

Example
-------
>>> from repro import GraphflowDB, queries, datasets
>>> db = GraphflowDB(datasets.load("amazon", scale=0.2))
>>> db.build_catalogue(h=3, z=200)
>>> result = db.execute(queries.triangle())
>>> result.num_matches >= 0
True
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple, Union

from repro.catalogue.catalogue import SubgraphCatalogue
from repro.catalogue.construction import build_catalogue
from repro.catalogue.estimation import estimate_cardinality
from repro.errors import OptimizerError
from repro.executor.adaptive import execute_adaptive
from repro.executor.operators import ExecutionConfig
from repro.executor.parallel import ParallelResult, execute_parallel
from repro.executor.pipeline import ExecutionResult, execute_plan
from repro.graph.graph import Graph
from repro.graph.schema import GraphSchema
from repro.planner.cost_model import CostModel
from repro.planner.dp_optimizer import DynamicProgrammingOptimizer
from repro.planner.full_enumeration import FullEnumerationOptimizer
from repro.planner.plan import Plan
from repro.query.cypher import looks_like_cypher, parse_cypher
from repro.query.isomorphism import isomorphism_mapping
from repro.query.parser import parse_query
from repro.query.query_graph import QueryGraph
from repro.server.plan_cache import PlanCache


@dataclass
class QueryResult:
    """User-facing result of a query execution."""

    query: QueryGraph
    plan: Plan
    num_matches: int
    elapsed_seconds: float
    i_cost: int
    intermediate_matches: int
    matches: Optional[List[dict]] = None
    truncated: bool = False
    deadline_exceeded: bool = False

    def __repr__(self) -> str:
        return (
            f"QueryResult(query={self.query.name!r}, matches={self.num_matches}, "
            f"elapsed={self.elapsed_seconds:.3f}s, plan={self.plan.plan_type})"
        )


class GraphflowDB:
    """A single-machine, in-memory graph database with the paper's optimizer."""

    def __init__(
        self,
        graph: Graph,
        catalogue: Optional[SubgraphCatalogue] = None,
        schema: Optional[GraphSchema] = None,
        plan_cache_capacity: int = 128,
    ) -> None:
        self.graph = graph
        self.catalogue = catalogue
        self.schema = schema
        self._cost_model: Optional[CostModel] = None
        # Plans are cached by canonical query form so repeated (possibly
        # vertex-renamed) queries skip the DP optimizer; pass 0 to disable.
        self.plan_cache: Optional[PlanCache] = (
            PlanCache(capacity=plan_cache_capacity) if plan_cache_capacity > 0 else None
        )
        # Number of times an optimizer actually ran (cache misses + uncached
        # planning); serving tests assert on this.
        self.planner_invocations = 0
        # Guards lazy catalogue/cost-model construction when concurrent
        # QueryService workers plan different query shapes on a cold database.
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # catalogue / cost model management
    # ------------------------------------------------------------------ #
    def build_catalogue(
        self,
        h: int = 3,
        z: int = 1000,
        seed: int = 0,
        queries: Optional[Sequence[QueryGraph]] = None,
    ) -> SubgraphCatalogue:
        """Build (or rebuild) the subgraph catalogue for the loaded graph.

        Entries are measured lazily as the optimizer needs them unless a set
        of queries to precompute for is given.
        """
        self.catalogue = build_catalogue(self.graph, h=h, z=z, seed=seed, queries=queries)
        self._cost_model = None
        # Cached plans were costed against the old catalogue; flush them.
        if self.plan_cache is not None:
            self.plan_cache.invalidate()
        return self.catalogue

    def set_graph(self, graph: Graph) -> None:
        """Replace the data graph, dropping the catalogue, cost model, and
        every cached plan (all were derived from the old graph)."""
        self.graph = graph
        self.catalogue = None
        self._cost_model = None
        if self.plan_cache is not None:
            self.plan_cache.invalidate()

    @property
    def cost_model(self) -> CostModel:
        if self._cost_model is None:
            with self._stats_lock:
                if self.catalogue is None:
                    self.build_catalogue(z=200)
                if self._cost_model is None:
                    self._cost_model = CostModel(self.graph, self.catalogue)
        return self._cost_model

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    def _as_query(self, query: Union[QueryGraph, str]) -> QueryGraph:
        if isinstance(query, QueryGraph):
            return query
        if looks_like_cypher(query):
            return parse_cypher(query, schema=self.schema)
        return parse_query(query)

    def plan(
        self,
        query: Union[QueryGraph, str],
        full_enumeration: bool = False,
        enable_binary_joins: bool = True,
        use_cache: bool = True,
    ) -> Plan:
        """Return the optimizer's plan, consulting the plan cache.

        Plans are cached by the query's canonical form plus the planner
        options, so isomorphic queries (same shape and labels under vertex
        renaming) share one optimizer invocation.  Pass ``use_cache=False``
        to force a fresh optimization without touching the cache.
        """
        query = self._as_query(query)
        if not use_cache or self.plan_cache is None:
            return self._plan_uncached(query, full_enumeration, enable_binary_joins)
        key = (query.canonical_key(), full_enumeration, enable_binary_joins)
        return self.plan_cache.get_or_compute(
            key, lambda: self._plan_uncached(query, full_enumeration, enable_binary_joins)
        )

    def _plan_uncached(
        self,
        query: QueryGraph,
        full_enumeration: bool = False,
        enable_binary_joins: bool = True,
    ) -> Plan:
        """Run the optimizer (always), bypassing the plan cache."""
        with self._stats_lock:
            self.planner_invocations += 1
        if full_enumeration:
            optimizer = FullEnumerationOptimizer(
                self.cost_model, enable_binary_joins=enable_binary_joins
            )
        else:
            optimizer = DynamicProgrammingOptimizer(
                self.cost_model, enable_binary_joins=enable_binary_joins
            )
        return optimizer.optimize(query)

    def explain(self, query: Union[QueryGraph, str]) -> str:
        """A human-readable description of the chosen plan with its costs."""
        query = self._as_query(query)
        plan = self.plan(query)
        breakdown = self.cost_model.cost_breakdown(plan)
        lines = [plan.describe(), "", "estimated cost per operator:"]
        for name, cost in breakdown.per_operator:
            lines.append(f"  {cost:>14.1f}  {name}")
        lines.append(f"  {'total':>14}: {breakdown.total:.1f}")
        lines.append(
            f"estimated cardinality: {estimate_cardinality(self.catalogue, query, self.graph):.1f}"
        )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: Union[QueryGraph, str, Plan],
        adaptive: bool = False,
        collect: bool = False,
        num_workers: int = 1,
        config: Optional[ExecutionConfig] = None,
        vectorized: Optional[bool] = None,
        batch_size: Optional[int] = None,
    ) -> QueryResult:
        """Plan (if needed) and execute a query.

        Parameters
        ----------
        adaptive:
            Re-pick query-vertex orderings per partial match at runtime
            (Section 6).  Not supported together with ``num_workers > 1``.
        collect:
            Materialise matches (as dictionaries keyed by query vertex name).
            Not supported together with ``num_workers > 1``.
        num_workers:
            When > 1, execute with the morsel-parallel executor.
        vectorized:
            When True, run the batch-at-a-time (columnar) engine instead of
            the tuple-at-a-time pipeline; composes with ``adaptive``
            (batched base matches), ``collect``, and ``num_workers > 1``
            (each morsel executes vectorized).  Overrides
            ``config.vectorized`` when given.
        batch_size:
            Rows per columnar frame in vectorized mode; overrides
            ``config.batch_size`` when given.
        """
        if vectorized is not None or batch_size is not None:
            overrides = {}
            if vectorized is not None:
                overrides["vectorized"] = vectorized
            if batch_size is not None:
                overrides["batch_size"] = batch_size
            config = replace(config or ExecutionConfig(), **overrides)
        if num_workers > 1 and (adaptive or collect):
            # Previously these flags were silently ignored in parallel mode;
            # fail loudly instead of returning something the caller did not
            # ask for.
            unsupported = [
                name for name, on in (("adaptive", adaptive), ("collect", collect)) if on
            ]
            raise ValueError(
                f"execute(num_workers={num_workers}) does not support "
                f"{' or '.join(unsupported)}; the morsel-parallel executor only "
                "counts matches with fixed plans. Run with num_workers=1 for "
                "adaptive ordering selection or match collection."
            )
        if isinstance(query, Plan):
            plan = query
            query_graph = plan.query
        else:
            query_graph = self._as_query(query)
            plan = self.plan(query_graph)

        if num_workers > 1:
            parallel: ParallelResult = execute_parallel(
                plan, self.graph, num_workers=num_workers, config=config
            )
            return QueryResult(
                query=query_graph,
                plan=plan,
                num_matches=parallel.num_matches,
                elapsed_seconds=parallel.elapsed_seconds,
                i_cost=parallel.profile.intersection_cost,
                intermediate_matches=parallel.profile.intermediate_matches,
                truncated=parallel.truncated,
                deadline_exceeded=parallel.deadline_exceeded,
            )
        if adaptive:
            result: ExecutionResult = execute_adaptive(
                plan, self.graph, catalogue=self.catalogue, config=config, collect=collect
            )
        else:
            result = execute_plan(plan, self.graph, config=config, collect=collect)
        matches: Optional[List[dict]] = None
        if collect:
            matches = result.matches_as_dicts()
            matches = self._translate_match_names(matches, plan.query, query_graph)
        return QueryResult(
            query=query_graph,
            plan=plan,
            num_matches=result.num_matches,
            elapsed_seconds=result.elapsed_seconds,
            i_cost=result.profile.intersection_cost,
            intermediate_matches=result.profile.intermediate_matches,
            matches=matches,
            truncated=result.truncated,
            deadline_exceeded=result.deadline_exceeded,
        )

    @staticmethod
    def _translate_match_names(
        matches: List[dict], plan_query: QueryGraph, query: QueryGraph
    ) -> List[dict]:
        """Rekey collected matches from the plan's vertex names to the
        caller's.

        A cache hit may return a plan built for an isomorphic query whose
        vertices were named differently; the match *sets* are identical, but
        the dictionaries must use the caller's names.
        """
        if plan_query is query or plan_query.structurally_equal(query):
            return matches
        mapping = isomorphism_mapping(plan_query, query)
        if mapping is None:  # not isomorphic — cannot happen for cached plans
            return matches
        return [{mapping[k]: v for k, v in match.items()} for match in matches]

    def count(self, query: Union[QueryGraph, str]) -> int:
        """Shorthand: number of matches of the query."""
        return self.execute(query).num_matches

    def estimate_cardinality(self, query: Union[QueryGraph, str]) -> float:
        """The catalogue's cardinality estimate for the query."""
        query = self._as_query(query)
        if self.catalogue is None:
            self.build_catalogue(z=200)
        return estimate_cardinality(self.catalogue, query, self.graph)
