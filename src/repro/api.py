"""High-level API: the :class:`GraphflowDB` facade.

This is the entry point downstream users interact with: load or build a graph,
build the subgraph catalogue once, then plan and execute subgraph queries with
the cost-based optimizer, optionally with adaptive ordering selection or
parallel execution.

Example
-------
>>> from repro import GraphflowDB, queries, datasets
>>> db = GraphflowDB(datasets.load("amazon", scale=0.2))
>>> db.build_catalogue(h=3, z=200)
>>> result = db.execute(queries.triangle())
>>> result.num_matches >= 0
True
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.catalogue.catalogue import SubgraphCatalogue
from repro.catalogue.construction import build_catalogue
from repro.catalogue.estimation import estimate_cardinality
from repro.errors import OptimizerError, PersistenceError, ProcessExecutionUnsupported
from repro.executor.adaptive import execute_adaptive
from repro.executor.multiprocess import MorselProcessPool
from repro.executor.operators import ExecutionConfig
from repro.executor.parallel import ParallelResult, execute_parallel
from repro.executor.pipeline import ExecutionResult, execute_plan
from repro.graph.graph import Graph
from repro.graph.schema import GraphSchema
from repro.obs import EventLog, Observability
from repro.obs.health import (
    HealthRegistry,
    checkpoint_lag_check,
    free_space_check,
    process_pool_check,
    recovery_check,
    thread_alive_check,
)
from repro.obs.trace import QueryTrace, operator_stats_from_profile
from repro.planner.cost_model import CostModel, annotate_operator_estimates, constants_for
from repro.planner.dp_optimizer import DynamicProgrammingOptimizer
from repro.planner.full_enumeration import FullEnumerationOptimizer
from repro.planner.plan import Plan
from repro.query.cypher import looks_like_cypher, parse_cypher
from repro.query.isomorphism import isomorphism_mapping
from repro.query.parser import parse_query
from repro.query.query_graph import QueryGraph
from repro.persistence.store import DurableGraphStore
from repro.server.plan_cache import PlanCache
from repro.storage.compaction import CompactionManager
from repro.storage.dynamic import DynamicGraph, normalize_edges
from repro.storage.snapshot import GraphSnapshot


@dataclass
class UpdateResult:
    """Outcome of one :meth:`GraphflowDB.apply_updates` batch."""

    inserted: List[Tuple[int, int, int]] = field(default_factory=list)
    deleted: List[Tuple[int, int, int]] = field(default_factory=list)
    new_vertices: List[int] = field(default_factory=list)
    version: int = 0
    elapsed_seconds: float = 0.0
    compacted: bool = False
    # Durability: the WAL sequence number of the logged batch (None when the
    # database has no durable store attached).
    wal_seq: Optional[int] = None

    @property
    def durable(self) -> bool:
        return self.wal_seq is not None

    @property
    def num_applied(self) -> int:
        return len(self.inserted) + len(self.deleted)

    def __repr__(self) -> str:
        return (
            f"UpdateResult(+{len(self.inserted)}/-{len(self.deleted)} edges, "
            f"+{len(self.new_vertices)} vertices, version={self.version})"
        )


@dataclass
class QueryResult:
    """User-facing result of a query execution."""

    query: QueryGraph
    plan: Plan
    num_matches: int
    elapsed_seconds: float
    i_cost: int
    intermediate_matches: int
    matches: Optional[List[dict]] = None
    truncated: bool = False
    deadline_exceeded: bool = False
    # The per-query observability record (spans, per-operator actual-vs-
    # estimated cardinalities); None when tracing is disabled.
    trace: Optional[QueryTrace] = None

    def __repr__(self) -> str:
        return (
            f"QueryResult(query={self.query.name!r}, matches={self.num_matches}, "
            f"elapsed={self.elapsed_seconds:.3f}s, plan={self.plan.plan_type})"
        )


class GraphflowDB:
    """A single-machine, in-memory graph database with the paper's optimizer."""

    def __init__(
        self,
        graph: Union[Graph, DynamicGraph],
        catalogue: Optional[SubgraphCatalogue] = None,
        schema: Optional[GraphSchema] = None,
        plan_cache_capacity: int = 128,
        obs: Optional[Observability] = None,
        event_log: Optional[Union[str, EventLog]] = None,
    ) -> None:
        self.graph = graph
        self.catalogue = catalogue
        self.schema = schema
        # One cost model per execution mode (iterator / vectorized constants).
        self._cost_models: dict = {}
        # Plans are cached by canonical query form so repeated (possibly
        # vertex-renamed) queries skip the DP optimizer; pass 0 to disable.
        self.plan_cache: Optional[PlanCache] = (
            PlanCache(capacity=plan_cache_capacity) if plan_cache_capacity > 0 else None
        )
        # Number of times an optimizer actually ran (cache misses + uncached
        # planning); serving tests assert on this.
        self.planner_invocations = 0
        # Guards lazy catalogue/cost-model construction when concurrent
        # QueryService workers plan different query shapes on a cold database.
        self._stats_lock = threading.Lock()
        # Serialises apply_updates callers (the DynamicGraph additionally has
        # its own write lock, but catalogue/cache maintenance must be atomic
        # with respect to other writers too).  Re-entrant: apply_updates
        # calls to_dynamic() which takes it as well.
        self._write_lock = threading.RLock()
        # Logical version of the served graph; bumped by apply_updates.
        self.graph_version = graph.version if isinstance(graph, DynamicGraph) else 0
        # Optional background compaction (enable_background_compaction).
        self.compaction_manager: Optional[CompactionManager] = None
        # Optional durability (GraphflowDB.open / enable_durability): when
        # attached, every apply_updates batch is WAL-logged before its
        # in-memory delta commit, and compactions checkpoint the WAL away.
        self.durable_store: Optional[DurableGraphStore] = None
        # Optional multi-process morsel executor (enable_process_pool /
        # execute(execution_mode="process")): worker processes mapping a
        # shared snapshot file read-only, for wall-clock parallel speedups.
        self._process_pool: Optional[MorselProcessPool] = None
        # Unified observability (metrics registry, trace ring, cardinality
        # feedback).  Collectors pull the ad-hoc stats surfaces lazily at
        # scrape time, so attaching them here costs nothing per query.
        self.obs = obs if obs is not None else Observability()
        # Structured event log (obs/events.py): a path (or EventLog) here
        # attaches the JSONL stream lifecycle events flow into — query
        # finishes, checkpoints, compactions, pool respawns, recovery.
        if event_log is not None:
            self.obs.attach_event_log(event_log)
        # Pluggable health checks (obs/health.py): subsystems register deep
        # checks as they attach (durable store, process pool, compaction
        # thread), the ops plane's /readyz runs them, and the "health"
        # collector exports the same verdicts as health_* gauges.
        self.health = HealthRegistry()
        self.health.register(
            "database",
            lambda: (True, f"graph version {self.graph_version}"),
        )
        registry = self.obs.registry
        registry.register_collector("health", self.health.collect)
        registry.register_collector("plan_cache", self._plan_cache_stats)
        registry.register_collector("compaction", self._compaction_stats)
        registry.register_collector("persistence", self._persistence_stats)
        registry.register_collector("process_pool", self._process_pool_stats)
        registry.register_collector(
            "db",
            lambda: {
                "graph_version": self.graph_version,
                "planner_invocations": self.planner_invocations,
                "catalogue_stale_fraction": self.catalogue_stale_fraction,
            },
        )

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def _plan_cache_stats(self) -> dict:
        return self.plan_cache.stats.as_dict() if self.plan_cache is not None else {}

    def _compaction_stats(self) -> dict:
        manager = self.compaction_manager
        return manager.stats() if manager is not None else {}

    def _persistence_stats(self) -> dict:
        store = self.durable_store
        return store.stats() if store is not None and not store.closed else {}

    def _process_pool_stats(self) -> dict:
        pool = self._process_pool
        return pool.stats() if pool is not None and not pool.closed else {}

    def stats(self) -> dict:
        """One dict across every stats surface of the database: planner and
        graph state, plan cache, compaction, persistence, trace ring, and
        cardinality feedback.  (A :class:`~repro.server.service.QueryService`
        layers request-level metrics on top of this.)"""
        return {
            "graph_version": self.graph_version,
            "planner_invocations": self.planner_invocations,
            "catalogue_stale_fraction": self.catalogue_stale_fraction,
            "plan_cache": self._plan_cache_stats(),
            "compaction": self._compaction_stats(),
            "persistence": self._persistence_stats(),
            "process_pool": self._process_pool_stats(),
            "observability": self.obs.stats(),
        }

    def _register_durability_health(self, store: DurableGraphStore) -> None:
        """Wire the durable store's readiness checks: recovery completed,
        the WAL volume has headroom, and the checkpoint lag is bounded.
        Re-registering (replace semantics) keeps the checks pointed at the
        live store across ``enable_durability`` after an earlier close."""
        self.health.register("recovery_complete", recovery_check(store))
        self.health.register("wal_free_space", free_space_check(store.data_dir))
        self.health.register("checkpoint_lag", checkpoint_lag_check(store))

    # ------------------------------------------------------------------ #
    # durability
    # ------------------------------------------------------------------ #
    @classmethod
    def open(
        cls,
        data_dir: str,
        graph: Optional[Union[Graph, DynamicGraph]] = None,
        sync_every: int = 8,
        mmap: bool = False,
        keep_snapshots: int = 2,
        read_only: bool = False,
        **db_kwargs,
    ) -> "GraphflowDB":
        """Open a durable database rooted at ``data_dir``.

        An existing store is recovered (newest valid snapshot + WAL-tail
        replay; ``graph`` is then ignored); an empty directory is
        bootstrapped from ``graph`` with an initial snapshot.  The returned
        database logs every :meth:`apply_updates` batch to the write-ahead
        log before committing it in memory; call :meth:`close` for a
        graceful shutdown (final checkpoint), or don't — recovery replays
        whatever the log durably holds.

        With ``read_only=True`` the database attaches as a *reader*: the pid
        ``LOCK`` is neither checked nor taken, so a reader can open a
        ``data_dir`` a live writer is serving (worker processes and read
        replicas do exactly this); recovery is side-effect free and sees the
        durable prefix as of open time; and every write entry point
        (:meth:`apply_updates`, :meth:`checkpoint`) raises
        :class:`~repro.errors.PersistenceError`.
        """
        store = DurableGraphStore.open(
            data_dir,
            graph=graph,
            sync_every=sync_every,
            mmap=mmap,
            keep_snapshots=keep_snapshots,
            read_only=read_only,
        )
        db = cls(store.dynamic, **db_kwargs)
        db.durable_store = store
        store.event_sink = db.obs.emit_event
        db._register_durability_health(store)
        report = store.recovery
        if report is not None:
            db.obs.emit_event(
                "recovery",
                bootstrapped=report.bootstrapped,
                snapshot_seq=report.snapshot_seq,
                replayed_records=report.replayed_records,
                replayed_edges=report.replayed_edges,
                truncated_bytes=report.truncated_bytes,
                seconds=round(report.seconds, 6),
            )
        return db

    @property
    def read_only(self) -> bool:
        """True for a reader attached with ``open(..., read_only=True)``."""
        store = self.durable_store
        return store is not None and store.read_only

    def enable_durability(
        self,
        data_dir: str,
        sync_every: int = 8,
        mmap: bool = False,
        keep_snapshots: int = 2,
    ) -> DurableGraphStore:
        """Attach durable storage to a running in-memory database.

        With no existing store under ``data_dir`` the current graph is
        bootstrapped (initial snapshot; catalogue and cached plans stay
        valid).  With an existing store the durable state *wins*: the served
        graph is replaced by the recovered one and derived planning state is
        dropped.  Idempotent once attached.  Must be called before
        :meth:`enable_background_compaction` — the durable store owns the
        dynamic graph the compaction manager needs to watch.
        """
        with self._write_lock:
            if self.durable_store is not None and not self.durable_store.closed:
                if os.path.abspath(data_dir) != self.durable_store.data_dir:
                    raise PersistenceError(
                        f"database is already durable at {self.durable_store.data_dir!r}; "
                        f"cannot re-attach to {data_dir!r}"
                    )
                return self.durable_store
            if self.compaction_manager is not None:
                raise PersistenceError(
                    "enable durability before background compaction: the "
                    "compaction manager is watching the pre-durability graph"
                )
            store = DurableGraphStore.open(
                data_dir,
                graph=self.graph,
                sync_every=sync_every,
                mmap=mmap,
                keep_snapshots=keep_snapshots,
            )
            if store.recovery.bootstrapped:
                # Same logical content as the graph we were serving; keep
                # catalogue / plan cache, just swap in the durable wrapper.
                self.graph = store.dynamic
                self.graph_version = store.dynamic.version
            else:
                self.set_graph(store.dynamic)
            self.durable_store = store
            store.event_sink = self.obs.emit_event
            self._register_durability_health(store)
            return store

    def checkpoint(self, force: bool = False):
        """Write a snapshot covering all applied updates and truncate the
        WAL (requires durability; see :meth:`enable_durability`)."""
        if self.durable_store is None:
            raise PersistenceError("no durable store attached; call enable_durability()")
        return self.durable_store.checkpoint(force=force)

    def close(self, checkpoint: bool = True) -> None:
        """Graceful shutdown: stop background compaction, shut down the
        process pool (if any) and, when durable, write a final checkpoint
        and close the store.  Idempotent; an in-memory database just stops
        its compaction thread."""
        self.disable_background_compaction()
        self.close_process_pool()
        with self._write_lock:
            store = self.durable_store
        if store is not None and not store.closed:
            store.close(checkpoint=checkpoint)

    # ------------------------------------------------------------------ #
    # multi-process execution
    # ------------------------------------------------------------------ #
    def enable_process_pool(self, num_workers: int = 2, **pool_kwargs) -> MorselProcessPool:
        """Attach (or resize) the multi-process morsel executor.

        The pool is created lazily by ``execute(execution_mode="process")``
        as well; calling this up front warms it explicitly (e.g. a serving
        process at startup).  A live pool with the same ``num_workers`` is
        reused; a different worker count (or fresh ``pool_kwargs``) shuts the
        old pool down and builds a new one.
        """
        with self._write_lock:
            pool = self._process_pool
            if (
                pool is not None
                and not pool.closed
                and pool.num_workers == num_workers
                and not pool_kwargs
            ):
                return pool
            if pool is not None and not pool.closed:
                pool.close()
            new_pool = MorselProcessPool(
                num_workers=num_workers, observability=self.obs, **pool_kwargs
            )
            if pool is not None:
                # Worker counters and generation keep accumulating across the
                # pool replacement, so worker_* exposition never resets.
                new_pool.carry_from(pool)
            self._process_pool = new_pool
            # Closed over the getter, not the pool object: a later resize
            # replaces the pool but the readiness probe keeps following it.
            self.health.register(
                "worker_pool", process_pool_check(lambda: self._process_pool)
            )
            return new_pool

    def close_process_pool(self) -> None:
        """Shut the process pool down (workers drain and exit); idempotent."""
        with self._write_lock:
            pool, self._process_pool = self._process_pool, None
        if pool is not None:
            pool.close()
        # An intentionally-absent pool is not a readiness failure.
        self.health.unregister("worker_pool")

    # ------------------------------------------------------------------ #
    # catalogue / cost model management
    # ------------------------------------------------------------------ #
    def build_catalogue(
        self,
        h: int = 3,
        z: int = 1000,
        seed: int = 0,
        queries: Optional[Sequence[QueryGraph]] = None,
    ) -> SubgraphCatalogue:
        """Build (or rebuild) the subgraph catalogue for the loaded graph.

        Entries are measured lazily as the optimizer needs them unless a set
        of queries to precompute for is given.
        """
        fresh = build_catalogue(self._read_graph(), h=h, z=z, seed=seed, queries=queries)
        with self._write_lock:
            # Epochs stay monotonic across rebuilds so a refresher's CAS token
            # captured before this rebuild can never match afterwards.
            if self.catalogue is not None:
                fresh.epoch = self.catalogue.epoch + 1
            self.catalogue = fresh
            self._cost_models = {}
            # Cached plans were costed against the old catalogue; flush them.
            if self.plan_cache is not None:
                self.plan_cache.invalidate()
        return self.catalogue

    def install_refreshed_catalogue(
        self,
        catalogue: SubgraphCatalogue,
        expected_epoch: int,
        expected_drift_edges: Optional[int] = None,
    ) -> bool:
        """Atomically swap in a catalogue re-sampled off the write path.

        Compare-and-swap semantics: the install succeeds only if the current
        catalogue still carries ``expected_epoch`` (no competing rebuild ran)
        and, when given, ``expected_drift_edges`` (no writes landed since the
        re-sample's snapshot was pinned).  On success the new catalogue's
        epoch is bumped and — under the same lock — the cost models and plan
        cache are flushed, so a query admitted during the install sees either
        the old plan with the old catalogue or a new plan costed against the
        new one, never a torn mix.
        """
        with self._write_lock:
            current = self.catalogue
            if current is None or current.epoch != expected_epoch:
                return False
            if (
                expected_drift_edges is not None
                and current.drift_edges != expected_drift_edges
            ):
                return False
            catalogue.epoch = expected_epoch + 1
            self.catalogue = catalogue
            self._cost_models = {}
            if self.plan_cache is not None:
                self.plan_cache.invalidate()
            return True

    def set_graph(self, graph: Union[Graph, DynamicGraph]) -> None:
        """Replace the data graph, dropping the catalogue, cost model, and
        every cached plan (all were derived from the old graph)."""
        if (
            self.durable_store is not None
            and not self.durable_store.closed
            and graph is not self.durable_store.dynamic
        ):
            raise PersistenceError(
                "cannot replace the graph of a durable database: the durable "
                "store owns the served graph (close() it first)"
            )
        self.graph = graph
        self.catalogue = None
        self._cost_models = {}
        self.graph_version = graph.version if isinstance(graph, DynamicGraph) else 0
        if self.plan_cache is not None:
            self.plan_cache.invalidate()

    def _read_graph(self, materialize: bool = False):
        """The graph object queries should read: a pinned MVCC snapshot for a
        :class:`DynamicGraph` (compacted to a flat CSR when ``materialize``),
        the graph itself otherwise.

        Both executors — including the vectorized batch engine, which reads
        the snapshot's lazily merged per-partition CSR views — run on dirty
        snapshots directly, so nothing on the query path passes
        ``materialize=True`` anymore; the parameter remains for explicit
        compact-and-export uses.
        """
        if isinstance(self.graph, DynamicGraph):
            return self.graph.snapshot(materialize=materialize)
        return self.graph

    # ------------------------------------------------------------------ #
    # live updates
    # ------------------------------------------------------------------ #
    def to_dynamic(self) -> DynamicGraph:
        """Ensure the served graph is a :class:`DynamicGraph` (wrapping the
        current immutable graph in place if needed) and return it."""
        with self._write_lock:
            if not isinstance(self.graph, DynamicGraph):
                self.graph = DynamicGraph(self.graph)
            return self.graph

    def apply_updates(
        self,
        inserts: Iterable[Tuple[int, ...]] = (),
        deletes: Iterable[Tuple[int, ...]] = (),
        new_vertex_labels: Optional[Sequence[int]] = None,
    ) -> UpdateResult:
        """Apply a batch of live updates to the served graph.

        Inserts/deletes are ``(src, dst[, label])`` tuples; already-present
        inserts and missing deletes are ignored.  ``new_vertex_labels`` adds
        one vertex per entry.  On any effective change the graph version is
        bumped, every cached plan is invalidated (statistics changed), and
        the catalogue's edge/label statistics are maintained incrementally —
        no full catalogue rebuild.  In-flight queries keep reading the
        snapshot they pinned at execution start.

        With a durable store attached (:meth:`open` / :meth:`enable_durability`)
        the batch is first normalised and appended to the write-ahead log —
        *then* committed in memory, under the store's commit lock — so a
        crash at any point loses at most the not-yet-fsynced group-commit
        tail, never an acknowledged-durable batch.  The result carries the
        batch's WAL sequence number in ``wal_seq``.
        """
        start = time.perf_counter()
        if self.read_only:
            raise PersistenceError(
                "database is open read-only; route writes to the writer process"
            )
        dynamic = self.to_dynamic()
        # Normalise up front: the WAL must only ever record batches the
        # in-memory write path would accept, so validation errors (self-loops,
        # negative ids, malformed tuples) surface before anything is logged.
        insert_batch = normalize_edges(inserts) if inserts else []
        delete_batch = normalize_edges(deletes) if deletes else []
        vertex_labels = list(new_vertex_labels) if new_vertex_labels else None
        with self._write_lock:
            compactions_before = dynamic.compactions

            def _commit():
                new_ids = dynamic.add_vertices(labels=vertex_labels) if vertex_labels else []
                inserted = (
                    dynamic.add_edges(insert_batch, _normalized=True) if insert_batch else []
                )
                deleted = (
                    dynamic.delete_edges(delete_batch, _normalized=True) if delete_batch else []
                )
                if inserted or deleted or new_ids:
                    self._note_writes_locked(inserted, deleted)
                return new_ids, inserted, deleted

            wal_seq: Optional[int] = None
            has_payload = bool(insert_batch or delete_batch or vertex_labels)
            commit_start = time.perf_counter()
            if has_payload and self.durable_store is not None and not self.durable_store.closed:
                wal_seq, (new_ids, inserted, deleted) = self.durable_store.log_and_apply(
                    insert_batch, delete_batch, vertex_labels, _commit
                )
            else:
                new_ids, inserted, deleted = _commit()
            commit_seconds = time.perf_counter() - commit_start
            result = UpdateResult(
                inserted=inserted,
                deleted=deleted,
                new_vertices=new_ids,
                version=dynamic.version,
                elapsed_seconds=time.perf_counter() - start,
                compacted=dynamic.compactions > compactions_before,
                wal_seq=wal_seq,
            )
            if self.obs.enabled:
                trace = QueryTrace(
                    query_name="apply_updates",
                    kind="update",
                    status="ok",
                    mode="update",
                    num_matches=result.num_applied,
                    total_seconds=result.elapsed_seconds,
                )
                trace.add_span(
                    "normalise", commit_start - start,
                    inserts=len(insert_batch), deletes=len(delete_batch),
                )
                span_name = "wal_append" if wal_seq is not None else "commit"
                trace.add_span(
                    span_name, commit_seconds,
                    wal_seq=wal_seq, version=result.version, compacted=result.compacted,
                )
                self.obs.record_update(trace)
            return result

    def enable_background_compaction(
        self,
        compact_ratio: Optional[float] = None,
        min_delta_edges: Optional[int] = None,
        poll_interval_seconds: float = 0.05,
        min_interval_seconds: Optional[float] = None,
    ) -> CompactionManager:
        """Move delta-CSR compaction off the write path.

        Ensures the served graph is dynamic, attaches a
        :class:`~repro.storage.compaction.CompactionManager`, and starts its
        thread: :meth:`apply_updates` then returns as soon as the delta is
        appended, and the CSR rebuild runs in the background with an atomic
        epoch-checked base swap.  Compaction changes no logical content, so
        cached plans, the catalogue, and pinned snapshots all stay valid.
        Idempotent; returns the (running) manager.  When a manager already
        exists, any thresholds passed here are applied to it, so later
        callers (e.g. a :class:`QueryService` constructed with tuning knobs)
        are never silently ignored.  ``min_interval_seconds`` paces the
        manager: threshold-triggered compactions are skipped until that much
        time has passed since the previous install, so sustained write load
        cannot thrash the CSR rebuild.

        With a durable store attached, every installed compaction also
        triggers a checkpoint: the freshly rebuilt base is written as a
        snapshot file and the write-ahead log is truncated behind it, all on
        the compaction thread.
        """
        dynamic = self.to_dynamic()
        with self._write_lock:
            manager = self.compaction_manager
            if manager is None:
                manager = CompactionManager(
                    dynamic,
                    compact_ratio=compact_ratio,
                    min_delta_edges=min_delta_edges,
                    poll_interval_seconds=poll_interval_seconds,
                    min_interval_seconds=min_interval_seconds or 0.0,
                )
                manager.event_sink = self.obs.emit_event
                self.compaction_manager = manager
            else:
                if compact_ratio is not None:
                    manager.compact_ratio = compact_ratio
                if min_delta_edges is not None:
                    manager.min_delta_edges = min_delta_edges
                if min_interval_seconds is not None:
                    manager.min_interval_seconds = min_interval_seconds
            if self.durable_store is not None and not self.durable_store.closed:
                store = self.durable_store
                manager.set_compaction_listener(lambda: store.maybe_checkpoint())
            started = manager.start()
            self.health.register(
                "compaction_thread",
                thread_alive_check(
                    lambda: self.compaction_manager is not None
                    and self.compaction_manager.running,
                    description="background compaction manager",
                ),
            )
            return started

    def disable_background_compaction(self, wait: bool = True) -> None:
        """Stop and detach the background compaction manager (restoring the
        dynamic graph's synchronous threshold compaction)."""
        with self._write_lock:
            manager, self.compaction_manager = self.compaction_manager, None
        if manager is not None:
            manager.stop(wait=wait)
        # Compaction deliberately off is healthy; only a dead thread that
        # should be running is a readiness failure.
        self.health.unregister("compaction_thread")

    def note_external_writes(
        self,
        inserted: Sequence[Tuple[int, int, int]] = (),
        deleted: Sequence[Tuple[int, int, int]] = (),
    ) -> None:
        """Refresh planning state after writes applied directly to the shared
        :class:`DynamicGraph` (e.g. through a
        :class:`~repro.continuous.engine.ContinuousQueryEngine`).

        ``inserted`` / ``deleted`` must be exactly the effectively-applied
        ``(src, dst, label)`` triples, so the catalogue statistics stay
        exact.
        """
        with self._write_lock:
            self._note_writes_locked(list(inserted), list(deleted))

    def _note_writes_locked(
        self,
        inserted: Sequence[Tuple[int, int, int]],
        deleted: Sequence[Tuple[int, int, int]],
    ) -> None:
        graph = self.graph
        if self.catalogue is not None and (inserted or deleted):
            self.catalogue.apply_edge_delta(inserted, deleted, graph.vertex_labels)
        # Cost models cache cardinalities derived from the old statistics.
        self._cost_models = {}
        if self.plan_cache is not None:
            self.plan_cache.invalidate()
        self.graph_version = (
            graph.version if isinstance(graph, DynamicGraph) else self.graph_version + 1
        )

    @property
    def catalogue_stale_fraction(self) -> float:
        """Drift of the catalogue's sampled ``mu`` / ``|A|`` entries since
        construction (0.0 when fresh or when no catalogue is built yet); see
        :attr:`SubgraphCatalogue.stale_fraction`."""
        return self.catalogue.stale_fraction if self.catalogue is not None else 0.0

    @property
    def cost_model(self) -> CostModel:
        return self.cost_model_for(vectorized=False)

    def cost_model_for(self, vectorized: bool) -> CostModel:
        """The per-execution-mode cost model (batch-aware constants when
        ``vectorized``), built lazily against the current statistics."""
        key = "vectorized" if vectorized else "iterator"
        model = self._cost_models.get(key)
        if model is None:
            if self.catalogue is None:
                # Built outside _stats_lock: build_catalogue swaps state under
                # the write lock, and holding _stats_lock across that would
                # invert the lock order of callers that plan while holding the
                # write lock.  A racing double-build is benign (last wins).
                self.build_catalogue(z=200)
            with self._stats_lock:
                model = self._cost_models.get(key)
                if model is None:
                    model = CostModel(
                        self._read_graph(), self.catalogue, constants=constants_for(vectorized)
                    )
                    self._cost_models[key] = model
        return model

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    def _as_query(self, query: Union[QueryGraph, str]) -> QueryGraph:
        if isinstance(query, QueryGraph):
            return query
        if looks_like_cypher(query):
            return parse_cypher(query, schema=self.schema)
        return parse_query(query)

    def plan(
        self,
        query: Union[QueryGraph, str],
        full_enumeration: bool = False,
        enable_binary_joins: bool = True,
        use_cache: bool = True,
        vectorized: bool = False,
    ) -> Plan:
        """Return the optimizer's plan, consulting the plan cache.

        Plans are cached by the query's canonical form plus the planner
        options, so isomorphic queries (same shape and labels under vertex
        renaming) share one optimizer invocation.  Pass ``use_cache=False``
        to force a fresh optimization without touching the cache.  With
        ``vectorized=True`` the plan is priced with the batch engine's
        per-batch cost constants (and cached under a separate key).
        """
        query = self._as_query(query)
        if not use_cache or self.plan_cache is None:
            return self._plan_uncached(query, full_enumeration, enable_binary_joins, vectorized)
        key = (query.canonical_key(), full_enumeration, enable_binary_joins, vectorized)
        return self.plan_cache.get_or_compute(
            key,
            lambda: self._plan_uncached(query, full_enumeration, enable_binary_joins, vectorized),
        )

    def _plan_uncached(
        self,
        query: QueryGraph,
        full_enumeration: bool = False,
        enable_binary_joins: bool = True,
        vectorized: bool = False,
    ) -> Plan:
        """Run the optimizer (always), bypassing the plan cache."""
        with self._stats_lock:
            self.planner_invocations += 1
        cost_model = self.cost_model_for(vectorized)
        if full_enumeration:
            optimizer = FullEnumerationOptimizer(
                cost_model, enable_binary_joins=enable_binary_joins
            )
        else:
            optimizer = DynamicProgrammingOptimizer(
                cost_model, enable_binary_joins=enable_binary_joins
            )
        plan = optimizer.optimize(query)
        # Stamp per-operator cardinality estimates onto the plan so every
        # later execution (including plan-cache hits) can report q-errors.
        plan = annotate_operator_estimates(plan, cost_model)
        # Record which catalogue installation the estimates came from; the
        # refresher's install CAS plus plan-cache invalidation guarantee a
        # served plan's epoch always matches the live catalogue's.
        plan.catalogue_epoch = cost_model.catalogue.epoch
        return plan

    def explain(self, query: Union[QueryGraph, str]) -> str:
        """A human-readable description of the chosen plan with its costs."""
        query = self._as_query(query)
        plan = self.plan(query)
        breakdown = self.cost_model.cost_breakdown(plan)
        lines = [plan.describe(), "", "estimated cost per operator:"]
        for name, cost in breakdown.per_operator:
            lines.append(f"  {cost:>14.1f}  {name}")
        lines.append(f"  {'total':>14}: {breakdown.total:.1f}")
        lines.append(
            f"estimated cardinality: {estimate_cardinality(self.catalogue, query, self._read_graph()):.1f}"
        )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: Union[QueryGraph, str, Plan],
        adaptive: bool = False,
        collect: bool = False,
        num_workers: int = 1,
        config: Optional[ExecutionConfig] = None,
        vectorized: Optional[bool] = None,
        batch_size: Optional[int] = None,
        execution_mode: Optional[str] = None,
    ) -> QueryResult:
        """Plan (if needed) and execute a query.

        Parameters
        ----------
        adaptive:
            Re-pick query-vertex orderings per partial match at runtime
            (Section 6).  Not supported together with ``num_workers > 1``.
        collect:
            Materialise matches (as dictionaries keyed by query vertex name).
            With ``num_workers > 1`` the per-morsel frames are merged in
            range order under ``config.output_limit`` (the iterator engine
            then reproduces the serial row order exactly; the vectorized
            engine may group rows differently, as it already does serially).
        num_workers:
            When > 1, execute with the morsel-parallel executor.
        vectorized:
            When True, run the batch-at-a-time (columnar) engine instead of
            the tuple-at-a-time pipeline; composes with ``adaptive``
            (batched base matches), ``collect``, and ``num_workers > 1``
            (each morsel executes vectorized).  Overrides
            ``config.vectorized`` when given.
        batch_size:
            Rows per columnar frame in vectorized mode; overrides
            ``config.batch_size`` when given.
        execution_mode:
            ``"thread"`` (default) or ``"process"`` — how ``num_workers > 1``
            distributes morsels.  Process mode runs them across the
            :class:`~repro.executor.multiprocess.MorselProcessPool` (worker
            processes mapping a shared snapshot file read-only, escaping the
            GIL); an unshippable query — no scan leaf, triangle-index config,
            or a dirty snapshot whose delta exceeds the pool's shipping
            threshold — falls back to thread execution for that query.
            Overrides ``config.execution_mode`` when given; ignored when
            ``num_workers <= 1``.
        """
        if vectorized is not None or batch_size is not None:
            overrides = {}
            if vectorized is not None:
                overrides["vectorized"] = vectorized
            if batch_size is not None:
                overrides["batch_size"] = batch_size
            config = replace(config or ExecutionConfig(), **overrides)
        if execution_mode is None:
            execution_mode = config.execution_mode if config is not None else "thread"
        if execution_mode not in ("thread", "process"):
            raise ValueError(
                f"unknown execution_mode {execution_mode!r}; "
                "expected 'thread' or 'process'"
            )
        if num_workers > 1 and adaptive:
            # Adaptive ordering re-plans per partial match; morsel workers
            # share one fixed plan, so the combination stays rejected.
            raise ValueError(
                f"execute(num_workers={num_workers}) does not support adaptive; "
                "the morsel-parallel executors run fixed plans. Run with "
                "num_workers=1 for adaptive ordering selection."
            )
        effective_vectorized = bool(config.vectorized) if config is not None else False
        tracing = self.obs.enabled
        if isinstance(query, Plan):
            plan = query
            query_graph = plan.query
            plan_seconds = 0.0
            plan_cached: Optional[bool] = None
            feedback_key: Optional[tuple] = ("plan", plan.signature()) if tracing else None
        else:
            query_graph = self._as_query(query)
            # Cache-hit detection is best-effort: under concurrent planning
            # another thread's optimizer run can shift the counter.
            invocations_before = self.planner_invocations
            plan_start = time.perf_counter()
            plan = self.plan(query_graph, vectorized=effective_vectorized)
            plan_seconds = time.perf_counter() - plan_start
            plan_cached = self.planner_invocations == invocations_before
            feedback_key = (
                (query_graph.canonical_key(), False, True, effective_vectorized)
                if tracing
                else None
            )

        # Queries over a DynamicGraph read a pinned MVCC snapshot, so
        # concurrent writers cannot change the matches mid-execution.  The
        # vectorized engine runs on the snapshot directly: its columnar CSR
        # gathers read lazily merged per-partition views, so a dirty graph
        # never forces a synchronous compaction onto the query path.
        exec_graph = self._read_graph()

        if num_workers > 1:
            if execution_mode == "process":
                parallel, effective_mode = self._execute_process(
                    plan, exec_graph, num_workers, config, collect
                )
            else:
                parallel = execute_parallel(
                    plan, exec_graph, num_workers=num_workers, config=config,
                    collect=collect,
                )
                effective_mode = "parallel"
            matches = None
            if collect:
                matches = parallel.matches_as_dicts()
                matches = self._translate_match_names(matches, plan.query, query_graph)
            trace = (
                self._record_query_trace(
                    query_graph,
                    plan,
                    mode=effective_mode,
                    num_matches=parallel.num_matches,
                    elapsed_seconds=parallel.elapsed_seconds,
                    profile=parallel.profile,
                    plan_seconds=plan_seconds,
                    plan_cached=plan_cached,
                    truncated=parallel.truncated,
                    deadline_exceeded=parallel.deadline_exceeded,
                    feedback_key=feedback_key,
                    num_workers=num_workers,
                    morsel_records=parallel.morsel_records,
                )
                if tracing
                else None
            )
            return QueryResult(
                query=query_graph,
                plan=plan,
                num_matches=parallel.num_matches,
                elapsed_seconds=parallel.elapsed_seconds,
                i_cost=parallel.profile.intersection_cost,
                intermediate_matches=parallel.profile.intermediate_matches,
                matches=matches,
                truncated=parallel.truncated,
                deadline_exceeded=parallel.deadline_exceeded,
                trace=trace,
            )
        if adaptive:
            result: ExecutionResult = execute_adaptive(
                plan, exec_graph, catalogue=self.catalogue, config=config, collect=collect
            )
        else:
            result = execute_plan(plan, exec_graph, config=config, collect=collect)
        matches: Optional[List[dict]] = None
        if collect:
            matches = result.matches_as_dicts()
            matches = self._translate_match_names(matches, plan.query, query_graph)
        if tracing:
            mode = (
                "adaptive"
                if adaptive
                else ("vectorized" if effective_vectorized else "iterator")
            )
            trace = self._record_query_trace(
                query_graph,
                plan,
                mode=mode,
                num_matches=result.num_matches,
                elapsed_seconds=result.elapsed_seconds,
                profile=result.profile,
                plan_seconds=plan_seconds,
                plan_cached=plan_cached,
                truncated=result.truncated,
                deadline_exceeded=result.deadline_exceeded,
                feedback_key=feedback_key,
            )
        else:
            trace = None
        return QueryResult(
            query=query_graph,
            plan=plan,
            num_matches=result.num_matches,
            elapsed_seconds=result.elapsed_seconds,
            i_cost=result.profile.intersection_cost,
            intermediate_matches=result.profile.intermediate_matches,
            matches=matches,
            truncated=result.truncated,
            deadline_exceeded=result.deadline_exceeded,
            trace=trace,
        )

    def _execute_process(
        self,
        plan: Plan,
        exec_graph,
        num_workers: int,
        config: Optional[ExecutionConfig],
        collect: bool,
    ) -> Tuple[ParallelResult, str]:
        """Run one query on the process pool, falling back to the in-process
        thread executor when the query cannot be shipped (no scan leaf,
        unshippable config, oversized dirty delta); fallbacks are counted in
        the pool's stats."""
        pool = self.enable_process_pool(num_workers)
        base_path = self._process_base_path(exec_graph)
        try:
            result = pool.execute(
                plan, exec_graph, config=config, collect=collect, base_path=base_path
            )
            return result, "parallel-process"
        except ProcessExecutionUnsupported as exc:
            pool.note_fallback(str(exc))
            result = execute_parallel(
                plan, exec_graph, num_workers=num_workers, config=config, collect=collect
            )
            return result, "parallel"

    def _process_base_path(self, exec_graph) -> Optional[str]:
        """The durable store's current snapshot file when it provably equals
        the pinned snapshot's base — checkpointing on demand to make it so —
        or ``None`` (the pool then spools the base itself).

        The handout is only safe when nothing can have advanced past the
        pinned snapshot: the pinned state must be clean (state == base) and
        the store's applied sequence must be fully covered by the snapshot
        file, re-checked after the on-demand checkpoint to guard against
        racing writers.
        """
        store = self.durable_store
        if store is None or store.closed:
            return None
        if not isinstance(exec_graph, GraphSnapshot) or not exec_graph.is_clean:
            return None
        if store.dirty:
            if store.read_only:
                return None
            store.checkpoint()
        if store.dirty or store.dynamic.version != exec_graph.version:
            return None
        return store.current_snapshot_path()

    def _record_query_trace(
        self,
        query_graph: QueryGraph,
        plan: Plan,
        *,
        mode: str,
        num_matches: int,
        elapsed_seconds: float,
        profile,
        plan_seconds: float,
        plan_cached: Optional[bool],
        truncated: bool,
        deadline_exceeded: bool,
        feedback_key: Optional[tuple],
        num_workers: int = 1,
        morsel_records: Optional[List[dict]] = None,
    ) -> QueryTrace:
        """Assemble and record the trace of one executed query.

        Operator rows join the executor's actual per-operator output counts
        with the estimates annotated on the plan at optimization time; a
        truncated iterator run may have produced no per-operator accounting
        (generators only finalise their counters when fully drained), in
        which case the trace simply carries no operator rows and the
        execution contributes no cardinality feedback.

        ``morsel_records`` (process mode) become one ``morsel`` child span
        per executed morsel, carrying the worker-side stage timings; the
        ``execute`` span then also gets the cross-worker skew and
        critical-path summary so ``trace.format()`` can show where a slow
        parallel query actually spent its time.
        """
        status = (
            "deadline" if deadline_exceeded else ("truncated" if truncated else "ok")
        )
        trace = QueryTrace(
            query_name=query_graph.name,
            mode=mode,
            status=status,
            num_matches=num_matches,
            total_seconds=plan_seconds + elapsed_seconds,
            plan_type=plan.plan_type,
            plan_cached=plan_cached,
            canonical_key=str(query_graph.canonical_key()),
        )
        trace.add_span("plan", plan_seconds, cached=plan_cached, plan_type=plan.plan_type)
        exec_attrs = {"mode": mode}
        if num_workers > 1:
            exec_attrs["num_workers"] = num_workers
        if morsel_records:
            # Shared field list with ExecutionProfile.as_dict — the trace and
            # the profile surface the same multi-worker summary names.
            for name in type(profile).WORKER_SUMMARY_FIELDS:
                exec_attrs[name] = getattr(profile, name)
        trace.add_span("execute", elapsed_seconds, **exec_attrs)
        for record in morsel_records or ():
            # The span duration is the execute time; every other timing
            # (queue_wait, deserialize, base_load, overlay_rebuild) plus the
            # monotonic started_at stamp ride along as attributes.
            attrs = {key: value for key, value in record.items() if key != "execute"}
            trace.add_span("morsel", record.get("execute", 0.0), **attrs)
        trace.operators = operator_stats_from_profile(
            profile.per_operator, profile.operator_seconds, plan.operator_estimates
        )
        trace.profile = profile.as_dict()
        self.obs.record_query(trace, feedback_key=feedback_key)
        return trace

    @staticmethod
    def _translate_match_names(
        matches: List[dict], plan_query: QueryGraph, query: QueryGraph
    ) -> List[dict]:
        """Rekey collected matches from the plan's vertex names to the
        caller's.

        A cache hit may return a plan built for an isomorphic query whose
        vertices were named differently; the match *sets* are identical, but
        the dictionaries must use the caller's names.
        """
        if plan_query is query or plan_query.structurally_equal(query):
            return matches
        mapping = isomorphism_mapping(plan_query, query)
        if mapping is None:  # not isomorphic — cannot happen for cached plans
            return matches
        return [{mapping[k]: v for k, v in match.items()} for match in matches]

    def count(self, query: Union[QueryGraph, str]) -> int:
        """Shorthand: number of matches of the query."""
        return self.execute(query).num_matches

    def estimate_cardinality(self, query: Union[QueryGraph, str]) -> float:
        """The catalogue's cardinality estimate for the query."""
        query = self._as_query(query)
        if self.catalogue is None:
            self.build_catalogue(z=200)
        return estimate_cardinality(self.catalogue, query, self._read_graph())
