"""Cardinality and extension-statistics estimation from the catalogue
(Section 5.2), including the missing-entry rule for sub-queries larger than
the catalogue's ``h``.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.catalogue.catalogue import SubgraphCatalogue
from repro.catalogue.construction import ensure_entry
from repro.graph.graph import Graph
from repro.planner.descriptors import AdjListDescriptor
from repro.planner.qvo import enumerate_orderings
from repro.query.query_graph import QueryGraph


def _entry_stats(
    catalogue: SubgraphCatalogue,
    graph: Optional[Graph],
    sub_query: QueryGraph,
    descriptors: Sequence[AdjListDescriptor],
    to_label: Optional[int],
) -> Optional[Tuple[List[float], float]]:
    """Fetch (lazily measuring when possible) the entry for one extension."""
    if sub_query.num_vertices <= catalogue.h:
        if graph is not None:
            ensure_entry(catalogue, graph, sub_query, descriptors, to_label)
        entry = catalogue.get(sub_query, descriptors, to_label)
        if entry is not None:
            return list(entry.avg_list_sizes), entry.mu
        return None
    return None


def extension_statistics(
    catalogue: SubgraphCatalogue,
    sub_query: QueryGraph,
    descriptors: Sequence[AdjListDescriptor],
    to_label: Optional[int],
    graph: Optional[Graph] = None,
) -> Tuple[List[float], float]:
    """``(|A|, mu)`` for extending ``sub_query`` via ``descriptors``.

    When the sub-query is larger than the catalogue's ``h``, the missing-entry
    rule of Section 5.2 applies: every way of removing ``|Q_{k-1}| - h`` query
    vertices (together with the descriptors anchored at them) is looked up and
    the minimum ``mu`` across the reduced entries is used.
    """
    direct = _entry_stats(catalogue, graph, sub_query, descriptors, to_label)
    if direct is not None:
        return direct

    excess = sub_query.num_vertices - catalogue.h
    if excess <= 0:
        # Small sub-query but nothing measured (no graph available): fall back
        # to an optimistic default based on average degree.
        avg_degree = catalogue.num_graph_edges / max(catalogue.num_graph_vertices, 1)
        return [avg_degree for _ in descriptors], avg_degree

    anchor_vertices = {d.from_vertex for d in descriptors}
    candidates: List[Tuple[List[float], float]] = []
    for removed in combinations(sub_query.vertices, excess):
        removed_set = set(removed)
        remaining = [v for v in sub_query.vertices if v not in removed_set]
        kept_descriptors = [d for d in descriptors if d.from_vertex not in removed_set]
        if len(remaining) < 2 or not kept_descriptors:
            continue
        if not sub_query.connected_projection_exists(remaining):
            continue
        reduced = sub_query.project(remaining)
        stats = extension_statistics(catalogue, reduced, kept_descriptors, to_label, graph)
        candidates.append(stats)
    if not candidates:
        avg_degree = catalogue.num_graph_edges / max(catalogue.num_graph_vertices, 1)
        return [avg_degree for _ in descriptors], avg_degree
    best = min(candidates, key=lambda pair: pair[1])
    # Report list sizes for every original descriptor: use the reduced entry's
    # average list size for kept descriptors and the graph average otherwise.
    avg_degree = catalogue.num_graph_edges / max(catalogue.num_graph_vertices, 1)
    sizes = best[0]
    padded = list(sizes) + [avg_degree] * (len(descriptors) - len(sizes))
    return padded[: len(descriptors)], best[1]


def estimate_cardinality(
    catalogue: SubgraphCatalogue,
    query: QueryGraph,
    graph: Optional[Graph] = None,
    ordering: Optional[Sequence[str]] = None,
) -> float:
    """Estimated number of matches of ``query``.

    The estimate walks one WCO plan of the query: the count of the first query
    edge (from the edge-label statistics) multiplied by the ``mu`` of each
    subsequent one-vertex extension (Section 5.2, estimation 1).
    """
    if query.num_vertices < 2:
        return 0.0
    if ordering is None:
        orderings = enumerate_orderings(query, limit=1)
        if not orderings:
            return 0.0
        ordering = orderings[0]
    ordering = tuple(ordering)
    first_edges = query.edges_between(ordering[0], ordering[1])
    if not first_edges:
        return 0.0
    edge = first_edges[0]
    estimate = catalogue.edge_count(
        edge.label, query.vertex_label(edge.src), query.vertex_label(edge.dst)
    )
    # Parallel / reciprocal edges between the first two vertices act as extra
    # filters; scale by their selectivity under independence.
    for extra in first_edges[1:]:
        count = catalogue.edge_count(
            extra.label, query.vertex_label(extra.src), query.vertex_label(extra.dst)
        )
        possible = float(catalogue.num_graph_vertices) ** 2
        estimate *= min(1.0, count / possible) if possible else 0.0

    for k in range(2, len(ordering)):
        to_vertex = ordering[k]
        prefix = ordering[:k]
        sub = query.project(prefix)
        descriptors = [
            AdjListDescriptor.for_extension(e, to_vertex)
            for e in query.edges_touching(to_vertex)
            if e.other(to_vertex) in set(prefix)
        ]
        _, mu = extension_statistics(
            catalogue, sub, descriptors, query.vertex_label(to_vertex), graph
        )
        estimate *= mu
        if estimate == 0.0:
            break
    return float(estimate)


def estimate_cardinality_min_over_orderings(
    catalogue: SubgraphCatalogue,
    query: QueryGraph,
    graph: Optional[Graph] = None,
    max_orderings: int = 12,
) -> float:
    """A slightly more robust estimator that averages the per-ordering
    estimates over a handful of WCO orderings (different orderings can hit
    differently-informative catalogue entries)."""
    orderings = enumerate_orderings(query)
    if not orderings:
        return 0.0
    if len(orderings) > max_orderings:
        step = len(orderings) // max_orderings
        orderings = orderings[::step][:max_orderings]
    estimates = [
        estimate_cardinality(catalogue, query, graph, ordering=o) for o in orderings
    ]
    return float(np.median(estimates))
