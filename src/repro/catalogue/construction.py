"""Sampling-based catalogue construction (Section 5.1).

For an entry that extends ``Q_{k-1}`` to ``Q_k`` we do *not* enumerate every
match of ``Q_{k-1}``: we sample ``z`` random edges uniformly from the SCAN
operator's edge list, extend only those through a WCO plan of ``Q_{k-1}``, and
for each produced match measure (i) the sizes of the adjacency lists named by
the descriptors ``A`` and (ii) how many extensions carrying the target label
the intersection yields.  The averages become the ``|A|`` and ``mu`` columns.
"""

from __future__ import annotations

import time
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.catalogue.catalogue import SubgraphCatalogue
from repro.graph.graph import Direction, Graph
from repro.graph.intersect import intersect_multiway
from repro.planner.descriptors import AdjListDescriptor
from repro.planner.qvo import enumerate_orderings
from repro.query.query_graph import QueryGraph


# --------------------------------------------------------------------------- #
# sampling machinery
# --------------------------------------------------------------------------- #
def sample_subquery_matches(
    graph: Graph,
    sub_query: QueryGraph,
    ordering: Sequence[str],
    z: int,
    rng: np.random.Generator,
) -> Tuple[List[Tuple[int, ...]], Tuple[str, ...]]:
    """Matches of ``sub_query`` grown from ``z`` uniformly sampled scan edges.

    Returns the matches (tuples of data-vertex ids) and the vertex order the
    tuple positions correspond to.
    """
    ordering = tuple(ordering)
    first_edges = sub_query.edges_between(ordering[0], ordering[1])
    if not first_edges:
        raise ValueError(f"ordering {ordering} does not start with a query edge")
    edge = first_edges[0]
    src, dst = graph.edges(
        edge_label=edge.label,
        src_label=sub_query.vertex_label(edge.src),
        dst_label=sub_query.vertex_label(edge.dst),
    )
    if len(src) == 0:
        return [], ordering
    if len(src) > z:
        idx = rng.choice(len(src), size=z, replace=False)
        src, dst = src[idx], dst[idx]
    reverse = edge.src != ordering[0]
    matches: List[Tuple[int, ...]] = [
        ((int(v), int(u)) if reverse else (int(u), int(v))) for u, v in zip(src, dst)
    ]
    # Verify any parallel/reciprocal edges between the first two vertices.
    extra_first = [e for e in first_edges if e is not edge]
    if extra_first:
        filtered = []
        for t in matches:
            pos = {ordering[0]: t[0], ordering[1]: t[1]}
            if all(graph.has_edge(pos[e.src], pos[e.dst], e.label) for e in extra_first):
                filtered.append(t)
        matches = filtered

    for k in range(2, len(ordering)):
        to_vertex = ordering[k]
        prior = ordering[:k]
        descriptors = [
            AdjListDescriptor.for_extension(e, to_vertex)
            for e in sub_query.edges_touching(to_vertex)
            if e.other(to_vertex) in set(prior)
        ]
        to_label = sub_query.vertex_label(to_vertex)
        index = {v: i for i, v in enumerate(prior)}
        extended: List[Tuple[int, ...]] = []
        for t in matches:
            lists = [
                graph.neighbors(t[index[d.from_vertex]], d.direction, d.edge_label, to_label)
                for d in descriptors
            ]
            extension = lists[0] if len(lists) == 1 else intersect_multiway(lists)
            for w in extension:
                extended.append(t + (int(w),))
        matches = extended
        if not matches:
            break
    return matches, ordering


def measure_extension(
    graph: Graph,
    sub_query: QueryGraph,
    descriptors: Sequence[AdjListDescriptor],
    to_vertex_label: Optional[int],
    z: int,
    rng: np.random.Generator,
) -> Tuple[List[float], float, int]:
    """Measure ``|A|`` and ``mu`` for extending ``sub_query`` via ``descriptors``.

    Returns (average list size per descriptor, average number of extensions,
    number of sampled matches the averages are over).
    """
    orderings = enumerate_orderings(sub_query, limit=1)
    if not orderings:
        return [0.0 for _ in descriptors], 0.0, 0
    matches, order = sample_subquery_matches(graph, sub_query, orderings[0], z, rng)
    if not matches:
        avg_degree = graph.num_edges / max(graph.num_vertices, 1)
        return [float(avg_degree) for _ in descriptors], 0.0, 0
    index = {v: i for i, v in enumerate(order)}
    size_totals = np.zeros(len(descriptors), dtype=np.float64)
    extension_total = 0.0
    for t in matches:
        lists = []
        for j, d in enumerate(descriptors):
            adj = graph.neighbors(
                t[index[d.from_vertex]], d.direction, d.edge_label, to_vertex_label
            )
            size_totals[j] += len(adj)
            lists.append(adj)
        extension = lists[0] if len(lists) == 1 else intersect_multiway(lists)
        extension_total += len(extension)
    n = len(matches)
    return list(size_totals / n), extension_total / n, n


# --------------------------------------------------------------------------- #
# construction entry points
# --------------------------------------------------------------------------- #
def _edge_count_statistics(graph: Graph) -> Dict[Tuple[Optional[int], Optional[int], Optional[int]], int]:
    """Edge counts partitioned by (edge label, source label, destination label)."""
    counts: Dict[Tuple[Optional[int], Optional[int], Optional[int]], int] = {}
    src_labels = graph.vertex_labels[graph.edge_src] if graph.num_edges else []
    dst_labels = graph.vertex_labels[graph.edge_dst] if graph.num_edges else []
    for el, sl, dl in zip(graph.edge_labels, src_labels, dst_labels):
        key = (int(el), int(sl), int(dl))
        counts[key] = counts.get(key, 0) + 1
    return counts


def extension_triples_for_query(
    query: QueryGraph, h: int
) -> List[Tuple[QueryGraph, List[AdjListDescriptor], Optional[int]]]:
    """All ``(Q_{k-1}, A, l_k)`` triples needed to estimate plans of ``query``
    whose ``Q_{k-1}`` has at most ``h`` vertices.

    We enumerate every connected induced sub-query ``S`` of the query with
    ``3 <= |S| <= h+1`` vertices, and for every vertex ``v`` whose removal
    keeps ``S - v`` connected, emit the triple that extends ``S - v`` back to
    ``S``.
    """
    triples: List[Tuple[QueryGraph, List[AdjListDescriptor], Optional[int]]] = []
    vertices = list(query.vertices)
    max_size = min(len(vertices), h + 1)
    for size in range(3, max_size + 1):
        for subset in combinations(vertices, size):
            if not query.connected_projection_exists(subset):
                continue
            s_query = query.project(subset)
            for v in subset:
                rest = [u for u in subset if u != v]
                if len(rest) < 2 or not query.connected_projection_exists(rest):
                    continue
                sub = query.project(rest)
                descriptors = [
                    AdjListDescriptor.for_extension(e, v)
                    for e in s_query.edges_touching(v)
                ]
                if descriptors:
                    triples.append((sub, descriptors, s_query.vertex_label(v)))
    return triples


def build_catalogue(
    graph: Graph,
    h: int = 3,
    z: int = 1000,
    seed: int = 0,
    queries: Optional[Sequence[QueryGraph]] = None,
) -> SubgraphCatalogue:
    """Construct a catalogue for ``graph``.

    When ``queries`` is given, entries for every small-sub-query extension any
    of those queries can need are measured eagerly; otherwise only the base
    edge-label statistics are stored and entries are filled lazily by the cost
    model the first time they are requested.
    """
    start = time.perf_counter()
    catalogue = SubgraphCatalogue(h=h, z=z)
    catalogue.num_graph_vertices = graph.num_vertices
    catalogue.num_graph_edges = graph.num_edges
    catalogue.edges_at_build = graph.num_edges
    catalogue.edge_counts = _edge_count_statistics(graph)
    rng = np.random.default_rng(seed)
    if queries:
        for query in queries:
            for sub, descriptors, to_label in extension_triples_for_query(query, h):
                if catalogue.has(sub, descriptors, to_label):
                    continue
                sizes, mu, n = measure_extension(graph, sub, descriptors, to_label, z, rng)
                catalogue.put(sub, descriptors, to_label, sizes, mu, n)
    catalogue.construction_seconds = time.perf_counter() - start
    return catalogue


def resample_catalogue(
    catalogue: SubgraphCatalogue,
    graph: Graph,
    z: Optional[int] = None,
    seed: int = 0,
) -> SubgraphCatalogue:
    """Re-measure every entry of ``catalogue`` against ``graph``.

    This is the refresher's off-write-path rebuild: the exact edge/label
    statistics are recomputed from the graph, and every sampled ``mu`` /
    ``|A|`` entry that remembers its source triple is re-measured with fresh
    samples.  Entries without a source triple (e.g. loaded from a persisted
    catalogue) are dropped; the cost model lazily re-measures them on next
    use.  The input catalogue is never mutated — the caller decides whether
    to install the returned one.
    """
    start = time.perf_counter()
    fresh = SubgraphCatalogue(h=catalogue.h, z=z if z is not None else catalogue.z)
    fresh.num_graph_vertices = graph.num_vertices
    fresh.num_graph_edges = graph.num_edges
    fresh.edges_at_build = graph.num_edges
    fresh.edge_counts = _edge_count_statistics(graph)
    rng = np.random.default_rng(seed)
    for entry in list(catalogue.entries.values()):
        if entry.sub_query is None or entry.descriptors is None:
            continue
        sizes, mu, n = measure_extension(
            graph, entry.sub_query, entry.descriptors, entry.to_vertex_label, fresh.z, rng
        )
        fresh.put(entry.sub_query, entry.descriptors, entry.to_vertex_label, sizes, mu, n)
    fresh.construction_seconds = time.perf_counter() - start
    return fresh


def ensure_entry(
    catalogue: SubgraphCatalogue,
    graph: Graph,
    sub_query: QueryGraph,
    descriptors: Sequence[AdjListDescriptor],
    to_vertex_label: Optional[int],
    seed: int = 0,
) -> None:
    """Lazily measure and store one entry if the sub-query is small enough."""
    if sub_query.num_vertices > catalogue.h:
        return
    if catalogue.has(sub_query, descriptors, to_vertex_label):
        return
    rng = np.random.default_rng(seed)
    sizes, mu, n = measure_extension(
        graph, sub_query, descriptors, to_vertex_label, catalogue.z, rng
    )
    catalogue.put(sub_query, descriptors, to_vertex_label, sizes, mu, n)
