"""The subgraph catalogue (Section 5): a sampling-based statistics store used
to estimate cardinalities, i-costs, and hash-join costs of candidate plans."""

from repro.catalogue.catalogue import CatalogueEntry, SubgraphCatalogue
from repro.catalogue.construction import build_catalogue, resample_catalogue
from repro.catalogue.qerror import q_error

__all__ = [
    "SubgraphCatalogue",
    "CatalogueEntry",
    "build_catalogue",
    "resample_catalogue",
    "q_error",
]
