"""The subgraph catalogue data structure.

Each entry is keyed by ``(Q_{k-1}, A, l_k)`` — a small sub-query, a set of
adjacency-list descriptors that extend it by one query vertex, and the label
of that new vertex — and stores two measurements obtained by sampling
(Section 5.1):

* ``|A|``: the average size of each adjacency list in ``A``, and
* ``mu``: the average number of extensions (new matches of ``Q_k``) produced
  per match of ``Q_{k-1}``.

Keys are canonicalised so that lookups are isomorphism-invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CatalogueError
from repro.graph.graph import Direction
from repro.planner.descriptors import AdjListDescriptor
from repro.query.query_graph import QueryGraph

# Canonical key components.
_EdgeCode = Tuple[int, int, Optional[int]]
_DescCode = Tuple[int, str, Optional[int]]
CatalogueKey = Tuple[
    Tuple[_EdgeCode, ...],  # canonical edges of Q_{k-1}
    Tuple[Optional[int], ...],  # canonical vertex labels of Q_{k-1}
    Tuple[_DescCode, ...],  # descriptors, positions in canonical order
    Optional[int],  # label of the new query vertex
]


def canonical_key(
    sub_query: QueryGraph,
    descriptors: Sequence[AdjListDescriptor],
    to_vertex_label: Optional[int],
) -> CatalogueKey:
    """Canonicalise ``(Q_{k-1}, A, l_k)``.

    We take the minimum, over all vertex orderings of the sub-query, of the
    combined (edges, vertex labels, descriptors) code.  Including the
    descriptors in the minimisation makes two keys equal exactly when there is
    an isomorphism of the sub-queries that also maps one descriptor set onto
    the other.
    """
    best: Optional[CatalogueKey] = None
    desc_list = list(descriptors)
    for order in permutations(sub_query.vertices):
        index = {v: i for i, v in enumerate(order)}
        edges = tuple(sorted((index[e.src], index[e.dst], e.label) for e in sub_query.edges))
        labels = tuple(sub_query.vertex_label(v) for v in order)
        descs = tuple(
            sorted((index[d.from_vertex], d.direction.value, d.edge_label) for d in desc_list)
        )
        key: CatalogueKey = (edges, labels, descs, to_vertex_label)
        if best is None or key < best:
            best = key
    if best is None:
        raise CatalogueError("cannot canonicalise an empty sub-query")
    return best


@dataclass
class CatalogueEntry:
    """Measurements for one ``(Q_{k-1}, A, l_k)`` extension."""

    key: CatalogueKey
    avg_list_sizes: Tuple[float, ...]
    mu: float
    num_samples: int = 0
    # The (pre-canonicalisation) triple this entry was measured from.  The
    # canonical key is lossy — it cannot be decoded back into a QueryGraph —
    # so the refresher needs the source triple to re-sample the entry against
    # a newer graph.  Entries loaded from a persisted catalogue have no
    # source and are skipped by re-sampling (the next lazy ensure_entry or
    # full rebuild re-measures them).
    sub_query: Optional[QueryGraph] = None
    descriptors: Optional[Tuple[AdjListDescriptor, ...]] = None
    to_vertex_label: Optional[int] = None

    @property
    def total_list_size(self) -> float:
        """Sum of the average adjacency-list sizes (the i-cost of one
        uncached intersection, Eq. 2)."""
        return float(sum(self.avg_list_sizes))


@dataclass
class SubgraphCatalogue:
    """Container for catalogue entries plus base edge-label selectivities."""

    h: int = 3
    z: int = 1000
    entries: Dict[CatalogueKey, CatalogueEntry] = field(default_factory=dict)
    # selectivity (count) of single query edges keyed by
    # (edge_label, src_vertex_label, dst_vertex_label); None = wildcard.
    edge_counts: Dict[Tuple[Optional[int], Optional[int], Optional[int]], int] = field(
        default_factory=dict
    )
    num_graph_vertices: int = 0
    num_graph_edges: int = 0
    construction_seconds: float = 0.0
    # Drift accounting for the *sampled* entries: apply_edge_delta keeps the
    # exact edge/label counts fresh, but the mu / |A| measurements were
    # sampled against the graph as it stood at construction.  drift_edges
    # counts every edge mutation since then; stale_fraction normalises it so
    # operators can decide when a rebuild is due.
    drift_edges: int = 0
    edges_at_build: int = 0
    # Installation epoch.  Bumped by the owning database every time a freshly
    # (re)built catalogue is swapped in; the CatalogueRefresher uses it (plus
    # drift_edges) as the compare-and-swap token so a re-sample raced by
    # writes or by a competing rebuild is discarded instead of installed.
    epoch: int = 0

    # ------------------------------------------------------------------ #
    def put(
        self,
        sub_query: QueryGraph,
        descriptors: Sequence[AdjListDescriptor],
        to_vertex_label: Optional[int],
        avg_list_sizes: Sequence[float],
        mu: float,
        num_samples: int,
    ) -> CatalogueEntry:
        key = canonical_key(sub_query, descriptors, to_vertex_label)
        entry = CatalogueEntry(
            key=key,
            avg_list_sizes=tuple(float(x) for x in avg_list_sizes),
            mu=float(mu),
            num_samples=num_samples,
            sub_query=sub_query,
            descriptors=tuple(descriptors),
            to_vertex_label=to_vertex_label,
        )
        self.entries[key] = entry
        return entry

    def get(
        self,
        sub_query: QueryGraph,
        descriptors: Sequence[AdjListDescriptor],
        to_vertex_label: Optional[int],
    ) -> Optional[CatalogueEntry]:
        return self.entries.get(canonical_key(sub_query, descriptors, to_vertex_label))

    def has(
        self,
        sub_query: QueryGraph,
        descriptors: Sequence[AdjListDescriptor],
        to_vertex_label: Optional[int],
    ) -> bool:
        return self.get(sub_query, descriptors, to_vertex_label) is not None

    # ------------------------------------------------------------------ #
    def edge_count(
        self,
        edge_label: Optional[int],
        src_label: Optional[int] = None,
        dst_label: Optional[int] = None,
    ) -> float:
        """Selectivity of a single (labeled) query edge — the DP's base case."""
        key = (edge_label, src_label, dst_label)
        if key in self.edge_counts:
            return float(self.edge_counts[key])
        # Wildcard fallback: sum over matching stored keys.
        total = 0
        found = False
        for (el, sl, dl), count in self.edge_counts.items():
            if (edge_label is None or el == edge_label) and (
                src_label is None or sl == src_label
            ) and (dst_label is None or dl == dst_label):
                total += count
                found = True
        if found:
            return float(total)
        return float(self.num_graph_edges)

    def apply_edge_delta(
        self,
        inserted: Sequence[Tuple[int, int, int]],
        deleted: Sequence[Tuple[int, int, int]],
        vertex_labels,
    ) -> None:
        """Incrementally maintain the base edge/label statistics after an
        update batch, instead of rebuilding the catalogue.

        ``inserted`` / ``deleted`` are the ``(src, dst, label)`` triples that
        were *effectively* applied; ``vertex_labels`` is the post-update
        vertex label array.  Only the cheap exact statistics (per-label edge
        counts and graph sizes) are updated — the sampled ``mu`` / ``|A|``
        entries remain valid as statistical estimates and are refreshed by
        the next full :func:`~repro.catalogue.construction.build_catalogue`.
        """
        # Copy-on-write: concurrent planners iterate edge_counts lock-free in
        # edge_count()'s wildcard fallback, so the dict is replaced atomically
        # rather than mutated in place (readers see old-or-new, never a
        # dict-changed-size error).
        counts = dict(self.edge_counts)
        for src, dst, label in inserted:
            key = (int(label), int(vertex_labels[src]), int(vertex_labels[dst]))
            counts[key] = counts.get(key, 0) + 1
        for src, dst, label in deleted:
            key = (int(label), int(vertex_labels[src]), int(vertex_labels[dst]))
            remaining = counts.get(key, 0) - 1
            if remaining > 0:
                counts[key] = remaining
            else:
                counts.pop(key, None)
        self.edge_counts = counts
        self.num_graph_edges += len(inserted) - len(deleted)
        self.num_graph_vertices = int(len(vertex_labels))
        self.drift_edges += len(inserted) + len(deleted)

    @property
    def stale_fraction(self) -> float:
        """How far the sampled ``mu`` / ``|A|`` entries have drifted from the
        graph they were measured on: mutated edges since construction over
        the construction-time edge count (0.0 = fresh; can exceed 1.0 when
        the graph has churned more than its own size).

        The exact per-label edge counts are *not* stale — they are maintained
        incrementally — so this measures only the decay of the sampled
        extension-rate estimates the cost model uses.
        """
        baseline = self.edges_at_build or self.num_graph_edges
        if baseline <= 0:
            return 0.0 if self.drift_edges == 0 else 1.0
        return self.drift_edges / float(baseline)

    # ------------------------------------------------------------------ #
    @property
    def num_entries(self) -> int:
        return len(self.entries)

    def size_estimate_bytes(self) -> int:
        """Rough in-memory footprint, reported by the Appendix B experiments."""
        per_entry = 120  # key tuples + floats, rough average
        return per_entry * len(self.entries) + 64 * len(self.edge_counts)

    def summary(self) -> str:
        return (
            f"SubgraphCatalogue(h={self.h}, z={self.z}, entries={self.num_entries}, "
            f"edge_label_stats={len(self.edge_counts)}, "
            f"built_in={self.construction_seconds:.2f}s)"
        )

    def __repr__(self) -> str:
        return self.summary()
