"""Catalogue persistence and inspection.

The subgraph catalogue (Section 5) is built once per graph by sampling and is
then reused across every query the optimizer plans on that graph.  Catalogue
construction dominates the one-time cost of adopting the optimizer (Appendix B
reports construction times from 0.1s to over a minute), so a production
deployment wants to persist the catalogue next to the graph and reload it
instead of resampling.

This module provides:

* :func:`catalogue_to_dict` / :func:`catalogue_from_dict` — a stable JSON
  encoding of every entry (canonical keys are nested tuples, which JSON cannot
  represent directly, so keys are stored structurally alongside their values),
* :func:`save_catalogue` / :func:`load_catalogue` — file round trip,
* :func:`merge_catalogues` — combine catalogues built from independent samples
  (weighted by sample count), useful for incrementally refining estimates,
* :func:`render_entries` — a human-readable dump in the style of the paper's
  Table 7 (sub-query, descriptor set, ``|A|``, ``mu``).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.catalogue.catalogue import CatalogueEntry, CatalogueKey, SubgraphCatalogue
from repro.errors import CatalogueError

FORMAT_VERSION = 1


# --------------------------------------------------------------------------- #
# canonical key <-> JSON structure
# --------------------------------------------------------------------------- #
def _key_to_jsonable(key: CatalogueKey) -> List:
    edges, labels, descriptors, to_label = key
    return [
        [[int(a), int(b), lab] for a, b, lab in edges],
        list(labels),
        [[int(i), direction, lab] for i, direction, lab in descriptors],
        to_label,
    ]


def _key_from_jsonable(data: Sequence) -> CatalogueKey:
    edges_raw, labels_raw, descriptors_raw, to_label = data
    edges = tuple((int(a), int(b), lab) for a, b, lab in edges_raw)
    labels = tuple(labels_raw)
    descriptors = tuple((int(i), str(direction), lab) for i, direction, lab in descriptors_raw)
    return (edges, labels, descriptors, to_label)


# --------------------------------------------------------------------------- #
# whole-catalogue encoding
# --------------------------------------------------------------------------- #
def catalogue_to_dict(catalogue: SubgraphCatalogue) -> Dict:
    """Encode a catalogue as a JSON-compatible dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "h": catalogue.h,
        "z": catalogue.z,
        "num_graph_vertices": catalogue.num_graph_vertices,
        "num_graph_edges": catalogue.num_graph_edges,
        "construction_seconds": catalogue.construction_seconds,
        "edge_counts": [
            {"edge_label": el, "src_label": sl, "dst_label": dl, "count": count}
            for (el, sl, dl), count in sorted(
                catalogue.edge_counts.items(), key=lambda kv: str(kv[0])
            )
        ],
        "entries": [
            {
                "key": _key_to_jsonable(entry.key),
                "avg_list_sizes": list(entry.avg_list_sizes),
                "mu": entry.mu,
                "num_samples": entry.num_samples,
            }
            for entry in catalogue.entries.values()
        ],
    }


def catalogue_from_dict(data: Dict) -> SubgraphCatalogue:
    """Rebuild a catalogue from :func:`catalogue_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise CatalogueError(f"unsupported catalogue format version: {version!r}")
    catalogue = SubgraphCatalogue(
        h=int(data["h"]),
        z=int(data["z"]),
        num_graph_vertices=int(data.get("num_graph_vertices", 0)),
        num_graph_edges=int(data.get("num_graph_edges", 0)),
        construction_seconds=float(data.get("construction_seconds", 0.0)),
    )
    for row in data.get("edge_counts", []):
        key = (row.get("edge_label"), row.get("src_label"), row.get("dst_label"))
        catalogue.edge_counts[key] = int(row["count"])
    for row in data.get("entries", []):
        key = _key_from_jsonable(row["key"])
        catalogue.entries[key] = CatalogueEntry(
            key=key,
            avg_list_sizes=tuple(float(x) for x in row["avg_list_sizes"]),
            mu=float(row["mu"]),
            num_samples=int(row.get("num_samples", 0)),
        )
    return catalogue


def save_catalogue(catalogue: SubgraphCatalogue, path: str, indent: Optional[int] = 2) -> None:
    """Write a catalogue to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(catalogue_to_dict(catalogue), handle, indent=indent)


def load_catalogue(path: str) -> SubgraphCatalogue:
    """Read a catalogue previously written by :func:`save_catalogue`."""
    with open(path, "r", encoding="utf-8") as handle:
        return catalogue_from_dict(json.load(handle))


# --------------------------------------------------------------------------- #
# merging
# --------------------------------------------------------------------------- #
def merge_catalogues(
    first: SubgraphCatalogue, second: SubgraphCatalogue
) -> SubgraphCatalogue:
    """Combine two catalogues built on the same graph.

    Entries present in both are averaged, weighted by their sample counts, so
    merging a z=100 and a z=1000 catalogue behaves like one z=1100 catalogue
    for the shared keys.  Base edge counts are exact statistics and must agree
    where both catalogues define them.
    """
    if (
        first.num_graph_vertices
        and second.num_graph_vertices
        and first.num_graph_vertices != second.num_graph_vertices
    ):
        raise CatalogueError("cannot merge catalogues built on different graphs")
    merged = SubgraphCatalogue(
        h=max(first.h, second.h),
        z=first.z + second.z,
        num_graph_vertices=first.num_graph_vertices or second.num_graph_vertices,
        num_graph_edges=first.num_graph_edges or second.num_graph_edges,
        construction_seconds=first.construction_seconds + second.construction_seconds,
    )
    merged.edge_counts.update(first.edge_counts)
    for key, count in second.edge_counts.items():
        existing = merged.edge_counts.get(key)
        if existing is not None and existing != count:
            raise CatalogueError(
                f"edge-count mismatch for {key}: {existing} vs {count}; "
                "were the catalogues built on the same graph?"
            )
        merged.edge_counts[key] = count
    merged.entries.update(first.entries)
    for key, entry in second.entries.items():
        existing = merged.entries.get(key)
        if existing is None:
            merged.entries[key] = entry
            continue
        merged.entries[key] = _combine_entries(existing, entry)
    return merged


def _combine_entries(a: CatalogueEntry, b: CatalogueEntry) -> CatalogueEntry:
    """Sample-count-weighted average of two entries with the same key."""
    weight_a = max(a.num_samples, 1)
    weight_b = max(b.num_samples, 1)
    total = weight_a + weight_b
    if len(a.avg_list_sizes) != len(b.avg_list_sizes):
        # Defensive: the same canonical key should always describe the same
        # number of intersected lists; prefer the entry with more samples.
        return a if weight_a >= weight_b else b
    sizes = tuple(
        (sa * weight_a + sb * weight_b) / total
        for sa, sb in zip(a.avg_list_sizes, b.avg_list_sizes)
    )
    mu = (a.mu * weight_a + b.mu * weight_b) / total
    return CatalogueEntry(key=a.key, avg_list_sizes=sizes, mu=mu, num_samples=total)


# --------------------------------------------------------------------------- #
# inspection (Table 7-style rendering)
# --------------------------------------------------------------------------- #
def _format_key(key: CatalogueKey) -> Tuple[str, str, str]:
    """Return printable (sub-query, descriptor set, new-vertex label) columns."""
    edges, labels, descriptors, to_label = key

    def vertex(i: int) -> str:
        label = labels[i] if i < len(labels) else None
        return f"{i + 1}" if label is None else f"{i + 1}l{label}"

    edge_strs = []
    for src, dst, edge_label in edges:
        arrow = "->" if edge_label is None else f"-[{edge_label}]->"
        edge_strs.append(f"{vertex(src)}{arrow}{vertex(dst)}")
    descriptor_strs = []
    for index, direction, edge_label in descriptors:
        arrow = "->" if direction == "fwd" else "<-"
        suffix = "" if edge_label is None else f":{edge_label}"
        descriptor_strs.append(f"{vertex(index)}{arrow}{suffix}")
    new_vertex = "any" if to_label is None else f"l{to_label}"
    return "; ".join(edge_strs), ", ".join(descriptor_strs), new_vertex


def render_entries(
    catalogue: SubgraphCatalogue, limit: Optional[int] = None, sort_by_mu: bool = False
) -> str:
    """A textual dump of catalogue entries in the style of the paper's Table 7.

    Each row shows the sub-query ``Q_{k-1}``, the adjacency-list descriptor set
    ``A``, the average list sizes ``|A|``, and the selectivity ``mu``.
    """
    entries = list(catalogue.entries.values())
    if sort_by_mu:
        entries.sort(key=lambda e: -e.mu)
    if limit is not None:
        entries = entries[:limit]
    header = f"{'Q_(k-1)':<40} {'A':<30} {'|A|':<20} {'mu':>8}"
    lines = [header, "-" * len(header)]
    for entry in entries:
        sub_query, descriptors, new_vertex = _format_key(entry.key)
        sizes = ", ".join(f"{s:.1f}" for s in entry.avg_list_sizes)
        lines.append(
            f"{sub_query:<40} {descriptors + ' ; ' + new_vertex:<30} {sizes:<20} {entry.mu:>8.2f}"
        )
    return "\n".join(lines)


__all__ = [
    "FORMAT_VERSION",
    "catalogue_to_dict",
    "catalogue_from_dict",
    "save_catalogue",
    "load_catalogue",
    "merge_catalogues",
    "render_entries",
]
