"""The q-error metric used by the Appendix B catalogue-accuracy experiments.

``q-error = max(estimate / truth, truth / estimate)`` — it is at least 1 and
equals 1 only for a perfectly accurate estimate.  Zero counts are clamped to 1
(the convention of the "How Good Are Query Optimizers, Really?" benchmark the
paper cites).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple


def q_error(estimate: float, truth: float) -> float:
    est = max(float(estimate), 1.0)
    tru = max(float(truth), 1.0)
    return max(est / tru, tru / est)


def qerror_distribution(
    pairs: Iterable[Tuple[float, float]],
    thresholds: Sequence[float] = (2.0, 3.0, 5.0, 10.0, 20.0),
) -> Dict[str, int]:
    """Cumulative distribution in the format of Tables 10 and 11: for each
    threshold tau, the number of queries whose q-error is at most tau, plus a
    final count of everything worse than the largest threshold."""
    errors: List[float] = [q_error(est, tru) for est, tru in pairs]
    result: Dict[str, int] = {}
    for tau in thresholds:
        result[f"<={tau:g}"] = sum(1 for e in errors if e <= tau)
    largest = max(thresholds)
    result[f">{largest:g}"] = sum(1 for e in errors if e > largest)
    result["total"] = len(errors)
    return result
