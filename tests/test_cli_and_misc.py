"""Tests for the CLI, the error hierarchy, and the execution profile."""

import pytest

from repro import cli
from repro.errors import (
    CatalogueError,
    GraphConstructionError,
    InvalidQueryError,
    OptimizerError,
    PlanError,
    QueryParseError,
    ReproError,
)
from repro.executor.profile import ExecutionProfile


class TestErrors:
    def test_all_errors_derive_from_repro_error(self):
        for exc in (
            GraphConstructionError,
            QueryParseError,
            InvalidQueryError,
            PlanError,
            CatalogueError,
            OptimizerError,
        ):
            assert issubclass(exc, ReproError)
            with pytest.raises(ReproError):
                raise exc("boom")


class TestExecutionProfile:
    def test_counters_accumulate(self):
        p = ExecutionProfile()
        p.record_intersection(10)
        p.record_intersection(5)
        p.record_cache_hit()
        p.record_cache_miss()
        p.record_intermediate(3)
        assert p.intersection_cost == 15
        assert p.cache_hit_rate == pytest.approx(0.5)
        assert p.intermediate_matches == 3

    def test_merge(self):
        a = ExecutionProfile(intersection_cost=10, output_matches=1, elapsed_seconds=0.5)
        b = ExecutionProfile(intersection_cost=5, output_matches=2, elapsed_seconds=0.8)
        a.record_operator("SCAN", out=4)
        b.record_operator("SCAN", out=6)
        merged = a.merge(b)
        assert merged.intersection_cost == 15
        assert merged.output_matches == 3
        assert merged.elapsed_seconds == pytest.approx(0.8)
        assert merged.per_operator["SCAN"]["out"] == 10

    def test_as_dict_keys(self):
        d = ExecutionProfile().as_dict()
        assert {"i_cost", "output_matches", "elapsed_seconds"} <= set(d)

    def test_cache_hit_rate_no_lookups(self):
        assert ExecutionProfile().cache_hit_rate == 0.0

    def test_repr(self):
        text = repr(ExecutionProfile(intersection_cost=7))
        assert "i_cost=7" in text


class TestCLI:
    def test_datasets_command(self, capsys):
        assert cli.main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "amazon" in out and "twitter" in out

    def test_stats_command(self, capsys):
        assert cli.main(["stats", "--dataset", "epinions", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "clustering" in out

    def test_run_command_named_query(self, capsys):
        code = cli.main(
            ["run", "--dataset", "amazon", "--scale", "0.1", "--z", "50", "--query", "Q1"]
        )
        assert code == 0
        assert "matches" in capsys.readouterr().out

    def test_run_command_pattern_query(self, capsys):
        code = cli.main(
            [
                "run",
                "--dataset",
                "amazon",
                "--scale",
                "0.1",
                "--z",
                "50",
                "--query",
                "(a)-->(b), (b)-->(c)",
            ]
        )
        assert code == 0

    def test_explain_command(self, capsys):
        code = cli.main(
            ["explain", "--dataset", "amazon", "--scale", "0.1", "--z", "50", "--query", "Q3"]
        )
        assert code == 0
        assert "SCAN" in capsys.readouterr().out

    def test_spectrum_command(self, capsys):
        code = cli.main(
            [
                "spectrum",
                "--dataset",
                "amazon",
                "--scale",
                "0.1",
                "--z",
                "50",
                "--query",
                "Q1",
                "--max-plans",
                "6",
            ]
        )
        assert code == 0
        assert "optimizer-within" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli.main([])
