"""Acceptance: queries over dynamic storage match queries over fresh graphs.

Every integration query must return identical results on (a) a dirty
``DynamicGraph`` (delta overlay populated), (b) a compacted snapshot of it,
and (c) a ``Graph`` freshly built from the same final edge set — in both the
iterator and the vectorized execution modes.  The continuous engine must also
stop constructing full ``Graph`` objects per update batch.
"""

from __future__ import annotations

import pytest

from repro.api import GraphflowDB
from repro.continuous import ContinuousQueryEngine
from repro.graph.builder import graph_from_edges
from repro.graph.graph import Graph
from repro.query import catalog_queries as cq
from repro.storage import DynamicGraph

from tests.storage.conftest import EQUIVALENCE_QUERIES, build_mutated_pair

QUERIES = EQUIVALENCE_QUERIES


@pytest.fixture(scope="module")
def mutated():
    """A DynamicGraph mutated through inserts and deletes, plus the
    equivalent freshly built Graph (shared harness)."""
    return build_mutated_pair()


@pytest.mark.parametrize("vectorized", [False, True], ids=["iterator", "vectorized"])
@pytest.mark.parametrize("name,query", QUERIES, ids=[name for name, _ in QUERIES])
def test_identical_results_on_dynamic_and_fresh(mutated, name, query, vectorized):
    dynamic, fresh = mutated
    db_fresh = GraphflowDB(fresh)
    db_fresh.build_catalogue(z=100)
    expected = db_fresh.execute(query, vectorized=vectorized).num_matches

    # (a) dirty dynamic graph served through the DB (snapshot reads).
    db_dynamic = GraphflowDB(dynamic)
    db_dynamic.build_catalogue(z=100)
    assert db_dynamic.execute(query, vectorized=vectorized).num_matches == expected

    # (b) compacted snapshot as a plain Graph.
    compacted = DynamicGraph(dynamic.snapshot().materialize())
    db_compacted = GraphflowDB(compacted)
    db_compacted.build_catalogue(z=100)
    assert db_compacted.execute(query, vectorized=vectorized).num_matches == expected


def test_collected_matches_identical(mutated):
    dynamic, fresh = mutated
    db_dynamic = GraphflowDB(dynamic)
    db_fresh = GraphflowDB(fresh)
    for db in (db_dynamic, db_fresh):
        db.build_catalogue(z=100)
    got = db_dynamic.execute(cq.triangle(), collect=True).matches
    expected = db_fresh.execute(cq.triangle(), collect=True).matches
    key = lambda m: tuple(sorted(m.items()))
    assert sorted(got, key=key) == sorted(expected, key=key)


def test_continuous_engine_builds_no_graph_per_batch(monkeypatch):
    """The delta path must not reconstruct the adjacency index per batch."""
    base = graph_from_edges([(i, i + 1) for i in range(50)] + [(50, 0)])
    engine = ContinuousQueryEngine(base)
    engine.register("triangles", cq.triangle())

    builds = []
    original = Graph._build_partitions

    def counting_build(self):
        builds.append(self)
        return original(self)

    monkeypatch.setattr(Graph, "_build_partitions", counting_build)
    for i in range(10):
        engine.insert_edges([(i, i + 25)])
        if i % 2:
            engine.delete_edges([(i, i + 25, 0)])
    assert builds == [], "update batches must not rebuild the CSR index"
    assert engine.graph.delta_edges > 0

    # Compaction (explicit or threshold-triggered) is the only path that
    # builds a new Graph, and it is amortised, not per-batch.
    engine.graph.compact()
    assert len(builds) == 1


def test_engine_totals_survive_compaction():
    base = graph_from_edges([(0, 1), (1, 2)])
    engine = ContinuousQueryEngine(DynamicGraph(base, compact_min_edges=2, compact_ratio=0.0))
    engine.register("triangles", cq.triangle())
    engine.insert_edges([(0, 2)])
    engine.insert_edges([(2, 3), (3, 0), (1, 3)])  # crosses the compaction threshold
    assert engine.graph.compactions >= 1
    engine.insert_edges([(3, 4), (4, 0), (4, 1)])
    from tests.conftest import brute_force_count

    assert engine.current_count("triangles") == brute_force_count(
        engine.graph.snapshot().materialize(), cq.triangle()
    )
