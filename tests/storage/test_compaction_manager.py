"""CompactionManager: threshold compaction off the write path.

With a manager attached, writes only append deltas and notify; the CSR
rebuild runs on the manager's thread and installs with a compare-and-swap on
the epoch counter (a racing write makes the install retry, never lose data).
"""

from __future__ import annotations

import pytest

from repro.api import GraphflowDB
from repro.graph.builder import graph_from_edges
from repro.query import catalog_queries as cq
from repro.server.service import QueryService
from repro.storage import CompactionManager, DynamicGraph, GraphSnapshot
from tests.conftest import wait_until as _wait_until


def _chain_graph(n: int = 30):
    return graph_from_edges([(i, i + 1) for i in range(n)] + [(n, 0)])


class TestWritePath:
    def test_writes_never_compact_while_attached(self):
        """Manager attached but not started: crossing the threshold leaves
        the overlay dirty — proof the write path no longer compacts."""
        dynamic = DynamicGraph(_chain_graph(), compact_ratio=0.0, compact_min_edges=1)
        manager = CompactionManager(dynamic, compact_ratio=0.0, min_delta_edges=1)
        try:
            dynamic.add_edges([(0, i) for i in range(2, 20)])
            assert dynamic.compactions == 0
            assert dynamic.delta_edges > manager._threshold()
        finally:
            manager.stop()
        # Detached again: the graph's own synchronous auto-compaction returns.
        assert dynamic.auto_compact is True
        dynamic.add_edges([(1, i) for i in range(3, 10)])
        assert dynamic.compactions >= 1

    def test_background_thread_compacts_and_preserves_content(self):
        dynamic = DynamicGraph(_chain_graph(), auto_compact=False)
        edges_before = dynamic.num_edges
        with CompactionManager(dynamic, compact_ratio=0.0, min_delta_edges=4) as manager:
            dynamic.add_edges([(0, i) for i in range(2, 22)])
            version = dynamic.version
            assert _wait_until(lambda: dynamic.delta_edges == 0)
            assert manager.stats()["compactions"] >= 1
            # Compaction changes neither logical content nor the version.
            assert dynamic.version == version
            assert dynamic.num_edges == edges_before + 20
            assert dynamic.has_edge(0, 2) and dynamic.has_edge(5, 6)

    def test_stop_then_start_reattaches(self):
        """A stop/start cycle must resume background compaction — stop
        detaches (restoring sync compaction), start re-attaches."""
        dynamic = DynamicGraph(_chain_graph(), auto_compact=False)
        manager = CompactionManager(dynamic, compact_ratio=0.0, min_delta_edges=2)
        manager.start()
        manager.stop()
        assert dynamic._write_listener is None
        try:
            manager.start()
            assert dynamic._write_listener is not None
            assert dynamic.auto_compact is False
            dynamic.add_edges([(0, i) for i in range(2, 12)])
            assert _wait_until(lambda: dynamic.delta_edges == 0)
        finally:
            manager.stop()

    def test_compact_now_reports_false_when_clean(self):
        dynamic = DynamicGraph(_chain_graph(), auto_compact=False)
        manager = CompactionManager(dynamic)
        try:
            assert manager.compact_now() is False
            assert manager.stats()["compactions"] == 0
            dynamic.add_edges([(0, 5)])
            assert manager.compact_now() is True
            assert manager.stats()["compactions"] == 1
        finally:
            manager.stop()

    def test_pinned_snapshot_keeps_old_base(self):
        dynamic = DynamicGraph(_chain_graph(), auto_compact=False)
        dynamic.add_edges([(0, 5), (0, 7)])
        snap = dynamic.snapshot()
        old_base = snap.base
        count_before = snap.num_edges
        manager = CompactionManager(dynamic, compact_ratio=0.0, min_delta_edges=0)
        try:
            assert manager.compact_now()
            assert dynamic.base is not old_base
            # The pinned snapshot still reads its old (base, delta) pair.
            assert snap.base is old_base
            assert snap.num_edges == count_before == dynamic.num_edges
        finally:
            manager.stop()


class TestCasInstall:
    def test_racing_write_fails_install_then_retry_succeeds(self, monkeypatch):
        dynamic = DynamicGraph(_chain_graph(), auto_compact=False)
        dynamic.add_edges([(0, 9)])
        original = GraphSnapshot.materialize
        raced = []

        def racing(self, name=None):
            result = original(self, name=name)
            if not raced:
                raced.append(True)
                dynamic.add_edges([(1, 8)])  # lands between materialize and install
            return result

        monkeypatch.setattr(GraphSnapshot, "materialize", racing)
        assert dynamic.try_compact() is False  # lost the race, nothing installed
        assert dynamic.has_edge(1, 8)  # the racing write survived
        assert dynamic.try_compact() is True  # retry sees the newer state
        assert dynamic.delta_edges == 0
        assert dynamic.has_edge(0, 9) and dynamic.has_edge(1, 8)

    def test_fallback_locked_compaction_after_retries(self, monkeypatch):
        dynamic = DynamicGraph(_chain_graph(), auto_compact=False)
        dynamic.add_edges([(0, 4)])
        manager = CompactionManager(dynamic, max_install_retries=2)
        try:
            monkeypatch.setattr(DynamicGraph, "try_compact", lambda self: False)
            assert manager.compact_now()
            stats = manager.stats()
            assert stats["install_retries"] == 2
            assert stats["fallback_compactions"] == 1
            assert dynamic.delta_edges == 0
        finally:
            manager.stop()


class TestWiring:
    def test_graphflow_db_enable_disable(self):
        db = GraphflowDB(_chain_graph())
        manager = db.enable_background_compaction(compact_ratio=0.0, min_delta_edges=3)
        assert manager.running
        assert db.enable_background_compaction() is manager  # idempotent
        result = db.apply_updates(inserts=[(0, i) for i in range(2, 16)])
        assert result.num_applied == 14
        assert result.compacted is False, "writes must return before compaction"
        dynamic = db.graph
        assert _wait_until(lambda: dynamic.delta_edges == 0)
        assert db.execute(cq.triangle(), vectorized=True).num_matches >= 0
        db.disable_background_compaction()
        assert db.compaction_manager is None
        assert not manager.running

    def test_query_service_owns_manager(self):
        db = GraphflowDB(_chain_graph())
        service = QueryService(
            db,
            background_compaction=True,
            compaction_ratio=0.0,
            compaction_min_delta_edges=2,
        )
        try:
            assert db.compaction_manager is not None and db.compaction_manager.running
            service.apply_updates(inserts=[(0, i) for i in range(2, 12)])
            assert _wait_until(lambda: db.graph.delta_edges == 0)
            stats = service.stats()
            assert stats["compaction"]["compactions"] >= 1
            rows = {row["metric"] for row in service.stats_rows()}
            assert "background compactions" in rows
        finally:
            service.close()
        assert db.compaction_manager is None

    def test_enable_applies_thresholds_to_existing_manager(self):
        db = GraphflowDB(_chain_graph())
        manager = db.enable_background_compaction(compact_ratio=0.5, min_delta_edges=500)
        try:
            again = db.enable_background_compaction(compact_ratio=0.0, min_delta_edges=7)
            assert again is manager
            assert manager.compact_ratio == 0.0
            assert manager.min_delta_edges == 7
        finally:
            db.disable_background_compaction()

    def test_service_does_not_stop_external_manager(self):
        db = GraphflowDB(_chain_graph())
        manager = db.enable_background_compaction(compact_ratio=0.0, min_delta_edges=3)
        service = QueryService(db, background_compaction=True)
        service.close()
        assert db.compaction_manager is manager and manager.running
        db.disable_background_compaction()


class TestCompactionPacing:
    def test_min_interval_skips_threshold_triggers(self):
        """With a long pacing floor, a second threshold crossing right after
        an installed compaction is skipped instead of thrashing."""
        dynamic = DynamicGraph(_chain_graph(), compact_ratio=0.0, compact_min_edges=1)
        manager = CompactionManager(
            dynamic,
            compact_ratio=0.0,
            min_delta_edges=1,
            poll_interval_seconds=0.005,
            min_interval_seconds=60.0,
        )
        with manager:
            dynamic.add_edges([(0, i) for i in range(2, 10)])
            assert _wait_until(lambda: manager.compactions == 1)
            # Cross the threshold again: the pacing window is open for 60s,
            # so the manager must skip rather than compact.
            dynamic.add_edges([(1, i) for i in range(3, 12)])
            assert _wait_until(lambda: manager.stats()["paced_skips"] >= 1)
            assert manager.compactions == 1
            assert dynamic.delta_edges > 0  # overlay intentionally left dirty
        # stats() reports the pacing counter.
        assert manager.stats()["paced_skips"] >= 1

    def test_zero_interval_disables_pacing(self):
        dynamic = DynamicGraph(_chain_graph(), compact_ratio=0.0, compact_min_edges=1)
        manager = CompactionManager(
            dynamic,
            compact_ratio=0.0,
            min_delta_edges=1,
            poll_interval_seconds=0.005,
            min_interval_seconds=0.0,
        )
        with manager:
            dynamic.add_edges([(0, i) for i in range(2, 10)])
            assert _wait_until(lambda: manager.compactions >= 1)
            dynamic.add_edges([(1, i) for i in range(3, 12)])
            assert _wait_until(lambda: manager.compactions >= 2)
        assert manager.stats()["paced_skips"] == 0

    def test_explicit_compact_now_bypasses_pacing(self):
        dynamic = DynamicGraph(_chain_graph(), compact_ratio=0.0, compact_min_edges=1)
        manager = CompactionManager(
            dynamic, compact_ratio=0.0, min_delta_edges=1, min_interval_seconds=60.0
        )
        try:
            dynamic.add_edges([(0, i) for i in range(2, 10)])
            assert manager.compact_now()
            dynamic.add_edges([(1, i) for i in range(3, 12)])
            assert manager.compact_now()  # pacing does not gate explicit calls
            assert manager.compactions == 2
        finally:
            manager.stop()

    def test_db_plumbs_min_interval(self):
        db = GraphflowDB(_chain_graph())
        manager = db.enable_background_compaction(min_interval_seconds=12.5)
        assert manager.min_interval_seconds == 12.5
        # Re-enabling updates the pacing floor on the existing manager.
        assert db.enable_background_compaction(min_interval_seconds=0.5) is manager
        assert manager.min_interval_seconds == 0.5
        db.disable_background_compaction()

    def test_service_plumbs_min_interval(self):
        db = GraphflowDB(_chain_graph())
        service = QueryService(
            db,
            background_compaction=True,
            compaction_min_interval_seconds=7.0,
        )
        assert db.compaction_manager.min_interval_seconds == 7.0
        service.close()


class TestCompactionListener:
    def test_listener_failure_does_not_kill_the_loop(self):
        """A raising checkpoint listener is counted, not propagated — the
        manager keeps compacting afterwards."""
        dynamic = DynamicGraph(_chain_graph(), compact_ratio=0.0, compact_min_edges=1)
        manager = CompactionManager(dynamic, compact_ratio=0.0, min_delta_edges=1)
        calls = []

        def bad_listener():
            calls.append(True)
            raise OSError("disk full")

        manager.set_compaction_listener(bad_listener)
        try:
            dynamic.add_edges([(0, i) for i in range(2, 8)])
            assert manager.compact_now()
            assert calls and manager.stats()["listener_failures"] == 1
            assert manager.stats()["checkpoints_triggered"] == 0
            # Still operational: a healthy listener works on the next pass.
            manager.set_compaction_listener(lambda: calls.append(True))
            dynamic.add_edges([(1, i) for i in range(3, 9)])
            assert manager.compact_now()
            assert manager.stats()["checkpoints_triggered"] == 1
        finally:
            manager.stop()
