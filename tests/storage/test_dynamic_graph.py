"""Unit tests for the delta-CSR storage subsystem (repro.storage)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.graph.builder import graph_from_edges
from repro.graph.graph import ANY_LABEL, Direction, Graph
from repro.storage import DeltaStore, DynamicGraph, GraphSnapshot


def small_base() -> Graph:
    return graph_from_edges(
        [(0, 1, 0), (1, 2, 0), (2, 0, 0), (2, 3, 1), (3, 4, 0)],
        vertex_labels={0: 0, 1: 0, 2: 1, 3: 1, 4: 0},
    )


DIRECTIONS = (Direction.FORWARD, Direction.BACKWARD)


def reference_graph(edges, num_vertices, vertex_labels) -> Graph:
    labels = {v: int(vertex_labels[v]) for v in range(num_vertices)}
    builder_edges = sorted(edges)
    return graph_from_edges(builder_edges, vertex_labels=labels) if builder_edges else None


def assert_view_equals_graph(view, ref: Graph, edge_labels=(None, 0, 1), vertex_labels=(None, 0, 1)):
    """``view`` (snapshot or DynamicGraph) must be indistinguishable from the
    freshly built ``ref`` across the whole read API."""
    assert view.num_vertices == ref.num_vertices
    assert view.num_edges == ref.num_edges
    for v in range(ref.num_vertices):
        for direction in DIRECTIONS:
            for el in edge_labels:
                for nl in vertex_labels:
                    expected = ref.neighbors(v, direction, el, nl)
                    got = view.neighbors(v, direction, el, nl)
                    assert np.array_equal(got, expected), (v, direction, el, nl)
                    assert view.degree(v, direction, el, nl) == len(expected)
    for el in edge_labels:
        for sl in vertex_labels:
            got = sorted(zip(*view.edges(el, sl, None)))
            expected = sorted(zip(*ref.edges(el, sl, None)))
            assert got == expected, (el, sl)
            assert view.count_edges(el, sl, None) == ref.count_edges(el, sl, None)
    for direction in DIRECTIONS:
        for el in edge_labels:
            got_csr = view.csr(direction, el, None)
            ref_csr = ref.csr(direction, el, None)
            assert np.array_equal(got_csr.indptr, ref_csr.indptr), (direction, el)
            for v in range(ref.num_vertices):
                assert np.array_equal(got_csr.neighbors(v), ref_csr.neighbors(v))
            assert np.array_equal(
                view.adjacency_key_array(direction, el, None),
                ref.adjacency_key_array(direction, el, None),
            )


class TestDynamicGraphBasics:
    def test_wraps_base_unchanged(self):
        base = small_base()
        dg = DynamicGraph(base)
        assert dg.version == 0
        assert dg.num_edges == base.num_edges
        assert_view_equals_graph(dg, base)

    def test_add_edges_returns_applied_and_bumps_version(self):
        dg = DynamicGraph(small_base())
        applied = dg.add_edges([(0, 3), (0, 1), (0, 3)])  # (0,1) exists, (0,3) repeated
        assert applied == [(0, 3, 0)]
        assert dg.version == 1
        assert dg.has_edge(0, 3)
        # A fully duplicate batch is a no-op and does not bump the version.
        assert dg.add_edges([(0, 1), (0, 3)]) == []
        assert dg.version == 1

    def test_delete_edges_base_and_delta(self):
        dg = DynamicGraph(small_base())
        dg.add_edges([(4, 0, 0)])
        # (4,0) lives in the delta, (0,1) in the base, (1,0) does not exist.
        assert dg.delete_edges([(4, 0, 0), (0, 1, 0), (1, 0, 0)]) == [
            (4, 0, 0),
            (0, 1, 0),
        ]
        assert not dg.has_edge(4, 0) and not dg.has_edge(0, 1)
        assert dg.num_edges == small_base().num_edges - 1

    def test_reinsert_deleted_base_edge(self):
        dg = DynamicGraph(small_base())
        dg.delete_edges([(0, 1, 0)])
        assert not dg.has_edge(0, 1)
        assert dg.add_edges([(0, 1, 0)]) == [(0, 1, 0)]
        assert dg.has_edge(0, 1)
        assert dg.num_edges == small_base().num_edges

    def test_new_vertices_via_edges_get_label_zero(self):
        dg = DynamicGraph(small_base())
        dg.add_edges([(4, 7, 0)])
        assert dg.num_vertices == 8
        assert dg.vertex_label(7) == 0
        assert list(dg.neighbors(7, Direction.BACKWARD)) == [4]

    def test_add_vertices_with_labels(self):
        dg = DynamicGraph(small_base())
        ids = dg.add_vertices(labels=[3, 4])
        assert ids == [5, 6]
        assert dg.vertex_label(6) == 4
        assert sorted(dg.vertices_with_label(3).tolist()) == [5]
        with pytest.raises(GraphConstructionError):
            dg.add_vertices()
        with pytest.raises(GraphConstructionError):
            dg.add_vertices(count=1, labels=[0])

    def test_self_loops_rejected(self):
        dg = DynamicGraph(small_base())
        with pytest.raises(GraphConstructionError):
            dg.add_edges([(1, 1)])


class TestSnapshots:
    def test_snapshot_is_o1_and_pinned(self):
        dg = DynamicGraph(small_base())
        snap = dg.snapshot()
        assert isinstance(snap, GraphSnapshot)
        assert snap.version == 0
        dg.add_edges([(0, 3), (3, 1)])
        dg.delete_edges([(0, 1, 0)])
        # The old snapshot still sees the original state.
        assert_view_equals_graph(snap, small_base())
        # A fresh snapshot sees the new state.
        fresh = dg.snapshot()
        assert fresh.version == 2
        assert fresh.has_edge(0, 3) and not fresh.has_edge(0, 1)

    def test_snapshot_reuse_between_writes(self):
        dg = DynamicGraph(small_base())
        assert dg.snapshot() is dg.snapshot()
        dg.add_edges([(0, 3)])
        assert dg.snapshot().version == 1

    def test_materialized_snapshot_compacts(self):
        dg = DynamicGraph(small_base())
        dg.add_edges([(0, 3)])
        flat = dg.snapshot(materialize=True)
        assert isinstance(flat, Graph)
        assert flat.num_edges == 6
        assert dg.delta_edges == 0 and dg.compactions == 1
        # Repeat materialization returns the same base without re-compacting.
        assert dg.snapshot(materialize=True) is flat
        assert dg.compactions == 1


class TestCompaction:
    def test_compact_preserves_content_and_version(self):
        dg = DynamicGraph(small_base(), auto_compact=False)
        dg.add_edges([(0, 3), (4, 2, 1)])
        dg.delete_edges([(1, 2, 0)])
        version = dg.version
        edges_before = sorted(dg.iter_edges())
        old_snap = dg.snapshot()
        dg.compact()
        assert dg.version == version
        assert dg.delta_edges == 0
        assert sorted(dg.iter_edges()) == edges_before
        # Readers pinned before compaction are untouched.
        assert sorted(old_snap.iter_edges()) == edges_before

    def test_auto_compact_threshold(self):
        dg = DynamicGraph(small_base(), compact_min_edges=3, compact_ratio=0.0)
        dg.add_edges([(0, 4), (4, 1)])
        assert dg.compactions == 0
        dg.add_edges([(1, 3), (3, 0)])  # overlay grows past the threshold
        assert dg.compactions == 1
        assert dg.delta_edges == 0

    def test_auto_compact_disabled(self):
        dg = DynamicGraph(small_base(), compact_min_edges=1, compact_ratio=0.0, auto_compact=False)
        dg.add_edges([(0, 4), (4, 1), (1, 3)])
        assert dg.compactions == 0
        assert dg.delta_edges == 3


class TestRandomizedEquivalence:
    """After arbitrary interleavings of inserts and deletes, every read of
    the dynamic graph must match a Graph freshly built from the same edges."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_fresh_graph(self, seed):
        rng = np.random.default_rng(seed)
        n = 40
        edges = set()
        while len(edges) < 150:
            s, d = (int(x) for x in rng.integers(0, n, 2))
            if s != d:
                edges.add((s, d, int(rng.integers(0, 2))))
        vertex_labels = {i: int(rng.integers(0, 2)) for i in range(n)}
        base = graph_from_edges(sorted(edges), vertex_labels=vertex_labels)
        dg = DynamicGraph(base, auto_compact=False)

        live = set(edges)
        checkpoints = []
        for _ in range(12):
            inserts = []
            while len(inserts) < 8:
                s, d = (int(x) for x in rng.integers(0, n + 3, 2))
                label = int(rng.integers(0, 2))
                if s != d and (s, d, label) not in live:
                    inserts.append((s, d, label))
            deletes = [e for e in sorted(live) if rng.random() < 0.05]
            live |= set(dg.add_edges(inserts))
            live -= set(dg.delete_edges(deletes))
            checkpoints.append((dg.snapshot(), set(live)))

        labels_now = dg.vertex_labels
        # Every third checkpoint plus the final state, verified after all
        # mutations (MVCC: old snapshots unaffected by later writes).
        for snap, snap_edges in checkpoints[::3] + [checkpoints[-1]]:
            ref = reference_graph(snap_edges, snap.num_vertices, labels_now)
            assert_view_equals_graph(snap, ref)
        dg.compact()
        ref = reference_graph(live, dg.num_vertices, labels_now)
        assert_view_equals_graph(dg, ref)


class TestDeltaStore:
    def test_empty(self):
        store = DeltaStore.empty()
        assert store.is_empty
        assert store.num_delta_edges == 0
        assert not store.touched(0, Direction.FORWARD)

    def test_structural_sharing(self):
        labels = np.zeros(6, dtype=np.int64)
        store = DeltaStore.empty().with_insertions([(0, 1, 0), (2, 3, 0)], labels)
        extended = store.with_insertions([(0, 4, 0)], labels)
        # The untouched per-vertex array of vertex 2 is shared, not copied.
        assert extended.fwd_add[(0, 0)][2] is store.fwd_add[(0, 0)][2]
        assert list(store.fwd_add[(0, 0)][0]) == [1]
        assert list(extended.fwd_add[(0, 0)][0]) == [1, 4]
