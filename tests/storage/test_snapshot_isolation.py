"""Snapshot isolation under concurrent serving traffic.

A ``QueryService`` reader racing a writer must see only its pinned snapshot's
matches: with a writer toggling a set of triangle-closing edges as one batch,
every concurrently served triangle count must equal one of the two legal
per-version counts — never a torn in-between value — in both executor modes.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import GraphflowDB
from repro.graph.generators import clustered_social
from repro.graph.graph import Direction
from repro.query import catalog_queries as cq
from repro.server.service import QueryService
from repro.storage import DynamicGraph


@pytest.fixture()
def db():
    graph = DynamicGraph(clustered_social(num_vertices=120, avg_degree=6, seed=3))
    database = GraphflowDB(graph)
    database.build_catalogue(z=100)
    return database


def _toggle_edges(db, present_count):
    """Edges that close new triangles when inserted as one batch."""
    graph = db.graph
    edges = []
    src = 0
    while len(edges) < 3:
        for dst in range(2, graph.num_vertices):
            if (
                dst != src
                and not graph.has_edge(src, dst)
                and not graph.has_edge(dst, src)
                and len(set(graph.neighbors(src, Direction.FORWARD).tolist())
                        & set(graph.neighbors(dst, Direction.BACKWARD).tolist()))
            ):
                edges.append((src, dst, 0))
                break
        src += 1
    return edges


@pytest.mark.parametrize("vectorized", [False, True], ids=["iterator", "vectorized"])
def test_concurrent_readers_see_consistent_snapshots(db, vectorized):
    triangle = cq.triangle()
    count_without = db.execute(triangle, vectorized=vectorized).num_matches
    toggle = _toggle_edges(db, count_without)
    db.apply_updates(inserts=toggle)
    count_with = db.execute(triangle, vectorized=vectorized).num_matches
    db.apply_updates(deletes=toggle)
    assert count_with > count_without
    legal = {count_without, count_with}

    stop = threading.Event()
    writer_errors = []

    def writer():
        try:
            while not stop.is_set():
                db.apply_updates(inserts=toggle)
                db.apply_updates(deletes=toggle)
        except Exception as exc:  # pragma: no cover - fails the test below
            writer_errors.append(exc)

    with QueryService(db, max_concurrent=4, max_queue=64, vectorized=vectorized) as service:
        thread = threading.Thread(target=writer)
        thread.start()
        try:
            results = service.execute_batch([triangle] * 40)
        finally:
            stop.set()
            thread.join()
    assert not writer_errors
    for result in results:
        assert result.status == "ok", result.error
        assert result.num_matches in legal, (
            f"torn read: {result.num_matches} not in {sorted(legal)}"
        )
    # The full toggle batch applies atomically, so intermediate counts
    # (count_without + 1, + 2) would indicate a snapshot leak.


def test_service_update_counters_and_version(db):
    with QueryService(db, max_concurrent=2, max_queue=8) as service:
        version_before = db.graph_version
        result = service.apply_updates(inserts=[(0, 100, 0), (100, 101, 0)])
        assert len(result.inserted) == 2
        stats = service.stats()
        assert stats["counters"]["updates"] == 1
        assert stats["counters"]["update_edges"] == 2
        assert stats["graph_version"] == db.graph_version > version_before
        # Async write path.
        future = service.submit_update(deletes=[(0, 100, 0)])
        assert len(future.result().deleted) == 1
        assert service.stats()["counters"]["updates"] == 2


def test_updates_invalidate_plan_cache_and_reads_see_new_version(db):
    triangle = cq.triangle()
    with QueryService(db, max_concurrent=2, max_queue=8) as service:
        before = service.execute(triangle)
        invalidations_before = db.plan_cache.stats.invalidations
        toggle = _toggle_edges(db, before.num_matches)
        service.apply_updates(inserts=toggle)
        after = service.execute(triangle)
        assert after.num_matches > before.num_matches
        assert db.plan_cache.stats.invalidations > invalidations_before


def test_reader_pinned_before_write_is_isolated(db):
    """A snapshot taken before a write keeps answering with the old state."""
    from repro.executor.pipeline import execute_plan

    triangle = cq.triangle()
    plan = db.plan(triangle)
    old_snapshot = db.graph.snapshot()
    old_count = execute_plan(plan, old_snapshot).num_matches
    toggle = _toggle_edges(db, old_count)
    db.apply_updates(inserts=toggle)
    assert execute_plan(plan, old_snapshot).num_matches == old_count
    assert db.execute(triangle).num_matches > old_count
