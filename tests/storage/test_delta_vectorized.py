"""Delta-aware vectorized execution: dirty snapshots without compaction.

The batch engine must run directly on a dirty ``GraphSnapshot`` — lazily
merged per-partition CSR views, no ``snapshot(materialize=True)`` — and
produce exactly the results it produces after compaction, across the full
equivalence query set.  A background compaction landing mid-query must never
change results in either executor mode.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api import GraphflowDB
from repro.graph.builder import graph_from_edges
from repro.graph.graph import ANY_LABEL, Direction
from repro.query import catalog_queries as cq
from repro.storage import CompactionManager, DynamicGraph, GraphSnapshot

from tests.storage.conftest import EQUIVALENCE_QUERIES, build_mutated_pair


@pytest.fixture(scope="module")
def mutated():
    return build_mutated_pair()


@pytest.fixture(scope="module")
def dynamic_db(mutated):
    dynamic, _ = mutated
    db = GraphflowDB(dynamic)
    db.build_catalogue(z=100)
    return db


@pytest.fixture(scope="module")
def compacted_db(mutated):
    dynamic, _ = mutated
    db = GraphflowDB(dynamic.snapshot().materialize())
    db.build_catalogue(z=100)
    return db


class TestDirtySnapshotEquivalence:
    @pytest.mark.parametrize(
        "name,query", EQUIVALENCE_QUERIES, ids=[n for n, _ in EQUIVALENCE_QUERIES]
    )
    def test_vectorized_dirty_matches_compacted(
        self, mutated, dynamic_db, compacted_db, name, query, monkeypatch
    ):
        dynamic, _ = mutated
        expected = compacted_db.execute(query, vectorized=True).num_matches

        # Executing on the dirty graph must not compact — synchronously or
        # otherwise — anywhere on the query path.
        def forbidden(self, *args, **kwargs):
            raise AssertionError("query path triggered a synchronous compaction")

        monkeypatch.setattr(DynamicGraph, "compact", forbidden)
        monkeypatch.setattr(DynamicGraph, "try_compact", forbidden)
        compactions_before = dynamic.compactions
        assert dynamic_db.execute(query, vectorized=True).num_matches == expected
        assert dynamic.compactions == compactions_before
        assert dynamic.delta_edges > 0, "the overlay must still be dirty afterwards"

    def test_vectorized_modes_compose_on_dirty_snapshots(self, mutated, dynamic_db, compacted_db):
        query = cq.diamond_x()
        expected = compacted_db.execute(query).num_matches
        assert (
            dynamic_db.execute(query, vectorized=True, adaptive=True).num_matches == expected
        )
        assert (
            dynamic_db.execute(query, vectorized=True, num_workers=4).num_matches == expected
        )

    def test_collected_matches_identical_vectorized(self, dynamic_db, compacted_db):
        got = dynamic_db.execute(cq.triangle(), vectorized=True, collect=True).matches
        expected = compacted_db.execute(cq.triangle(), vectorized=True, collect=True).matches
        key = lambda m: tuple(sorted(m.items()))
        assert sorted(got, key=key) == sorted(expected, key=key)


class TestPartitionLaziness:
    def test_clean_partition_served_from_base_arrays(self):
        """A partition the delta never touches must come back as the base's
        own CSR/key arrays — no merge, no copy."""
        graph = graph_from_edges(
            [(0, 1, 0), (1, 2, 0), (2, 3, 1), (3, 0, 1)],
            vertex_labels={v: 0 for v in range(4)},
        )
        dynamic = DynamicGraph(graph, auto_compact=False)
        dynamic.add_edges([(0, 2, 1)])  # dirties only the label-1 partition
        snap = dynamic.snapshot()
        assert snap.delta.touches_partition(Direction.FORWARD, 1, 0)
        assert not snap.delta.touches_partition(Direction.FORWARD, 0, 0)
        base_csr = graph.csr(Direction.FORWARD, 0, 0)
        assert snap.csr(Direction.FORWARD, 0, 0) is base_csr
        assert snap.adjacency_key_array(Direction.FORWARD, 0, 0) is graph.adjacency_key_array(
            Direction.FORWARD, 0, 0
        )
        # The dirty partition is merged (and includes the inserted edge).
        merged = snap.csr(Direction.FORWARD, 1, 0)
        assert merged is not graph.csr(Direction.FORWARD, 1, 0)
        assert 2 in merged.neighbors(0).tolist()

    def test_delta_ratio_accounting(self, mutated):
        dynamic, _ = mutated
        snap = dynamic.snapshot()
        assert snap.delta_ratio > 0
        ratio = snap.partition_delta_ratio(Direction.FORWARD, 0, 0)
        assert ratio > 0
        # Whole-graph wildcard partition sees the same overlay.
        assert snap.partition_delta_ratio(Direction.FORWARD) == pytest.approx(ratio)
        # A clean snapshot prices at zero.
        clean = DynamicGraph(dynamic.snapshot().materialize()).snapshot()
        assert clean.delta_ratio == 0.0
        assert clean.partition_delta_ratio(Direction.FORWARD, 0, 0) == 0.0

    def test_count_edges_label_filter_avoids_materialization(self, mutated, monkeypatch):
        dynamic, fresh = mutated
        snap = dynamic.snapshot()
        expected_any = fresh.num_edges
        expected_label = fresh.count_edges(edge_label=0)

        def forbidden(self):
            raise AssertionError("count_edges materialised the merged edge arrays")

        monkeypatch.setattr(GraphSnapshot, "_materialized_edges", forbidden)
        assert snap.count_edges() == expected_any
        assert snap.count_edges(edge_label=0) == expected_label
        assert snap.count_edges(edge_label=99) == 0

    def test_clean_snapshot_edges_delegates_to_base(self, monkeypatch):
        graph = graph_from_edges([(0, 1), (1, 2)])
        snap = DynamicGraph(graph).snapshot()

        def forbidden(self):
            raise AssertionError("edges() materialised on a clean snapshot")

        monkeypatch.setattr(GraphSnapshot, "_materialized_edges", forbidden)
        src, dst = snap.edges()
        assert src is graph.edge_src and dst is graph.edge_dst


class TestCompactionMidQuery:
    @pytest.mark.parametrize("vectorized", [False, True], ids=["iterator", "vectorized"])
    def test_background_compaction_never_changes_results(self, vectorized):
        """Writes into a triangle-free appendix + constant background
        compaction: every served triangle count must equal the stable
        expected value, in both executor modes."""
        rng = np.random.default_rng(17)
        edges = set()
        while len(edges) < 300:
            s, d = (int(x) for x in rng.integers(0, 60, 2))
            if s != d:
                edges.add((s, d, 0))
        base = graph_from_edges(sorted(edges), vertex_labels={v: 0 for v in range(60)})
        dynamic = DynamicGraph(base, auto_compact=False)
        db = GraphflowDB(dynamic)
        db.build_catalogue(z=100)
        expected = db.execute(cq.triangle(), vectorized=vectorized).num_matches

        stop = threading.Event()
        failures = []

        def writer():
            # A growing chain over fresh vertices: bumps versions and dirties
            # the overlay without ever creating (or destroying) a triangle.
            next_vertex = dynamic.num_vertices
            while not stop.is_set():
                db.apply_updates(inserts=[(next_vertex, next_vertex + 1, 0)])
                next_vertex += 1

        with CompactionManager(dynamic, compact_ratio=0.0, min_delta_edges=2) as manager:
            thread = threading.Thread(target=writer)
            thread.start()
            try:
                queries_run = 0
                import time

                deadline = time.monotonic() + 20.0
                while (
                    queries_run < 25 or manager.stats()["compactions"] == 0
                ) and time.monotonic() < deadline:
                    got = db.execute(cq.triangle(), vectorized=vectorized).num_matches
                    queries_run += 1
                    if got != expected:
                        failures.append((got, expected))
                        break
            finally:
                stop.set()
                thread.join()
            assert not failures, f"compaction mid-query changed results: {failures}"
            assert manager.stats()["compactions"] > 0, (
                "the test never exercised a background compaction"
            )
