"""Shared harness for the dynamic-storage acceptance tests.

`build_mutated_pair` produces a dirty ``DynamicGraph`` (delta overlay
populated through several insert/delete rounds) together with the equivalent
freshly built ``Graph`` — the reference every equivalence test compares
against.  ``EQUIVALENCE_QUERIES`` is the query set those tests sweep.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.builder import graph_from_edges
from repro.graph.generators import clustered_social
from repro.graph.graph import Graph
from repro.query import catalog_queries as cq
from repro.storage import DynamicGraph

EQUIVALENCE_QUERIES = [
    ("triangle", cq.triangle()),
    ("directed-3-cycle", cq.directed_3cycle()),
    ("tailed-triangle", cq.tailed_triangle()),
    ("diamond-x", cq.diamond_x()),
    ("4-cycle", cq.q2()),
    ("4-clique", cq.q5()),
    ("two-triangles", cq.q8()),
]


def build_mutated_pair(
    num_vertices: int = 160,
    avg_degree: int = 6,
    graph_seed: int = 11,
    rng_seed: int = 5,
    rounds: int = 6,
    inserts_per_round: int = 40,
    delete_probability: float = 0.03,
) -> Tuple[DynamicGraph, Graph]:
    """A DynamicGraph mutated through inserts and deletes, plus the
    equivalent freshly built Graph (auto-compaction disabled so the overlay
    stays dirty)."""
    base = clustered_social(num_vertices=num_vertices, avg_degree=avg_degree, seed=graph_seed)
    dynamic = DynamicGraph(base, auto_compact=False)
    rng = np.random.default_rng(rng_seed)
    live = set(zip(base.edge_src.tolist(), base.edge_dst.tolist(), base.edge_labels.tolist()))
    for _ in range(rounds):
        inserts = []
        while len(inserts) < inserts_per_round:
            s, d = (int(x) for x in rng.integers(0, dynamic.num_vertices, 2))
            if s != d and (s, d, 0) not in live:
                inserts.append((s, d, 0))
        deletes = [e for e in sorted(live) if rng.random() < delete_probability]
        live |= set(dynamic.add_edges(inserts))
        live -= set(dynamic.delete_edges(deletes))
    assert dynamic.delta_edges > 0, "the overlay must be dirty for these tests"
    fresh = graph_from_edges(
        sorted(live), vertex_labels={v: 0 for v in range(dynamic.num_vertices)}
    )
    return dynamic, fresh
