"""Write-ahead log: framing, replay, torn-tail truncation, rotation."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.persistence.wal import (
    UpdateRecord,
    WriteAheadLog,
    iter_records,
    segment_name,
)


def _append_batches(wal: WriteAheadLog, batches):
    """Append batches and return the active-segment size after each append
    (the record boundaries, used by the truncation property tests)."""
    boundaries = []
    for inserts, deletes, labels in batches:
        wal.append(inserts=inserts, deletes=deletes, new_vertex_labels=labels)
        boundaries.append(os.path.getsize(wal.active_segment))
    return boundaries


def _make_batches(rng, count):
    batches = []
    for _ in range(count):
        n_ins = int(rng.integers(0, 6))
        n_del = int(rng.integers(0, 3))
        n_lab = int(rng.integers(0, 3))
        batches.append(
            (
                [tuple(int(x) for x in rng.integers(0, 100, 2)) + (0,) for _ in range(n_ins)],
                [tuple(int(x) for x in rng.integers(0, 100, 2)) + (0,) for _ in range(n_del)],
                [int(x) for x in rng.integers(0, 4, n_lab)],
            )
        )
    return batches


class TestAppendReplay:
    def test_round_trip_with_all_record_parts(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), sync_every=2)
        wal.open()
        s1 = wal.append(inserts=[(1, 2, 0), (3, 4, 1)])
        s2 = wal.append(deletes=[(1, 2, 0)], new_vertex_labels=[0, 1, 2])
        assert (s1, s2) == (1, 2)
        wal.close()

        reopened = WriteAheadLog(str(tmp_path))
        records = reopened.open()
        assert [r.seq for r in records] == [1, 2]
        assert records[0].inserts == ((1, 2, 0), (3, 4, 1))
        assert records[1].deletes == ((1, 2, 0),)
        assert records[1].new_vertex_labels == (0, 1, 2)
        assert reopened.last_seq == 2
        reopened.close()

    def test_min_seq_filters_covered_records(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.open()
        for i in range(5):
            wal.append(inserts=[(i, i + 1, 0)])
        wal.close()
        reopened = WriteAheadLog(str(tmp_path))
        records = reopened.open(min_seq=3)
        assert [r.seq for r in records] == [4, 5]
        assert reopened.last_seq == 5
        reopened.close()

    def test_append_continues_after_reopen(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.open()
        wal.append(inserts=[(0, 1, 0)])
        wal.close()
        wal2 = WriteAheadLog(str(tmp_path))
        wal2.open()
        assert wal2.append(inserts=[(1, 2, 0)]) == 2
        wal2.close()
        wal3 = WriteAheadLog(str(tmp_path))
        assert [r.seq for r in wal3.open()] == [1, 2]
        wal3.close()

    def test_closed_log_rejects_appends(self, tmp_path):
        from repro.errors import WALCorruptionError

        wal = WriteAheadLog(str(tmp_path))
        wal.open()
        wal.close()
        with pytest.raises(WALCorruptionError):
            wal.append(inserts=[(0, 1, 0)])

    def test_record_encode_decode_round_trip(self):
        record = UpdateRecord(
            seq=9,
            inserts=((5, 6, 1),),
            deletes=((7, 8, 0), (1, 2, 2)),
            new_vertex_labels=(3,),
        )
        assert UpdateRecord.decode(9, record.encode()) == record


class TestTornTailTruncation:
    """Property-style: damage the tail at random offsets; recovery must
    return exactly the longest prefix of fully-written records."""

    N_RECORDS = 12

    def _build(self, tmp_path, seed):
        rng = np.random.default_rng(seed)
        wal = WriteAheadLog(str(tmp_path), sync_every=100)
        wal.open()
        batches = _make_batches(rng, self.N_RECORDS)
        boundaries = _append_batches(wal, batches)
        path = wal.active_segment
        wal.close()
        return rng, path, boundaries

    @pytest.mark.parametrize("seed", range(6))
    def test_truncate_at_random_offset(self, tmp_path, seed):
        rng, path, boundaries = self._build(tmp_path, seed)
        header_end = os.path.getsize(path) - boundaries[-1] + 16  # magic + base_seq
        cut = int(rng.integers(header_end, boundaries[-1] + 1))
        with open(path, "r+b") as handle:
            handle.truncate(cut)
        expected = sum(1 for b in boundaries if b <= cut)

        wal = WriteAheadLog(str(tmp_path))
        records = wal.open()
        assert [r.seq for r in records] == list(range(1, expected + 1))
        # The torn bytes are physically gone: the file ends at a boundary.
        assert os.path.getsize(path) == ([16] + boundaries)[expected]
        assert wal.truncated_bytes == cut - ([16] + boundaries)[expected]
        # The log accepts appends immediately after recovery.
        assert wal.append(inserts=[(0, 1, 0)]) == expected + 1
        wal.close()

    @pytest.mark.parametrize("seed", range(6, 12))
    def test_bitflip_at_random_offset(self, tmp_path, seed):
        rng, path, boundaries = self._build(tmp_path, seed)
        cut = int(rng.integers(16, boundaries[-1]))
        with open(path, "r+b") as handle:
            handle.seek(cut)
            byte = handle.read(1)
            handle.seek(cut)
            handle.write(bytes([byte[0] ^ (1 << int(rng.integers(0, 8)))]))
        # Everything strictly before the record containing the flipped byte
        # survives; the damaged record and all later ones are dropped.
        expected = sum(1 for b in boundaries if b <= cut)

        wal = WriteAheadLog(str(tmp_path))
        records = wal.open()
        assert [r.seq for r in records] == list(range(1, expected + 1))
        wal.close()

    def test_clean_log_is_untouched(self, tmp_path):
        _, path, boundaries = self._build(tmp_path, seed=99)
        size = os.path.getsize(path)
        wal = WriteAheadLog(str(tmp_path))
        records = wal.open()
        assert len(records) == self.N_RECORDS
        assert os.path.getsize(path) == size
        assert wal.truncated_bytes == 0
        wal.close()


class TestRotationAndPruning:
    def test_rotate_seals_and_prune_removes_covered_segments(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.open()
        wal.append(inserts=[(0, 1, 0)])
        wal.append(inserts=[(1, 2, 0)])
        sealed = wal.rotate()
        assert sealed == 2
        wal.append(inserts=[(2, 3, 0)])
        assert len(os.listdir(tmp_path)) == 2
        assert wal.prune(upto_seq=2) == 1
        assert os.listdir(tmp_path) == [segment_name(2)]
        wal.close()
        # Pruning up to 2 is only legal when a snapshot covers seq <= 2, so
        # the reopen passes that coverage as min_seq.
        reopened = WriteAheadLog(str(tmp_path))
        assert [r.seq for r in reopened.open(min_seq=2)] == [3]
        reopened.close()

    def test_prune_keeps_uncovered_segments(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.open()
        wal.append(inserts=[(0, 1, 0)])
        wal.rotate()
        wal.append(inserts=[(1, 2, 0)])
        # Record 2 lives in the active segment; pruning up to 1 may drop the
        # first segment only.
        assert wal.prune(upto_seq=1) == 1
        records = list(iter_records(str(tmp_path)))
        assert [r.seq for r in records] == [2]
        wal.close()

    def test_force_base_restarts_monotonically(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.open()
        wal.append(inserts=[(0, 1, 0)])
        wal.close()
        # Simulate: snapshot covered up to 5 but the log tail was lost.
        for name in os.listdir(tmp_path):
            os.unlink(os.path.join(tmp_path, name))
        wal2 = WriteAheadLog(str(tmp_path))
        assert wal2.open(min_seq=5) == []
        assert wal2.last_seq == 5
        assert wal2.append(inserts=[(1, 2, 0)]) == 6
        wal2.close()
        # The forward gap (base 5 after nothing) is accepted because a
        # snapshot covers it.
        wal3 = WriteAheadLog(str(tmp_path))
        assert [r.seq for r in wal3.open(min_seq=5)] == [6]
        wal3.close()

    def test_gap_not_covered_by_snapshot_drops_later_segment(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.open()
        wal.append(inserts=[(0, 1, 0)])
        wal.rotate()  # sealed at 1, active base 1
        wal.append(inserts=[(1, 2, 0)])
        wal.close()
        # Lose the first segment entirely: seq 1 is gone and NOT covered by
        # any snapshot (min_seq=0), so the dangling second segment must not
        # be replayed on top of the wrong state.
        os.unlink(os.path.join(tmp_path, segment_name(0)))
        wal2 = WriteAheadLog(str(tmp_path))
        assert wal2.open(min_seq=0) == []
        assert wal2.dropped_segments == 1
        wal2.close()


class _FlakyHandle:
    """File-object proxy whose write() fails once on command (ENOSPC sim)."""

    def __init__(self, handle):
        self._handle = handle
        self.fail_next_write = False

    def write(self, data):
        if self.fail_next_write:
            self.fail_next_write = False
            # Write half the frame first: a real ENOSPC tears mid-record.
            self._handle.write(bytes(data)[: max(1, len(data) // 2)])
            raise OSError(28, "No space left on device")
        return self._handle.write(data)

    def __getattr__(self, name):
        return getattr(self._handle, name)


class TestAppendFailureRewind:
    def test_failed_append_leaves_no_torn_bytes(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), sync_every=1)
        wal.open()
        wal.append(inserts=[(0, 1, 0)])
        flaky = _FlakyHandle(wal._handle)
        wal._handle = flaky
        flaky.fail_next_write = True
        with pytest.raises(OSError):
            wal.append(inserts=[(1, 2, 0)])
        # The torn half-frame was rewound; the next append is acknowledged
        # durable and must survive recovery.
        assert wal.append(inserts=[(2, 3, 0)]) == 2
        wal.close()
        reopened = WriteAheadLog(str(tmp_path))
        records = reopened.open()
        assert [(r.seq, r.inserts) for r in records] == [
            (1, ((0, 1, 0),)),
            (2, ((2, 3, 0),)),
        ]
        assert reopened.truncated_bytes == 0  # nothing torn on disk
        reopened.close()


class TestSizeGauges:
    """num_segments / active_bytes back the ops plane's WAL gauges."""

    def test_track_appends_rotation_and_prune(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.open()
        assert wal.num_segments() == 1
        header = wal.active_bytes()  # a fresh segment is just its header
        wal.append(inserts=[(0, 1, 0)])
        after_one = wal.active_bytes()
        assert after_one > header
        assert after_one == os.path.getsize(wal.active_segment)
        wal.rotate()
        # The fresh active segment holds only a header; the sealed one
        # still counts toward the segment gauge.
        assert wal.num_segments() == 2
        assert wal.active_bytes() == header
        wal.append(inserts=[(1, 2, 0)])
        assert wal.prune(upto_seq=1) == 1
        assert wal.num_segments() == 1
        wal.close()

    def test_active_bytes_zero_when_never_opened(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        assert wal.active_bytes() == 0
