"""DurableGraphStore: recovery equivalence, checkpoints, damage tolerance."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import PersistenceError
from repro.persistence.store import DurableGraphStore, snapshot_filename
from repro.storage.dynamic import DynamicGraph

from tests.persistence.conftest import (
    apply_batch,
    assert_graphs_equal,
    random_workload,
)


def _store_apply(store: DurableGraphStore, batch) -> int:
    inserts, deletes, labels = batch
    seq, _ = store.log_and_apply(
        inserts, deletes, labels, lambda: apply_batch(store.dynamic, batch)
    )
    return seq


class TestRecoveryEquivalence:
    """Crash (no close, no checkpoint), reopen, compare the full read API
    against an in-memory reference that never restarted."""

    @pytest.mark.parametrize("seed", range(4))
    def test_replay_matches_in_memory(self, base_graph, tmp_path, seed):
        rng = np.random.default_rng(seed)
        batches = random_workload(base_graph, rng)
        store = DurableGraphStore.open(str(tmp_path / "store"), graph=base_graph)
        reference = DynamicGraph(base_graph, auto_compact=False)
        for batch in batches:
            _store_apply(store, batch)
            apply_batch(reference, batch)
        store.wal.sync()
        del store  # crash: no close, no checkpoint

        recovered = DurableGraphStore.open(str(tmp_path / "store"))
        assert recovered.recovery.replayed_records == len(batches)
        assert_graphs_equal(recovered.dynamic.snapshot(), reference.snapshot())
        recovered.close(checkpoint=False)

    def test_mid_stream_checkpoint_then_crash(self, base_graph, tmp_path):
        rng = np.random.default_rng(77)
        batches = random_workload(base_graph, rng, rounds=10)
        store = DurableGraphStore.open(str(tmp_path / "store"), graph=base_graph)
        reference = DynamicGraph(base_graph, auto_compact=False)
        for i, batch in enumerate(batches):
            _store_apply(store, batch)
            apply_batch(reference, batch)
            if i == 5:
                assert store.checkpoint() is not None
        store.wal.sync()
        checkpoint_seq = store.snapshot_seq
        del store

        recovered = DurableGraphStore.open(str(tmp_path / "store"))
        # Only the post-checkpoint tail is replayed.
        assert recovered.snapshot_seq == checkpoint_seq
        assert recovered.recovery.replayed_records == len(batches) - 6
        assert_graphs_equal(recovered.dynamic.snapshot(), reference.snapshot())
        recovered.close(checkpoint=False)

    def test_graceful_close_replays_nothing(self, base_graph, tmp_path):
        rng = np.random.default_rng(3)
        batches = random_workload(base_graph, rng, rounds=4)
        store = DurableGraphStore.open(str(tmp_path / "store"), graph=base_graph)
        reference = DynamicGraph(base_graph, auto_compact=False)
        for batch in batches:
            _store_apply(store, batch)
            apply_batch(reference, batch)
        store.close()  # graceful: final checkpoint

        recovered = DurableGraphStore.open(str(tmp_path / "store"))
        assert recovered.recovery.replayed_records == 0
        assert_graphs_equal(recovered.dynamic.snapshot(), reference.snapshot())
        recovered.close(checkpoint=False)

    def test_mmap_recovery_equivalence(self, base_graph, tmp_path):
        rng = np.random.default_rng(11)
        batches = random_workload(base_graph, rng, rounds=3)
        store = DurableGraphStore.open(str(tmp_path / "store"), graph=base_graph)
        reference = DynamicGraph(base_graph, auto_compact=False)
        for batch in batches:
            _store_apply(store, batch)
            apply_batch(reference, batch)
        store.close()

        recovered = DurableGraphStore.open(str(tmp_path / "store"), mmap=True)
        backing = recovered.dynamic.base.edge_src
        backing = backing.base if backing.base is not None else backing
        assert isinstance(backing, np.memmap)
        assert_graphs_equal(recovered.dynamic.snapshot(), reference.snapshot())
        recovered.close(checkpoint=False)


class TestTornWALTail:
    """Damage the WAL tail at random byte offsets: recovery must yield the
    state after exactly the longest durable prefix of batches."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_tail_damage(self, base_graph, tmp_path, seed):
        rng = np.random.default_rng(100 + seed)
        batches = random_workload(base_graph, rng, rounds=8)
        store = DurableGraphStore.open(
            str(tmp_path / "store"), graph=base_graph, sync_every=1
        )
        boundaries = []
        for batch in batches:
            _store_apply(store, batch)
            boundaries.append(os.path.getsize(store.wal.active_segment))
        segment = store.wal.active_segment
        del store  # crash

        header_end = 16  # segment magic + base_seq
        damage_at = int(rng.integers(header_end, boundaries[-1]))
        mode = rng.random()
        if mode < 0.5:
            with open(segment, "r+b") as handle:
                handle.truncate(damage_at)
        else:
            with open(segment, "r+b") as handle:
                handle.seek(damage_at)
                byte = handle.read(1)
                handle.seek(damage_at)
                handle.write(bytes([byte[0] ^ 0x40]))
        surviving = sum(1 for b in boundaries if b <= damage_at)

        recovered = DurableGraphStore.open(str(tmp_path / "store"))
        assert recovered.recovery.replayed_records == surviving
        expected = DynamicGraph(base_graph, auto_compact=False)
        for batch in batches[:surviving]:
            apply_batch(expected, batch)
        assert_graphs_equal(recovered.dynamic.snapshot(), expected.snapshot())
        # The recovered store accepts new durable writes immediately.
        seq = _store_apply(recovered, ([(0, 1, 0)], [], None))
        assert seq == surviving + 1
        recovered.close(checkpoint=False)


class TestSnapshotFallback:
    def test_corrupt_newest_snapshot_falls_back_and_replays(self, base_graph, tmp_path):
        rng = np.random.default_rng(55)
        batches = random_workload(base_graph, rng, rounds=6)
        store = DurableGraphStore.open(
            str(tmp_path / "store"), graph=base_graph, keep_snapshots=2
        )
        reference = DynamicGraph(base_graph, auto_compact=False)
        for i, batch in enumerate(batches):
            _store_apply(store, batch)
            apply_batch(reference, batch)
            if i == 2:
                store.checkpoint()
        store.close()  # second checkpoint at the final seq
        newest = os.path.join(
            str(tmp_path / "store"), "snapshots", snapshot_filename(store.last_seq)
        )
        assert os.path.exists(newest)
        with open(newest, "r+b") as handle:
            handle.seek(200)
            byte = handle.read(1)
            handle.seek(200)
            handle.write(bytes([byte[0] ^ 0xFF]))

        recovered = DurableGraphStore.open(str(tmp_path / "store"))
        assert recovered.recovery.skipped_snapshots == [newest]
        assert recovered.recovery.replayed_records == len(batches) - 3
        assert_graphs_equal(recovered.dynamic.snapshot(), reference.snapshot())
        recovered.close(checkpoint=False)

    def test_checkpoint_prunes_old_snapshots(self, base_graph, tmp_path):
        store = DurableGraphStore.open(
            str(tmp_path / "store"), graph=base_graph, keep_snapshots=2
        )
        for i in range(4):
            _store_apply(store, ([(0, 100 + i, 0)], [], None))
            store.checkpoint()
        snapshots = os.listdir(tmp_path / "store" / "snapshots")
        assert len(snapshots) == 2
        store.close(checkpoint=False)


class TestOpenGuards:
    def test_empty_dir_without_graph(self, tmp_path):
        with pytest.raises(PersistenceError, match="no bootstrap graph"):
            DurableGraphStore.open(str(tmp_path / "missing"))

    def test_wal_without_snapshot_refuses_bootstrap(self, base_graph, tmp_path):
        store = DurableGraphStore.open(str(tmp_path / "store"), graph=base_graph)
        _store_apply(store, ([(0, 1, 0)], [], None))
        store.close(checkpoint=False)
        for name in os.listdir(tmp_path / "store" / "snapshots"):
            os.unlink(tmp_path / "store" / "snapshots" / name)
        with pytest.raises(PersistenceError, match="without a valid snapshot"):
            DurableGraphStore.open(str(tmp_path / "store"))
        with pytest.raises(PersistenceError, match="refusing to bootstrap"):
            DurableGraphStore.open(str(tmp_path / "store"), graph=base_graph)

    def test_closed_store_rejects_writes_and_checkpoints(self, base_graph, tmp_path):
        store = DurableGraphStore.open(str(tmp_path / "store"), graph=base_graph)
        store.close()
        with pytest.raises(PersistenceError):
            _store_apply(store, ([(0, 1, 0)], [], None))
        with pytest.raises(PersistenceError):
            store.checkpoint()


class TestBootstrapOverCorruptStore:
    def test_all_snapshots_corrupt_refuses_bootstrap(self, base_graph, tmp_path):
        """Corrupt snapshots with an empty WAL must not be silently
        re-initialized — bootstrap would mask the data loss."""
        store = DurableGraphStore.open(str(tmp_path / "store"), graph=base_graph)
        store.close()  # clean: WAL pruned down to the active empty segment
        snap_dir = tmp_path / "store" / "snapshots"
        for name in os.listdir(snap_dir):
            with open(snap_dir / name, "r+b") as handle:
                handle.write(b"XXXXXXXX")
        # Remove WAL segments too: only unreadable snapshots remain.
        wal_dir = tmp_path / "store" / "wal"
        for name in os.listdir(wal_dir):
            os.unlink(wal_dir / name)
        with pytest.raises(PersistenceError, match="refusing to bootstrap"):
            DurableGraphStore.open(str(tmp_path / "store"), graph=base_graph)


class TestStoreLock:
    def test_foreign_live_process_lock_refused(self, base_graph, tmp_path):
        store_dir = tmp_path / "store"
        store = DurableGraphStore.open(str(store_dir), graph=base_graph)
        store.close()
        # Simulate another *running* process holding the store (pid 1 is
        # always alive).
        (store_dir / "LOCK").write_text("1")
        with pytest.raises(PersistenceError, match="locked by running process 1"):
            DurableGraphStore.open(str(store_dir))

    def test_stale_lock_from_dead_process_is_reclaimed(self, base_graph, tmp_path):
        store_dir = tmp_path / "store"
        store = DurableGraphStore.open(str(store_dir), graph=base_graph)
        store.close()
        (store_dir / "LOCK").write_text("999999999")  # no such pid
        reopened = DurableGraphStore.open(str(store_dir))
        assert reopened.recovery.replayed_records == 0
        reopened.close()
        assert not (store_dir / "LOCK").exists()

    def test_same_process_crash_sim_reclaims_lock(self, base_graph, tmp_path):
        store_dir = tmp_path / "store"
        store = DurableGraphStore.open(str(store_dir), graph=base_graph)
        del store  # in-process crash: lock file left behind with our pid
        reopened = DurableGraphStore.open(str(store_dir))
        reopened.close()

    def test_failed_open_releases_lock(self, tmp_path):
        store_dir = tmp_path / "store"
        with pytest.raises(PersistenceError, match="no bootstrap graph"):
            DurableGraphStore.open(str(store_dir))
        assert not (store_dir / "LOCK").exists()


class TestLagStats:
    """The checkpoint-lag and WAL-size stats backing the ops-plane gauges
    and the checkpoint_lag health check."""

    def test_stats_expose_wal_and_checkpoint_lag(self, tmp_path, base_graph):
        store = DurableGraphStore.open(str(tmp_path / "store"), graph=base_graph)
        try:
            stats = store.stats()
            assert stats["wal_segments"] >= 1
            assert stats["wal_active_bytes"] >= 0
            # Bootstrap counts as the checkpoint epoch: the age starts near 0.
            assert 0.0 <= stats["seconds_since_last_checkpoint"] < 60.0

            before = store.stats()["wal_active_bytes"]
            _store_apply(store, ([(0, 1, 0)], [], []))
            after = store.stats()
            assert after["wal_active_bytes"] > before
            assert after["wal_records_since_checkpoint"] == 1

            store.checkpoint()
            fresh = store.stats()
            assert fresh["wal_records_since_checkpoint"] == 0
            assert fresh["seconds_since_last_checkpoint"] < 60.0
        finally:
            store.close()
